//! Dispatch-matrix and property tests of the runtime-dispatched SIMD dot
//! kernel (`ucpc_uncertain::simd`): every backend the machine can run is
//! held to the documented bit-identity contract against the scalar
//! fallback, the fused `dot3` is held to its three-single-dots identity,
//! and the unfused PR 1 reference loop bounds the rounding error. The
//! end-to-end guarantee — byte-identical clustering labels across
//! backends — is checked by running the full UCPC search under each.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::Ucpc;
use ucpc::uncertain::simd::{
    dot3_with, dot_unfused, dot_with, force_backend, Backend, DISPATCH_THRESHOLD,
};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// One ULP of `x` (the spacing to the next representable magnitude), with a
/// subnormal floor.
fn ulp(x: f64) -> f64 {
    let a = x.abs();
    if a == 0.0 || !a.is_finite() {
        return f64::MIN_POSITIVE;
    }
    (f64::from_bits(a.to_bits() + 1) - a).max(f64::MIN_POSITIVE)
}

#[test]
fn dispatch_matrix_covers_every_backend_and_length() {
    // The machine must support at least the scalar backend, and on x86_64
    // CI/dev hardware we expect AVX2 too — but the matrix adapts.
    let backends = Backend::available();
    assert!(backends.contains(&Backend::Scalar));
    for n in 0..=64usize {
        let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.73 - 11.0).collect();
        let b: Vec<f64> = (0..n).map(|i| 5.0 - (i as f64) * 0.41).collect();
        let reference = dot_with(Backend::Scalar, &a, &b);
        let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!(
            (reference - naive).abs() < 1e-9 * (1.0 + naive.abs()),
            "scalar vs naive at length {n}"
        );
        for &backend in &backends {
            let got = dot_with(backend, &a, &b);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "{backend:?} != scalar at length {n}"
            );
            let fused = dot3_with(backend, &a, &b, &b, &a);
            assert_eq!(fused[0].to_bits(), got.to_bits(), "dot3[0] at {n}");
            assert_eq!(
                fused[2].to_bits(),
                dot_with(backend, &a, &a).to_bits(),
                "dot3[2] at {n}"
            );
        }
    }
}

#[test]
fn nan_and_infinity_propagate_on_every_backend() {
    for backend in Backend::available() {
        for n in [1usize, 7, 16, 33, 64] {
            for pos in [0, n / 2, n - 1] {
                let mut a: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
                let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.5).collect();
                a[pos] = f64::NAN;
                assert!(
                    dot_with(backend, &a, &b).is_nan(),
                    "{backend:?} swallowed NaN at {pos}/{n}"
                );
                a[pos] = f64::NEG_INFINITY;
                let reference = dot_with(Backend::Scalar, &a, &b);
                let got = dot_with(backend, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "{backend:?} -inf at {pos}/{n}: {got} vs {reference}"
                );
            }
        }
    }
}

#[test]
fn clustering_labels_are_byte_identical_across_backends() {
    // The whole point of the bit-identity contract: the backend knob can
    // never change a clustering result. Run the full UCPC search (m above
    // the dispatch threshold so the SIMD paths actually engage) under every
    // available backend and compare labels exactly.
    let m = DISPATCH_THRESHOLD + 4;
    let data: Vec<UncertainObject> = (0..120)
        .map(|i| {
            let c = (i % 3) as f64 * 9.0;
            UncertainObject::new(
                (0..m)
                    .map(|j| UnivariatePdf::normal(c + (i + j) as f64 * 0.05, 0.4))
                    .collect(),
            )
        })
        .collect();
    let detected = Backend::detect();
    let mut reference: Option<Vec<usize>> = None;
    for backend in Backend::available() {
        force_backend(backend).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let labels = Ucpc::default()
            .cluster(&data, 3, &mut rng)
            .unwrap()
            .labels()
            .to_vec();
        match &reference {
            None => reference = Some(labels),
            Some(expected) => assert_eq!(
                &labels, expected,
                "backend {backend:?} changed clustering labels"
            ),
        }
    }
    force_backend(detected).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random inputs (including large magnitude spreads): every available
    /// backend agrees with the scalar backend within 1 ULP of the result —
    /// in fact exactly, by the bit-identity contract — and the unfused
    /// reference loop agrees within a ULP-scaled accumulation bound.
    #[test]
    fn backends_agree_within_one_ulp(
        n in 0usize..96,
        seed in 0u64..1_000_000,
        scale_exp in -12i32..12,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 2.0f64.powi(scale_exp);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0) * scale).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();

        let reference = dot_with(Backend::Scalar, &a, &b);
        for backend in Backend::available() {
            let got = dot_with(backend, &a, &b);
            prop_assert!(
                (got - reference).abs() <= ulp(reference),
                "{:?}: {} vs scalar {}",
                backend, got, reference
            );
            // The contract is actually stronger: bit-identical.
            prop_assert_eq!(got.to_bits(), reference.to_bits());
        }

        // The unfused PR 1 loop differs only by per-element rounding:
        // |fused − unfused| ≤ n·ε·Σ|a_i b_i| is a safe envelope.
        let unfused = dot_unfused(&a, &b);
        let magnitude: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
        let bound = (n as f64 + 1.0) * f64::EPSILON * magnitude + f64::MIN_POSITIVE;
        prop_assert!(
            (reference - unfused).abs() <= bound,
            "fused {} vs unfused {} exceeds envelope {}",
            reference, unfused, bound
        );
    }
}
