//! Crash-point recovery differential suite.
//!
//! The contract under test is the durability half of the serving layer's
//! crash-safety story: a serving engine logging through the write-ahead
//! log can lose its process at **any byte** of the log, and
//! `recover(checkpoint, wal_prefix)` plus replay of the lost suffix
//! rebuilds labels, handles, per-cluster statistic bits and objective
//! bits **byte-identical** to the run that never crashed. Pinned across
//! {objects, slab} × {pruning off, bounds}, at every frame boundary and
//! mid-frame, from both v1 and v2 checkpoints; plus a bit-flip sweep
//! asserting corruption anywhere in the log or checkpoint surfaces as a
//! checked error or reported damage — never a panic, never silent
//! divergence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::serving::{ServingConfig, ServingResponse, ServingUcpc};
use ucpc::core::wal::{apply_record, recover, scan_wal, SharedVecIo, WalScan, WAL_HEADER_LEN};
use ucpc::core::PruningConfig;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// One scripted serving mutation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Commit(f64, f64),
    /// Remove the `r`-th (mod count) committed handle — possibly stale,
    /// which the serving layer answers without logging.
    Remove(usize),
    Stabilize(usize),
}

fn script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|_| match rng.gen_range(0..10u8) {
            0..=5 => Op::Commit(rng.gen_range(-10.0..10.0), rng.gen_range(0.05..0.8)),
            6..=7 => Op::Remove(rng.gen_range(0..64)),
            _ => Op::Stabilize(rng.gen_range(1..3)),
        })
        .collect()
}

fn obj(c: f64, s: f64) -> UncertainObject {
    UncertainObject::new(vec![
        UnivariatePdf::normal(c, s),
        UnivariatePdf::uniform_centered(-c * 0.5, s + 0.1),
    ])
}

/// A settled live window: what the checkpoint captures.
fn settled(backend: StreamBackend, pruning: PruningConfig) -> IncrementalUcpc {
    let mut engine = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
    engine.set_pruning(pruning);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..10 {
        engine
            .insert(&obj(rng.gen_range(-10.0..10.0), 0.3))
            .unwrap();
    }
    engine.stabilize(3);
    engine
}

/// Everything one uninterrupted logged serving run leaves behind: the
/// checkpoint it started from, the full log it wrote, and the final
/// state the recovery at every cut must reproduce.
struct LoggedRun {
    checkpoint: Vec<u8>,
    wal: Vec<u8>,
    scan: WalScan,
    serving: ServingUcpc,
}

/// Runs the script through a serving engine logging into a shared sink.
/// Mixed micro-batches (batch 4) and a stabilize cadence make the log
/// carry all three frame kinds, including cadence stabilizes.
fn logged_run(backend: StreamBackend, pruning: PruningConfig, v2_checkpoint: bool) -> LoggedRun {
    let engine = settled(backend, pruning);
    let checkpoint = if v2_checkpoint {
        engine.snapshot_v2()
    } else {
        engine.snapshot()
    };
    let sink = SharedVecIo::new();
    let mut serving = ServingUcpc::over(
        engine,
        ServingConfig {
            batch: 4,
            queue_capacity: 16,
            deadline: None,
            stabilize_every: 5,
            stabilize_passes: 2,
            top_k: 2,
            ..ServingConfig::default()
        },
    );
    serving.detach_wal();
    serving.attach_wal(sink.clone()).unwrap();
    let mut handles: Vec<ObjectHandle> = Vec::new();
    let drain = |serving: &mut ServingUcpc, handles: &mut Vec<ObjectHandle>| {
        serving.flush();
        while let Some((_, resp)) = serving.pop_response() {
            match resp {
                ServingResponse::Committed { handle, .. } => handles.push(handle),
                ServingResponse::Failed { error } => panic!("faultless sink failed: {error}"),
                _ => {}
            }
        }
    };
    let mut queued = 0usize;
    for op in script(29, 60) {
        match op {
            Op::Commit(c, s) => {
                serving.submit_commit_object(&obj(c, s)).unwrap();
            }
            Op::Remove(r) if !handles.is_empty() => {
                serving.submit_remove(handles[r % handles.len()]).unwrap();
            }
            Op::Remove(_) => continue,
            Op::Stabilize(p) => {
                serving.submit_stabilize(p).unwrap();
            }
        }
        queued += 1;
        if queued == 4 {
            queued = 0;
            drain(&mut serving, &mut handles);
        }
    }
    drain(&mut serving, &mut handles);
    assert!(serving.wal().unwrap().poisoned().is_none());
    let wal = sink.bytes();
    let scan = scan_wal(&wal).expect("own log scans");
    assert!(scan.damage.is_none(), "uncut log reported damage");
    assert_eq!(scan.records.len() as u64, serving.wal().unwrap().frames());
    assert!(
        scan.records.len() > 20,
        "script too small to exercise recovery"
    );
    LoggedRun {
        checkpoint,
        wal,
        scan,
        serving,
    }
}

/// Every prefix length worth cutting at: 0 (crash before the header),
/// inside the header, every frame boundary, and the midpoint of every
/// frame.
fn cut_points(scan: &WalScan, wal_len: usize) -> Vec<usize> {
    let mut cuts = vec![0, 1, WAL_HEADER_LEN / 2, WAL_HEADER_LEN - 1, WAL_HEADER_LEN];
    let mut prev = WAL_HEADER_LEN as u64;
    for &end in &scan.frame_ends {
        cuts.push(((prev + end) / 2) as usize);
        cuts.push(end as usize);
        prev = end;
    }
    debug_assert_eq!(prev as usize, wal_len);
    cuts
}

#[test]
fn recovery_at_every_cut_point_is_bit_identical_across_the_matrix() {
    for (backend, v2_checkpoint) in [(StreamBackend::Objects, false), (StreamBackend::Slab, true)] {
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let what = format!("{backend:?} / {pruning:?}");
            let run = logged_run(backend, pruning, v2_checkpoint);
            let reference = run.serving.engine();
            for cut in cut_points(&run.scan, run.wal.len()) {
                let rec = recover(&run.checkpoint, &run.wal[..cut])
                    .unwrap_or_else(|e| panic!("{what}, cut {cut}: {e}"));
                // A cut on a frame boundary (or before any log bytes) is a
                // clean prefix; anything else must be reported as damage
                // with the salvage point right at the last boundary.
                let boundary = cut == 0
                    || cut == WAL_HEADER_LEN
                    || run.scan.frame_ends.contains(&(cut as u64));
                if boundary {
                    assert!(rec.damage.is_none(), "{what}, cut {cut}: {:?}", rec.damage);
                    assert_eq!(rec.valid_bytes as usize, cut, "{what}, cut {cut}");
                } else {
                    assert!(rec.damage.is_some(), "{what}, cut {cut}: damage unreported");
                    assert!(rec.valid_bytes as usize <= cut, "{what}, cut {cut}");
                }
                // Finish the script: replay the records the crash cut off.
                let mut engine = rec.engine;
                for r in &run.scan.records[rec.frames_applied as usize..] {
                    apply_record(&mut engine, r).expect("suffix replays");
                }
                assert_eq!(
                    engine.live_labels(),
                    reference.live_labels(),
                    "labels/handles diverged: {what}, cut {cut}"
                );
                assert_eq!(
                    engine.cluster_stats(),
                    reference.cluster_stats(),
                    "cluster statistic bits diverged: {what}, cut {cut}"
                );
                assert_eq!(
                    engine.objective().to_bits(),
                    reference.objective().to_bits(),
                    "objective bits diverged: {what}, cut {cut}"
                );
            }
        }
    }
}

#[test]
fn corruption_anywhere_is_a_checked_error_or_reported_damage() {
    let run = logged_run(StreamBackend::Slab, PruningConfig::Bounds, true);
    // Flip bits across the whole log: CRC-32 catches every single-bit
    // flip inside a frame or the header, and flips in the magic/version
    // prefix are hard errors — recovery must never panic and never
    // silently accept a flipped log as fully intact.
    for pos in 0..run.wal.len() {
        let bit = (pos % 8) as u8;
        let mut bent = run.wal.clone();
        bent[pos] ^= 1 << bit;
        match recover(&run.checkpoint, &bent) {
            Err(_) => {}
            Ok(rec) => assert!(
                rec.damage.is_some(),
                "flip at byte {pos} bit {bit} went undetected"
            ),
        }
    }
    // Flip bits across the v2 checkpoint: every byte past the 12-byte
    // head is under a chunk checksum, and head flips fail the magic or
    // version check — always a checked snapshot error.
    for pos in (0..run.checkpoint.len()).step_by(3) {
        let bit = (pos % 8) as u8;
        let mut bent = run.checkpoint.clone();
        bent[pos] ^= 1 << bit;
        assert!(
            recover(&bent, &run.wal).is_err(),
            "checkpoint flip at byte {pos} bit {bit} went undetected"
        );
    }
}

#[test]
fn recovery_from_a_faulted_writer_matches_the_applied_prefix() {
    // Drive a serving engine into an injected ENOSPC mid-flush: the
    // serving layer refuses the unlogged mutations (log-before-apply), and
    // recovery from the torn sink must reproduce exactly the engine the
    // survivor is left holding.
    use ucpc::core::wal::WalError;
    let engine = settled(StreamBackend::Slab, PruningConfig::Bounds);
    let checkpoint = engine.snapshot_v2();
    let mut serving = ServingUcpc::over(
        engine,
        ServingConfig {
            batch: 8,
            queue_capacity: 16,
            deadline: None,
            stabilize_every: 0,
            stabilize_passes: 2,
            top_k: 2,
            ..ServingConfig::default()
        },
    );
    serving.detach_wal();
    // Room for the header and exactly two commit frames plus a torn sliver
    // of the third; the rest of the batch hits the wall.
    let sink = SharedVecIo::limited(WAL_HEADER_LEN + 2 * (4 + 1 + 2 * 2 * 8 + 4) + 7);
    serving.attach_wal(sink.clone()).unwrap();
    for c in [0.0, 1.0, 2.0, 3.0, 4.0] {
        serving.submit_commit_object(&obj(c, 0.3)).unwrap();
    }
    serving.flush();
    let mut failed = 0;
    while let Some((_, resp)) = serving.pop_response() {
        if let ServingResponse::Failed { error } = resp {
            assert!(
                matches!(error, WalError::Io(_) | WalError::Poisoned(_)),
                "{error:?}"
            );
            failed += 1;
        }
    }
    assert_eq!(failed, 3, "commits past the wall must be refused");
    let rec = recover(&checkpoint, &sink.bytes()).unwrap();
    assert!(rec.damage.is_some(), "torn tail must be reported");
    assert_eq!(rec.frames_applied, 2);
    assert_eq!(
        rec.engine.live_labels(),
        serving.engine().live_labels(),
        "recovered state diverged from the survivor"
    );
    assert_eq!(
        rec.engine.objective().to_bits(),
        serving.engine().objective().to_bits()
    );
}

#[test]
fn damage_report_carries_offset_and_frame_index_of_first_damaged_frame() {
    let run = logged_run(StreamBackend::Slab, PruningConfig::Bounds, true);
    // Damage frame 5 (0-based): its bytes span frame_ends[4]..frame_ends[5].
    let start = run.scan.frame_ends[4];
    let end = run.scan.frame_ends[5];

    // Mid-frame truncation: the report must name the damaged frame's own
    // byte offset and index, not just flag "damaged somewhere".
    let cut = ((start + end) / 2) as usize;
    let scan = scan_wal(&run.wal[..cut]).expect("valid prefix scans");
    let damage = scan.damage.expect("torn frame must be reported");
    assert_eq!(damage.offset, start, "offset of the first damaged frame");
    assert_eq!(damage.frame_index, 5, "index of the first damaged frame");
    assert_eq!(scan.valid_bytes, start, "salvage stops at the damage");
    assert_eq!(scan.records.len(), 5);

    // Mid-frame corruption in an otherwise complete log: same report,
    // and the intact suffix after the flip is NOT resurrected (a frame
    // boundary can't be trusted past a corrupt frame).
    let mut bent = run.wal.clone();
    let flip = ((start + end) / 2) as usize;
    bent[flip] ^= 0x40;
    let scan = scan_wal(&bent).expect("corrupt frame is damage, not an error");
    let damage = scan.damage.expect("corrupt frame must be reported");
    assert_eq!(damage.offset, start);
    assert_eq!(damage.frame_index, 5);
    assert_eq!(scan.records.len(), 5, "no frames past the corruption");

    // The same report surfaces through full recovery.
    let rec = recover(&run.checkpoint, &bent).expect("recovery salvages the prefix");
    let damage = rec.damage.expect("recovery reports the damage");
    assert_eq!((damage.offset, damage.frame_index), (start, 5));
}

#[test]
fn checkpoint_rotation_under_injected_sync_failure_is_atomic() {
    use ucpc::core::fault::IoFaultPlan;
    use ucpc::core::wal::VecIo;

    let engine = settled(StreamBackend::Slab, PruningConfig::Bounds);
    let mut serving = ServingUcpc::over(
        engine,
        ServingConfig {
            batch: 2,
            queue_capacity: 16,
            deadline: None,
            stabilize_every: 0,
            stabilize_passes: 1,
            top_k: 1,
            ..ServingConfig::default()
        },
    );
    serving.detach_wal();

    // Poison the attached writer with an injected ENOSPC mid-commit.
    let torn = SharedVecIo::limited(WAL_HEADER_LEN + 10);
    serving.attach_wal(torn).unwrap();
    serving.submit_commit_object(&obj(1.0, 0.3)).unwrap();
    serving.submit_commit_object(&obj(2.0, 0.3)).unwrap();
    serving.flush();
    while serving.pop_response().is_some() {}
    assert!(
        serving.wal().unwrap().poisoned().is_some(),
        "writer must be poisoned by the injected fault"
    );
    let labels_before = serving.engine().live_labels();
    let objective_before = serving.engine().objective().to_bits();

    // Rotation attempt whose snapshot sync fails: a checked error, and
    // NO partial rotation — the poisoned writer stays attached, the
    // fresh log sink is never even created.
    let mut bad_snap = VecIo::with_faults(IoFaultPlan::new().failing_syncs());
    let fresh = SharedVecIo::new();
    let err = serving
        .checkpoint_into(&mut bad_snap, fresh.clone())
        .expect_err("failing snapshot sync must refuse the rotation");
    assert!(matches!(err, ucpc::core::wal::WalError::Io(_)), "{err:?}");
    assert!(
        serving.wal().unwrap().poisoned().is_some(),
        "failed rotation must leave the old (poisoned) writer in place"
    );
    assert!(fresh.bytes().is_empty(), "no header in the abandoned log");

    // Same discipline when the fresh log itself cannot be created.
    let mut snap = VecIo::new();
    serving
        .checkpoint_into(&mut snap, SharedVecIo::limited(4))
        .expect_err("unwritable fresh log must refuse the rotation");
    assert!(serving.wal().unwrap().poisoned().is_some());

    // And attach_wal under the same fault: checked error, old writer kept.
    serving
        .attach_wal(SharedVecIo::limited(4))
        .expect_err("unwritable attach must be refused");
    assert!(serving.wal().unwrap().poisoned().is_some());

    // The engine never moved through any of the failed rotations.
    assert_eq!(serving.engine().live_labels(), labels_before);
    assert_eq!(serving.engine().objective().to_bits(), objective_before);

    // A healthy rotation then recovers the pipeline: the poisoned writer
    // comes back out, and the new checkpoint + log pair round-trips.
    let mut snap = VecIo::new();
    let good = SharedVecIo::new();
    let old = serving
        .checkpoint_into(&mut snap, good.clone())
        .expect("healthy rotation succeeds")
        .expect("previous writer is returned");
    assert!(old.poisoned().is_some());
    assert!(serving.wal().unwrap().poisoned().is_none());
    serving.submit_commit_object(&obj(3.0, 0.3)).unwrap();
    serving.flush();
    while serving.pop_response().is_some() {}
    let rec = recover(snap.bytes(), &good.bytes()).expect("rotated pair recovers");
    assert!(rec.damage.is_none());
    assert_eq!(rec.engine.live_labels(), serving.engine().live_labels());
    assert_eq!(
        rec.engine.objective().to_bits(),
        serving.engine().objective().to_bits()
    );
}
