//! Miniature versions of the four experiment binaries, exercised as
//! integration tests so that the table/figure pipelines cannot rot.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::datasets::benchmark::{generate_fraction, DatasetSpec, IRIS, KDDCUP99};
use ucpc::datasets::microarray::{MicroarraySimulator, NEUROBLASTOMA};
use ucpc::datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc::eval::{f_measure, quality};
use ucpc_bench::harness::{run_timed, Algo, RunConfig};

fn mini_cfg() -> RunConfig {
    RunConfig {
        max_iters: 20,
        samples_per_object: 8,
    }
}

#[test]
fn table2_protocol_miniature() {
    // One dataset, one pdf family, all seven algorithms, one run.
    let mut rng = StdRng::seed_from_u64(1);
    let d = generate_fraction(IRIS, 0.3, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
    let d1 = a.perturbed_objects(&mut rng);
    let d2 = a.uncertain_objects();

    for algo in Algo::ACCURACY {
        let c1 = run_timed(algo, &d1, IRIS.classes, 3, &mini_cfg())
            .unwrap()
            .clustering;
        let c2 = run_timed(algo, &d2, IRIS.classes, 3, &mini_cfg())
            .unwrap()
            .clustering;
        let theta = f_measure(&c2, &d.labels) - f_measure(&c1, &d.labels);
        assert!((-1.0..=1.0).contains(&theta), "{}", algo.name());
        let q = quality(&d2, &c2).q;
        assert!((-1.0..=1.0).contains(&q), "{}", algo.name());
    }
}

#[test]
fn table3_protocol_miniature() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = MicroarraySimulator::default().simulate_genes(NEUROBLASTOMA, 60, &mut rng);
    for k in [2usize, 5] {
        for algo in Algo::ACCURACY {
            let c = run_timed(algo, &data.objects, k, 4, &mini_cfg())
                .unwrap()
                .clustering;
            let q = quality(&data.objects, &c);
            assert!(q.q.is_finite(), "{} at k={k}", algo.name());
        }
    }
}

#[test]
fn fig4_protocol_miniature() {
    let mut rng = StdRng::seed_from_u64(3);
    let spec = DatasetSpec {
        name: "mini",
        objects: 60,
        attributes: 4,
        classes: 3,
    };
    let d = generate_fraction(spec, 1.0, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
    let data = a.uncertain_objects();

    let mut all: Vec<Algo> = Algo::SLOW_PANEL.to_vec();
    all.extend(Algo::FAST_PANEL);
    all.push(Algo::Ucpc);
    for algo in all {
        let out = run_timed(algo, &data, 3, 5, &mini_cfg()).unwrap();
        assert_eq!(out.clustering.len(), data.len(), "{}", algo.name());
        // Times are measured (possibly sub-millisecond, but non-negative by
        // construction); the point is the pipeline doesn't panic.
    }
}

#[test]
fn fig5_protocol_miniature() {
    // Tiny KDD analogue: all 23 classes covered at every fraction.
    let spec = DatasetSpec {
        objects: 300,
        ..KDDCUP99
    };
    for frac in [0.1, 0.5, 1.0] {
        let mut rng = StdRng::seed_from_u64(6);
        let d = generate_fraction(spec, frac, &mut rng);
        let mut seen = vec![false; spec.classes];
        for &l in &d.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "class coverage broken at {frac}");

        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        let data = a.uncertain_objects();
        for algo in Algo::SCALABILITY {
            let out = run_timed(algo, &data, spec.classes, 7, &mini_cfg()).unwrap();
            assert_eq!(out.clustering.len(), data.len(), "{}", algo.name());
        }
    }
}
