//! Snapshot/restore exactness suite.
//!
//! The contract under test: interrupting a streaming session mid-churn —
//! snapshot, drop the engine, restore from bytes, continue the same edit
//! script — produces **byte-for-byte** the labels, per-cluster statistic
//! bits and objective bits of the uninterrupted run. Pinned across the full
//! configuration matrix {objects, slab} × {pruning off, bounds} ×
//! {scalar, detected SIMD}, deterministically and under a property test
//! with random scripts and random cut points. Handles issued before the
//! snapshot stay valid after restore (slot and generation are part of the
//! serialized state), so callers keep their ids across a recovery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::PruningConfig;
use ucpc::uncertain::simd::{self, Backend};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// One scripted streaming session, replayed identically with and without
/// the mid-script snapshot/restore interruption.
#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    /// Remove the `r`-th (mod live count) still-live handle.
    Remove(usize),
    Stabilize(usize),
}

fn churn_script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(steps + 8);
    for _ in 0..8 {
        script.push(Op::Insert(
            rng.gen_range(-10.0..10.0),
            rng.gen_range(0.05..0.8),
        ));
    }
    for _ in 0..steps {
        script.push(match rng.gen_range(0..10u8) {
            0..=4 => Op::Insert(rng.gen_range(-10.0..10.0), rng.gen_range(0.05..0.8)),
            5..=7 => Op::Remove(rng.gen_range(0..64)),
            _ => Op::Stabilize(rng.gen_range(1..4)),
        });
    }
    script
}

fn apply(live: &mut IncrementalUcpc, ids: &mut Vec<ObjectHandle>, op: &Op) {
    match *op {
        Op::Insert(c, s) => {
            let o = UncertainObject::new(vec![
                UnivariatePdf::normal(c, s),
                UnivariatePdf::uniform_centered(-c * 0.5, s + 0.1),
            ]);
            ids.push(live.insert(&o).unwrap());
        }
        Op::Remove(r) => {
            let alive: Vec<ObjectHandle> = ids
                .iter()
                .copied()
                .filter(|&id| live.label_of(id).is_some())
                .collect();
            if !alive.is_empty() {
                live.remove(alive[r % alive.len()])
                    .expect("picked handle is live");
            }
        }
        Op::Stabilize(p) => {
            live.stabilize(p);
        }
    }
}

/// Runs `script` on a fresh engine; if `cut` is given, snapshots after
/// `cut` ops, drops the engine, restores from bytes and continues — the
/// pre-cut handles are reused verbatim across the interruption.
fn run(
    backend: StreamBackend,
    pruning: PruningConfig,
    script: &[Op],
    cut: Option<usize>,
) -> IncrementalUcpc {
    let mut live = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
    live.set_pruning(pruning);
    let mut ids: Vec<ObjectHandle> = Vec::new();
    for (i, op) in script.iter().enumerate() {
        if cut == Some(i) {
            let bytes = live.snapshot();
            drop(live);
            live = IncrementalUcpc::restore(&bytes).expect("own snapshot restores");
        }
        apply(&mut live, &mut ids, op);
    }
    live
}

fn assert_identical(a: &IncrementalUcpc, b: &IncrementalUcpc, what: &str) {
    assert_eq!(a.live_labels(), b.live_labels(), "labels diverged: {what}");
    assert_eq!(
        a.cluster_stats(),
        b.cluster_stats(),
        "cluster statistics diverged bitwise: {what}"
    );
    assert_eq!(
        a.objective().to_bits(),
        b.objective().to_bits(),
        "objective bits diverged: {what}"
    );
}

#[test]
fn restore_mid_churn_continues_bit_identically_across_the_matrix() {
    let restore = simd::active_backend();
    let script = churn_script(7, 140);
    for simd_backend in [Backend::Scalar, Backend::detect()] {
        simd::force_backend(simd_backend).expect("backend available");
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            for backend in [StreamBackend::Objects, StreamBackend::Slab] {
                let what = format!(
                    "{} / {:?} / {}",
                    backend.name(),
                    pruning,
                    simd_backend.name()
                );
                let uninterrupted = run(backend, pruning, &script, None);
                for cut in [20, 74, 139] {
                    let resumed = run(backend, pruning, &script, Some(cut));
                    assert_identical(&uninterrupted, &resumed, &format!("{what}, cut {cut}"));
                }
            }
        }
    }
    simd::force_backend(restore).expect("restore prior backend");
}

#[test]
fn snapshot_of_restored_engine_reproduces_the_bytes() {
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let live = run(backend, pruning, &churn_script(21, 90), None);
            let bytes = live.snapshot();
            let back = IncrementalUcpc::restore(&bytes).expect("restores");
            assert_eq!(back.backend(), backend);
            assert_eq!(
                back.snapshot(),
                bytes,
                "snapshot(restore(s)) must equal s ({} / {:?})",
                backend.name(),
                pruning
            );
        }
    }
}

#[test]
fn v2_streaming_snapshot_roundtrips_and_v1_stays_readable() {
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let what = format!("{} / {:?}", backend.name(), pruning);
            let live = run(backend, pruning, &churn_script(33, 120), None);
            let v1 = live.snapshot();
            let v2 = live.snapshot_v2();
            // Both formats restore, to bitwise-identical engines.
            let from_v1 = IncrementalUcpc::restore(&v1).expect("v1 restores");
            let from_v2 = IncrementalUcpc::restore(&v2).expect("v2 restores");
            assert_eq!(from_v2.backend(), backend);
            assert_identical(&from_v1, &from_v2, &what);
            // Chunking is deterministic: snapshot_v2(restore(s)) == s, and
            // the restored engine still emits the exact v1 bytes too.
            assert_eq!(
                from_v2.snapshot_v2(),
                v2,
                "v2 round-trip bytes diverged: {what}"
            );
            assert_eq!(
                from_v2.snapshot(),
                v1,
                "v1 view of the v2-restored engine diverged: {what}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random scripts, random cut points: the interrupted run is always
    /// bit-identical to the uninterrupted one, on both backends and both
    /// pruning configurations.
    #[test]
    fn random_cut_points_preserve_bit_identity(
        seed in 0u64..1_000_000,
        steps in 20usize..100,
        cut_frac in 0.0f64..1.0,
        pruned in 0u8..2,
    ) {
        let script = churn_script(seed, steps);
        let cut = ((script.len() - 1) as f64 * cut_frac) as usize;
        let pruning = if pruned == 1 { PruningConfig::Bounds } else { PruningConfig::Off };
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let uninterrupted = run(backend, pruning, &script, None);
            let resumed = run(backend, pruning, &script, Some(cut));
            prop_assert_eq!(uninterrupted.live_labels(), resumed.live_labels());
            prop_assert_eq!(uninterrupted.cluster_stats(), resumed.cluster_stats());
            prop_assert_eq!(
                uninterrupted.objective().to_bits(),
                resumed.objective().to_bits()
            );
        }
    }
}
