//! Degenerate-case integration tests: on point-mass (deterministic) objects
//! every moment-based uncertain algorithm must collapse to its classical
//! counterpart, and the Case-1 evaluation path must be exactly the
//! deterministic path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::kmeans::KMeans;
use ucpc::baselines::{MmVar, UkMeans};
use ucpc::core::objective::ClusterStats;
use ucpc::core::Ucpc;
use ucpc::uncertain::distance::{expected_sq_distance, sq_euclidean};
use ucpc::uncertain::UncertainObject;

fn points_to_objects(points: &[Vec<f64>]) -> Vec<UncertainObject> {
    points
        .iter()
        .map(|p| UncertainObject::deterministic(p))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On deterministic objects, ÊD reduces to the squared Euclidean distance.
    #[test]
    fn expected_distance_reduces_to_euclidean(
        a in prop::collection::vec(-100.0..100.0f64, 3),
        b in prop::collection::vec(-100.0..100.0f64, 3),
    ) {
        let oa = UncertainObject::deterministic(&a);
        let ob = UncertainObject::deterministic(&b);
        let d = expected_sq_distance(&oa, &ob);
        prop_assert!((d - sq_euclidean(&a, &b)).abs() < 1e-9);
    }

    /// On deterministic objects J = J_UK = K-means SSE contribution, and
    /// J_MM = SSE/|C|.
    #[test]
    fn objectives_reduce_to_sse(
        points in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 2), 2..10)
    ) {
        let objs = points_to_objects(&points);
        let stats = ClusterStats::from_members(objs.iter());
        // SSE around the centroid.
        let c = stats.centroid();
        let sse: f64 = points.iter().map(|p| sq_euclidean(p, &c)).sum();
        prop_assert!((stats.j_uk() - sse).abs() < 1e-6 * (1.0 + sse));
        prop_assert!((stats.j() - sse).abs() < 1e-6 * (1.0 + sse), "zero variance: J = J_UK");
    }
}

#[test]
fn ucpc_ukmeans_mmvar_all_find_the_same_obvious_partition() {
    let points: Vec<Vec<f64>> = vec![
        vec![0.0, 0.0],
        vec![0.4, 0.1],
        vec![0.2, 0.3],
        vec![50.0, 50.0],
        vec![50.3, 50.2],
        vec![50.1, 49.8],
    ];
    let objs = points_to_objects(&points);

    let mut results = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);
    results.push(Ucpc::default().run(&objs, 2, &mut rng).unwrap().clustering);
    let mut rng = StdRng::seed_from_u64(1);
    results.push(
        UkMeans::default()
            .run(&objs, 2, &mut rng)
            .unwrap()
            .clustering,
    );
    let mut rng = StdRng::seed_from_u64(1);
    results.push(MmVar::default().run(&objs, 2, &mut rng).unwrap().clustering);
    let mut rng = StdRng::seed_from_u64(1);
    results.push(
        KMeans::default()
            .run(&objs, 2, &mut rng)
            .unwrap()
            .clustering,
    );

    for c in &results {
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(0), c.label(2));
        assert_eq!(c.label(3), c.label(4));
        assert_eq!(c.label(3), c.label(5));
        assert_ne!(c.label(0), c.label(3));
    }
}

#[test]
fn ucpc_objective_equals_kmeans_sse_on_point_masses() {
    let points: Vec<Vec<f64>> = (0..20)
        .map(|i| vec![(i % 5) as f64 * 2.0, (i / 5) as f64 * 3.0])
        .collect();
    let objs = points_to_objects(&points);
    let mut rng = StdRng::seed_from_u64(5);
    let ucpc = Ucpc::default().run(&objs, 3, &mut rng).unwrap();

    // Recompute the K-means SSE of UCPC's final partition.
    let mut sse = 0.0;
    for members in ucpc.clustering.members() {
        if members.is_empty() {
            continue;
        }
        let stats = ClusterStats::from_members(members.iter().map(|&i| &objs[i]));
        sse += stats.j_uk();
    }
    assert!(
        (ucpc.objective - sse).abs() < 1e-9,
        "zero-variance J must equal the SSE: {} vs {sse}",
        ucpc.objective
    );
}

#[test]
fn deterministic_objects_report_themselves() {
    let o = UncertainObject::deterministic(&[1.0, 2.0]);
    assert!(o.is_deterministic());
    let mixed = UncertainObject::new(vec![
        ucpc::uncertain::UnivariatePdf::PointMass { x: 0.0 },
        ucpc::uncertain::UnivariatePdf::normal(0.0, 1.0),
    ]);
    assert!(!mixed.is_deterministic());
}
