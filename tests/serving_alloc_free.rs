//! Zero-allocation gate for the serving front door's steady state.
//!
//! [`ServingUcpc`] preallocates everything its request loop touches — the
//! staging arena (one row per queue slot), the pending/response queues, the
//! delta matrix, and the fixed-size top-k answer arrays — so steady-state
//! serving (admit → flush → answer, with commits recycling slab rows freed
//! by removals) must hit the allocator **zero** times. This binary pins
//! that with a counting global allocator; it holds exactly one test so no
//! concurrently running test can pollute the counter (integration-test
//! files compile to separate processes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::serving::{ServingConfig, ServingResponse, ServingUcpc};
use ucpc::core::PruningConfig;
use ucpc::uncertain::{Moments, UncertainObject, UnivariatePdf};

/// System allocator with a global counter of alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_serving_allocates_nothing() {
    let m = 16;
    let k = 4;
    let n = 200; // live window
    let churn = 300; // measured steps: one query + one commit + one removal each

    // All arrival payloads are materialized before the measured window; the
    // serving layer only ever borrows them (moments-form admission).
    let mk = |i: usize| -> Moments {
        UncertainObject::new(
            (0..m)
                .map(|j| UnivariatePdf::normal(((i * m + j) % 41) as f64 * 0.5 - 10.0, 0.2))
                .collect(),
        )
        .moments()
        .clone()
    };
    let per_attempt = churn / 5;
    let payloads: Vec<Moments> = (0..n + 6 * per_attempt).map(mk).collect();

    let mut engine = IncrementalUcpc::with_backend(m, k, StreamBackend::Slab).unwrap();
    engine.set_pruning(PruningConfig::Off);
    let mut serving = ServingUcpc::over(
        engine,
        ServingConfig {
            batch: 8,
            queue_capacity: 32,
            deadline: None,
            stabilize_every: 0,
            stabilize_passes: 2,
            top_k: 4,
            // WAL fields from the environment: the CI `wal` leg reruns this
            // suite with `UCPC_WAL=on` to prove logging changes no behaviour.
            ..ServingConfig::default()
        },
    );

    // Live handles in commit order; sized for everything the test churns.
    let mut ids: Vec<ObjectHandle> = Vec::with_capacity(n + 6 * per_attempt);
    let mut next = 0usize;

    // Drains every answered response, keeping committed handles.
    fn drain(serving: &mut ServingUcpc, ids: &mut Vec<ObjectHandle>) {
        while let Some((_, resp)) = serving.pop_response() {
            if let ServingResponse::Committed { handle, .. } = resp {
                ids.push(handle);
            }
        }
    }

    // Seed the live window through the serving path itself.
    for _ in 0..n {
        serving.submit_commit(&payloads[next]).unwrap();
        next += 1;
        serving.poll(Instant::now());
        drain(&mut serving, &mut ids);
    }
    serving.flush();
    drain(&mut serving, &mut ids);
    assert_eq!(ids.len(), n);

    // One warm-up round pays every one-time growth: the slab free list's
    // first capacity, response-queue high water, and the delta matrix.
    for _ in 0..per_attempt {
        serving.submit_query(&payloads[next % n]).unwrap();
        serving.submit_commit(&payloads[next]).unwrap();
        next += 1;
        serving.submit_remove(ids.remove(0)).unwrap();
        serving.poll(Instant::now());
        drain(&mut serving, &mut ids);
    }
    serving.flush();
    drain(&mut serving, &mut ids);

    // The allocator counter is process-global, so the libtest harness
    // thread can race a handful of its own allocations into the measured
    // window. A genuinely per-request allocation would show up on every
    // attempt; one observed zero-allocation run pins the contract. State
    // persists across attempts.
    let mut cleanest = usize::MAX;
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..per_attempt {
            serving.submit_query(&payloads[next % n]).unwrap();
            serving.submit_commit(&payloads[next]).unwrap();
            next += 1;
            serving.submit_remove(ids.remove(0)).unwrap();
            serving.poll(Instant::now());
            drain(&mut serving, &mut ids);
        }
        serving.flush();
        drain(&mut serving, &mut ids);
        let during = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        cleanest = cleanest.min(during);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state serving hit the allocator on every attempt \
         ({cleanest} calls at best over {per_attempt} query+commit+remove steps)"
    );

    // The window is intact and every request was answered exactly once.
    assert_eq!(serving.engine().len(), n);
    assert_eq!(serving.pending_len(), 0);
    assert_eq!(serving.response_len(), 0);
}
