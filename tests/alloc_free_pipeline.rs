//! Zero-allocation gate for the arena-native batch pipeline.
//!
//! `PdfAssignment::assign_into_arena` promises that, after its single
//! up-front capacity reservation, filling a `MomentArena` performs **no**
//! per-object heap allocation: no `UncertainObject`, no `Moments`, no pdf
//! vectors — every truncated pdf lives on the stack. This binary pins that
//! promise with a counting global allocator. It holds exactly one test so
//! no concurrently running test can pollute the counter (integration-test
//! files compile to separate processes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc::uncertain::MomentArena;

/// System allocator with a global counter of alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn assign_into_arena_allocates_nothing_after_reservation() {
    let n = 500;
    let m = 16;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..m).map(|j| (i % 10) as f64 + j as f64 * 0.1).collect())
        .collect();
    let dim_std = vec![3.0; m];

    for kind in NoiseKind::all() {
        let model = UncertaintyModel::paper_default(kind);
        let mut rng = StdRng::seed_from_u64(42);
        let assignment = PdfAssignment::assign(&points, &dim_std, &model, &mut rng);

        // The allocator counter is process-global, so the libtest harness
        // thread can race a handful of its own allocations into the
        // measured window. A genuinely per-object allocation would show up
        // on *every* attempt (>= n calls each time), so observing a single
        // zero-allocation fill pins the contract; retry a few times to
        // shake off harness noise.
        let mut cleanest = usize::MAX;
        let mut arena = MomentArena::with_capacity(n, m);
        for _attempt in 0..5 {
            // The single reservation the contract allows.
            arena = MomentArena::with_capacity(n, m);
            let cap = arena.row_capacity();
            assert!(cap >= n, "reservation must cover the whole batch");

            let before = ALLOC_CALLS.load(Ordering::Relaxed);
            assignment.assign_into_arena(&mut arena);
            let during = ALLOC_CALLS.load(Ordering::Relaxed) - before;

            assert_eq!(arena.len(), n);
            assert_eq!(
                arena.row_capacity(),
                cap,
                "{kind:?}: a column grew despite the reservation"
            );
            cleanest = cleanest.min(during);
            if cleanest == 0 {
                break;
            }
        }
        assert_eq!(
            cleanest, 0,
            "{kind:?}: arena-native fill hit the allocator on every attempt \
             ({cleanest} calls at best)"
        );

        // The rows written allocation-free are the same bits the
        // object-materializing route produces.
        let via_objects = MomentArena::from_objects(&assignment.uncertain_objects());
        assert_eq!(arena, via_objects, "{kind:?}: pipeline diverged");
    }
}
