//! Property-style seeded-grid equivalence tests for the scalar-aggregate
//! delta-`J` kernel: over a grid of (n, m, k) shapes and seeds, the kernel
//! must agree with naive from-scratch recomputation after every applied
//! relocation, every `delta_j_*` must match its naive `*_after_*` sweep, and
//! UCPC's objective trace must stay monotone under the kernel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::objective::ClusterStats;
use ucpc::core::Ucpc;
use ucpc::uncertain::{MomentArena, UncertainObject, UnivariatePdf};

/// Mixed-family random dataset (means in ±8, spreads in [0.05, 2]).
fn dataset(n: usize, m: usize, seed: u64) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        let mean = rng.gen_range(-8.0..8.0);
                        let spread = rng.gen_range(0.05..2.0);
                        match rng.gen_range(0..3u8) {
                            0 => UnivariatePdf::uniform_centered(mean, spread),
                            1 => UnivariatePdf::normal(mean, spread),
                            _ => UnivariatePdf::PointMass { x: mean },
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn random_labels(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect();
    // The first k objects guarantee non-empty clusters wherever they land.
    labels.rotate_left(seed as usize % n.max(1));
    labels
}

/// Total `J` rebuilt from scratch — the ground truth the kernel must track.
fn rebuild_total_j(data: &[UncertainObject], labels: &[usize], k: usize) -> f64 {
    (0..k)
        .filter_map(|c| {
            let members: Vec<&UncertainObject> = labels
                .iter()
                .zip(data)
                .filter(|&(&l, _)| l == c)
                .map(|(_, o)| o)
                .collect();
            if members.is_empty() {
                None
            } else {
                Some(ClusterStats::from_members(members).j())
            }
        })
        .sum()
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

const GRID: [(usize, usize, usize); 5] =
    [(12, 1, 2), (30, 3, 3), (40, 8, 5), (25, 16, 4), (60, 5, 6)];

#[test]
fn kernel_agrees_with_from_scratch_j_after_every_relocation() {
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        for seed in 0..3u64 {
            let seed = seed + 100 * gi as u64;
            let data = dataset(n, m, seed);
            let arena = MomentArena::from_objects(&data);
            let mut labels = random_labels(n, k, seed + 7);
            let mut stats = vec![ClusterStats::empty(m); k];
            for (i, &l) in labels.iter().enumerate() {
                stats[l].add_view(&arena.view(i));
            }

            // One full greedy relocation pass, checking after EVERY applied
            // relocation that the incrementally maintained scalar-aggregate
            // objective equals a from-scratch naive recomputation.
            for i in 0..n {
                let src = labels[i];
                if stats[src].size() == 1 {
                    continue;
                }
                let v = arena.view(i);
                let removal_gain = stats[src].delta_j_remove(&v);
                let mut best: Option<(usize, f64)> = None;
                for (dst, stat) in stats.iter().enumerate() {
                    if dst == src {
                        continue;
                    }
                    let delta = removal_gain + stat.delta_j_add(&v);
                    if best.is_none_or(|(_, bd)| delta < bd) {
                        best = Some((dst, delta));
                    }
                }
                let Some((dst, delta)) = best else { continue };
                if delta >= -1e-9 {
                    continue;
                }
                let before: f64 = stats.iter().map(ClusterStats::j).sum();
                stats[src].remove_view(&v);
                stats[dst].add_view(&v);
                labels[i] = dst;
                let after: f64 = stats.iter().map(ClusterStats::j).sum();
                let rebuilt = rebuild_total_j(&data, &labels, k);
                assert!(
                    close(after, rebuilt, 1e-9),
                    "n={n} m={m} k={k} seed={seed}: kernel J {after} vs rebuilt {rebuilt}"
                );
                assert!(
                    close(after - before, delta, 1e-6),
                    "n={n} m={m} k={k} seed={seed}: applied delta {} vs predicted {delta}",
                    after - before
                );
            }
        }
    }
}

#[test]
fn delta_kernel_matches_naive_sweeps_pointwise() {
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        let seed = 1000 + gi as u64;
        let data = dataset(n, m, seed);
        let arena = MomentArena::from_objects(&data);
        let labels = random_labels(n, k, seed + 3);
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, &l) in labels.iter().enumerate() {
            stats[l].add_view(&arena.view(i));
        }

        for i in 0..n {
            let v = arena.view(i);
            let o = data[i].moments();
            let src = labels[i];
            for (c, s) in stats.iter().enumerate() {
                // The kernel's scalar objectives vs the per-dimension sweeps.
                assert!(close(s.j(), s.j_naive(), 1e-9), "J scalar vs naive");
                assert!(
                    close(s.j_uk(), s.j_uk_naive(), 1e-9),
                    "J_UK scalar vs naive"
                );
                // Add direction is valid against any cluster.
                assert!(
                    close(s.delta_j_add(&v), s.j_after_add(o) - s.j_naive(), 1e-9),
                    "delta_j_add vs naive (n={n} m={m} k={k} i={i} c={c})"
                );
                assert!(
                    close(
                        s.delta_j_uk_add(&v),
                        s.j_uk_after_add(o) - s.j_uk_naive(),
                        1e-9
                    ),
                    "delta_j_uk_add vs naive"
                );
                assert!(
                    close(s.delta_j_mm_add(&v), s.j_mm_after_add(o) - s.j_mm(), 1e-9),
                    "delta_j_mm_add vs naive"
                );
                // Remove direction only against the member's own cluster.
                if c == src {
                    assert!(
                        close(
                            s.delta_j_remove(&v),
                            s.j_after_remove(o) - s.j_naive(),
                            1e-9
                        ),
                        "delta_j_remove vs naive"
                    );
                    assert!(
                        close(
                            s.delta_j_uk_remove(&v),
                            s.j_uk_after_remove(o) - s.j_uk_naive(),
                            1e-9
                        ),
                        "delta_j_uk_remove vs naive"
                    );
                    assert!(
                        close(
                            s.delta_j_mm_remove(&v),
                            s.j_mm_after_remove(o) - s.j_mm(),
                            1e-9
                        ),
                        "delta_j_mm_remove vs naive"
                    );
                }
            }
        }
    }
}

/// Total `J_UK` and `J_MM` rebuilt from scratch — ground truth for the UK
/// and MM kernel variants.
fn rebuild_total_uk_mm(data: &[UncertainObject], labels: &[usize], k: usize) -> (f64, f64) {
    (0..k)
        .filter_map(|c| {
            let members: Vec<&UncertainObject> = labels
                .iter()
                .zip(data)
                .filter(|&(&l, _)| l == c)
                .map(|(_, o)| o)
                .collect();
            if members.is_empty() {
                None
            } else {
                let s = ClusterStats::from_members(members);
                Some((s.j_uk(), s.j_mm()))
            }
        })
        .fold((0.0, 0.0), |(uk, mm), (u, m)| (uk + u, mm + m))
}

#[test]
fn uk_and_mm_kernels_agree_with_from_scratch_over_relocation_walks() {
    // The UK (`delta_j_uk_*`) and MM (`delta_j_mm_*`) kernel variants driven
    // through whole greedy relocation walks on the seeded grid — previously
    // only the base delta-J path got this treatment (the pointwise test
    // below exercises UK/MM against a single static labelling).
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        for seed in 0..2u64 {
            let seed = seed + 3000 + 100 * gi as u64;
            let data = dataset(n, m, seed);
            let arena = MomentArena::from_objects(&data);
            let mut labels = random_labels(n, k, seed + 5);
            let mut stats = vec![ClusterStats::empty(m); k];
            for (i, &l) in labels.iter().enumerate() {
                stats[l].add_view(&arena.view(i));
            }

            // A UK-means-style greedy pass: relocate wherever the UK kernel
            // says the UK objective drops, verifying both the UK and MM
            // aggregates against from-scratch rebuilds after every applied
            // relocation.
            for i in 0..n {
                let src = labels[i];
                if stats[src].size() == 1 {
                    continue;
                }
                let v = arena.view(i);
                let uk_before: f64 = stats.iter().map(ClusterStats::j_uk).sum();
                let removal_gain = stats[src].delta_j_uk_remove(&v);
                let mut best: Option<(usize, f64)> = None;
                for (dst, stat) in stats.iter().enumerate() {
                    if dst == src {
                        continue;
                    }
                    let delta = removal_gain + stat.delta_j_uk_add(&v);
                    if best.is_none_or(|(_, bd)| delta < bd) {
                        best = Some((dst, delta));
                    }
                }
                let Some((dst, delta)) = best else { continue };
                if delta >= -1e-9 {
                    continue;
                }
                // MM deltas predicted before the move, validated after it.
                let mm_before: f64 = stats.iter().map(ClusterStats::j_mm).sum();
                let mm_delta = stats[src].delta_j_mm_remove(&v) + stats[dst].delta_j_mm_add(&v);

                stats[src].remove_view(&v);
                stats[dst].add_view(&v);
                labels[i] = dst;

                let uk_after: f64 = stats.iter().map(ClusterStats::j_uk).sum();
                let mm_after: f64 = stats.iter().map(ClusterStats::j_mm).sum();
                let (uk_rebuilt, mm_rebuilt) = rebuild_total_uk_mm(&data, &labels, k);
                assert!(
                    close(uk_after, uk_rebuilt, 1e-9),
                    "n={n} m={m} k={k} seed={seed}: UK kernel {uk_after} vs \
                     rebuilt {uk_rebuilt}"
                );
                assert!(
                    close(mm_after, mm_rebuilt, 1e-9),
                    "n={n} m={m} k={k} seed={seed}: MM kernel {mm_after} vs \
                     rebuilt {mm_rebuilt}"
                );
                assert!(
                    close(uk_after - uk_before, delta, 1e-6),
                    "predicted UK delta {delta} vs applied {}",
                    uk_after - uk_before
                );
                assert!(
                    close(mm_after - mm_before, mm_delta, 1e-6),
                    "predicted MM delta {mm_delta} vs applied {}",
                    mm_after - mm_before
                );
            }
        }
    }
}

#[test]
fn objective_trace_stays_monotone_and_final_j_matches_rebuild() {
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        for seed in 0..2u64 {
            let seed = seed + 10 * gi as u64;
            let data = dataset(n, m, 2000 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Ucpc::default().run(&data, k, &mut rng).unwrap();
            for w in r.objective_trace.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-6 * (1.0 + w[0].abs()),
                    "n={n} m={m} k={k} seed={seed}: trace rose {w:?}"
                );
            }
            let rebuilt = rebuild_total_j(&data, r.clustering.labels(), k);
            assert!(
                close(r.objective, rebuilt, 1e-9),
                "n={n} m={m} k={k} seed={seed}: final {} vs rebuilt {rebuilt}",
                r.objective
            );
        }
    }
}
