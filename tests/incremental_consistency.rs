//! Regression + equivalence suite for `IncrementalUcpc` under interleaved
//! inserts, removals and relocation passes.
//!
//! Three pins:
//!
//! 1. **Cache/stat consistency** (seed regression): removing an object on
//!    the reference `objects` backend mutates a cluster's statistics
//!    outside the drift-tracked relocation path; if the prune cache
//!    survived that edit, a stale bound could skip a scan whose outcome the
//!    departed member changed. The reference backend therefore bumps its
//!    cache epoch on every insert/remove.
//! 2. **Backend equivalence**: the slab backend (free-list row reuse,
//!    drift-tracked edits, surgical per-cluster invalidation) must be
//!    *byte-identical* to the reference backend — labels, per-cluster
//!    statistics, objectives — across pruning configurations and SIMD
//!    backends, under arbitrary interleavings with slot reuse. A proptest
//!    drives random scripts through both backends and cross-checks the
//!    maintained aggregates against a from-scratch rebuild after replay.
//! 3. **Aggregate integrity**: the maintained `ClusterStats` stay close to
//!    a from-scratch rebuild after every step of a random interleaving.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::objective::ClusterStats;
use ucpc::core::PruningConfig;
use ucpc::uncertain::simd::{self, Backend};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn object(rng: &mut StdRng) -> UncertainObject {
    let c = rng.gen_range(-10.0..10.0);
    UncertainObject::new(vec![
        UnivariatePdf::normal(c, rng.gen_range(0.05..0.8)),
        UnivariatePdf::uniform_centered(-c * 0.5, rng.gen_range(0.1..1.0)),
    ])
}

/// Rebuilds per-cluster statistics from the live objects and labels.
/// Slots are recycled, so objects are recovered through a handle-keyed map
/// rather than by slot index ((slot, generation) pairs are unique within a
/// run).
fn rebuild(
    live: &IncrementalUcpc,
    by_handle: &HashMap<ObjectHandle, UncertainObject>,
) -> Vec<ClusterStats> {
    let mut stats = vec![ClusterStats::empty(2); live.k()];
    for (id, c) in live.live_labels() {
        stats[c].add(by_handle[&id].moments());
    }
    stats
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn aggregates_match_rebuild_after_interleaved_removals_and_passes() {
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut live = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
            live.set_pruning(PruningConfig::Bounds);
            let mut log: HashMap<ObjectHandle, UncertainObject> = HashMap::new();
            let mut ids = Vec::new();

            for step in 0..150 {
                match rng.gen_range(0..10u8) {
                    0..=5 => {
                        let o = object(&mut rng);
                        let h = live.insert(&o).unwrap();
                        ids.push(h);
                        log.insert(h, o);
                    }
                    6..=7 => {
                        if !ids.is_empty() {
                            // The picked handle may already be stale (its
                            // slot possibly recycled); the checked error is
                            // exactly the no-op the old bool API promised.
                            let id = ids[rng.gen_range(0..ids.len())];
                            let _ = live.remove(id);
                        }
                    }
                    _ => {
                        live.stabilize(rng.gen_range(1..4usize));
                    }
                }

                let rebuilt = rebuild(&live, &log);
                for (c, (kept, fresh)) in live.cluster_stats().iter().zip(&rebuilt).enumerate() {
                    assert_eq!(
                        kept.size(),
                        fresh.size(),
                        "cluster {c} size at step {step} (seed {seed}, {})",
                        backend.name()
                    );
                    assert!(
                        close(kept.j(), fresh.j()),
                        "cluster {c} J drifted from rebuild: {} vs {} \
                         (step {step}, seed {seed}, {})",
                        kept.j(),
                        fresh.j(),
                        backend.name()
                    );
                    for j in 0..kept.dims() {
                        assert!(close(kept.psi()[j], fresh.psi()[j]), "psi[{j}]");
                        assert!(close(kept.phi()[j], fresh.phi()[j]), "phi[{j}]");
                        assert!(
                            close(kept.mean_sum()[j], fresh.mean_sum()[j]),
                            "mean_sum[{j}]"
                        );
                    }
                }
                let total: f64 = rebuilt.iter().map(ClusterStats::j).sum();
                assert!(close(live.objective(), total), "total objective");
            }
        }
    }
}

#[test]
fn removal_then_stabilize_cannot_reuse_stale_bounds() {
    // Craft the failure the reference backend's epoch bump prevents: warm
    // the cache with a stabilization pass, then remove members so a
    // previously-hopeless relocation becomes beneficial, and verify the
    // next pass actually takes it (a stale "skip" would leave the partition
    // frozen). Pinned to the `objects` backend, whose untracked edits make
    // the global invalidation load-bearing; the slab backend survives the
    // same script through drift-tracked edits and is pinned byte-identical
    // to this path by the equivalence tests below.
    let mut live = IncrementalUcpc::with_backend(1, 2, StreamBackend::Objects).unwrap();
    live.set_pruning(PruningConfig::Bounds);
    let obj = |c: f64| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);

    // Cluster layout after insertions + settle: {0.0, 0.2, 0.4} | {9.0, 9.2, 5.5}.
    let mut ids = Vec::new();
    for c in [0.0, 0.2, 0.4, 9.0, 9.2, 5.5] {
        ids.push(live.insert(&obj(c)).unwrap());
    }
    live.stabilize(10); // warm caches at the settled partition
    let settled: Vec<(ObjectHandle, usize)> = live.live_labels();
    let right = settled
        .iter()
        .find(|&&(id, _)| id == ids[4])
        .expect("9.2 is live")
        .1;

    // Remove the two far-right anchors; 5.5 should now prefer whichever
    // side wins on the remaining data — recompute, don't trust the cache.
    live.remove(ids[3]).unwrap();
    live.remove(ids[4]).unwrap();
    live.stabilize(10);

    let after = live.live_labels();
    let lone = after.iter().find(|&&(id, _)| id == ids[5]).unwrap().1;
    // With {0.0, 0.2, 0.4} on one side and only 5.5 left on the other, a
    // singleton source is pinned by the k-preservation rule; the essential
    // assertion is that the pass re-scanned (epoch bumped) instead of
    // skipping on stale bounds — observable through the counters.
    let counters = live.pruning_counters();
    assert!(
        counters.full_scans > 0,
        "stabilize after removal must rescan, got {counters:?}"
    );
    assert_eq!(lone, right, "handle bookkeeping survived the removals");

    // And an unpruned twin replaying the same history agrees exactly.
    let mut twin = IncrementalUcpc::with_backend(1, 2, StreamBackend::Objects).unwrap();
    twin.set_pruning(PruningConfig::Off);
    let mut twin_ids = Vec::new();
    for c in [0.0, 0.2, 0.4, 9.0, 9.2, 5.5] {
        twin_ids.push(twin.insert(&obj(c)).unwrap());
    }
    twin.stabilize(10);
    twin.remove(twin_ids[3]).unwrap();
    twin.remove(twin_ids[4]).unwrap();
    twin.stabilize(10);
    assert_eq!(live.live_labels(), twin.live_labels());
    assert!((live.objective() - twin.objective()).abs() <= 1e-10);
}

/// One scripted streaming session: the op stream every equivalence check
/// replays identically on each configuration under test.
#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    /// Remove the `r`-th (mod live count) still-live handle.
    Remove(usize),
    Stabilize(usize),
}

fn replay(
    backend: StreamBackend,
    pruning: PruningConfig,
    script: &[Op],
) -> (IncrementalUcpc, HashMap<ObjectHandle, UncertainObject>) {
    let mut live = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
    live.set_pruning(pruning);
    let mut ids: Vec<ObjectHandle> = Vec::new();
    let mut by_handle: HashMap<ObjectHandle, UncertainObject> = HashMap::new();
    for op in script {
        match *op {
            Op::Insert(c, s) => {
                let o = UncertainObject::new(vec![
                    UnivariatePdf::normal(c, s),
                    UnivariatePdf::uniform_centered(-c * 0.5, s + 0.1),
                ]);
                let h = live.insert(&o).unwrap();
                ids.push(h);
                by_handle.insert(h, o);
            }
            Op::Remove(r) => {
                let alive: Vec<ObjectHandle> = ids
                    .iter()
                    .copied()
                    .filter(|&id| live.label_of(id).is_some())
                    .collect();
                if !alive.is_empty() {
                    live.remove(alive[r % alive.len()])
                        .expect("picked handle is live");
                }
            }
            Op::Stabilize(p) => {
                live.stabilize(p);
            }
        }
    }
    (live, by_handle)
}

/// Byte-level equality of two drivers' partitions and statistics.
fn assert_identical(a: &IncrementalUcpc, b: &IncrementalUcpc, what: &str) {
    assert_eq!(a.live_labels(), b.live_labels(), "labels diverged: {what}");
    assert_eq!(
        a.cluster_stats(),
        b.cluster_stats(),
        "cluster statistics diverged bitwise: {what}"
    );
    assert_eq!(
        a.objective().to_bits(),
        b.objective().to_bits(),
        "objective bits diverged: {what}"
    );
}

fn churn_script(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(steps + 8);
    // Seed population so removals and stabilizations have substance.
    for _ in 0..8 {
        script.push(Op::Insert(
            rng.gen_range(-10.0..10.0),
            rng.gen_range(0.05..0.8),
        ));
    }
    for _ in 0..steps {
        script.push(match rng.gen_range(0..10u8) {
            0..=4 => Op::Insert(rng.gen_range(-10.0..10.0), rng.gen_range(0.05..0.8)),
            5..=7 => Op::Remove(rng.gen_range(0..64)),
            _ => Op::Stabilize(rng.gen_range(1..4)),
        });
    }
    script
}

#[test]
fn slab_backend_is_byte_identical_to_objects_backend() {
    // {objects, slab} × {pruning off, bounds} × {scalar, detected SIMD}:
    // every configuration must produce the same labels, bit-identical
    // per-cluster statistics and objective. The SIMD dimension is trivial
    // by the backend bit-identity contract, but asserting it end to end
    // here pins the whole streaming path, slot reuse included.
    let restore = simd::active_backend();
    for seed in 0..4u64 {
        let script = churn_script(seed, 120);
        let mut reference: Option<IncrementalUcpc> = None;
        for simd_backend in [Backend::Scalar, Backend::detect()] {
            simd::force_backend(simd_backend).expect("backend available");
            for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
                for backend in [StreamBackend::Objects, StreamBackend::Slab] {
                    let (run, _) = replay(backend, pruning, &script);
                    if let Some(r) = &reference {
                        assert_identical(
                            r,
                            &run,
                            &format!(
                                "seed {seed}, {} / {:?} / {}",
                                backend.name(),
                                pruning,
                                simd_backend.name()
                            ),
                        );
                    } else {
                        reference = Some(run);
                    }
                }
            }
        }
    }
    simd::force_backend(restore).expect("restore prior backend");
}

#[test]
fn stale_handle_errors_are_identical_across_backends() {
    // Satellite regression: the reference backend used to silently no-op a
    // remove of an already-removed id. Both backends must now return the
    // identical checked error — for a double remove and for a handle whose
    // slot has been recycled to a later arrival.
    use ucpc::core::ClusterError;
    let obj = |c: f64| {
        UncertainObject::new(vec![
            UnivariatePdf::normal(c, 0.1),
            UnivariatePdf::uniform_centered(c, 0.5),
        ])
    };
    let mut errors: Vec<Vec<ClusterError>> = Vec::new();
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        let mut live = IncrementalUcpc::with_backend(2, 2, backend).unwrap();
        let a = live.insert(&obj(0.0)).unwrap();
        let b = live.insert(&obj(9.0)).unwrap();
        live.remove(a).unwrap();
        let double = live.remove(a).expect_err("double remove is an error");
        // Recycle a's slot; the old handle must still be stale.
        let c = live.insert(&obj(0.5)).unwrap();
        assert_eq!(c.slot(), a.slot(), "slot recycled ({})", backend.name());
        let recycled = live.remove(a).expect_err("recycled slot is stale");
        assert!(matches!(double, ClusterError::StaleHandle { .. }));
        assert_eq!(live.label_of(a), None);
        assert!(live.label_of(b).is_some() && live.label_of(c).is_some());
        assert_eq!(live.len(), 2, "stale removes must not change state");
        errors.push(vec![double, recycled]);
    }
    assert_eq!(
        errors[0], errors[1],
        "backends must report identical stale-handle errors"
    );
}

#[test]
fn surgical_invalidation_skips_more_than_epoch_bumps() {
    // The whole point of the tracked-edit path: after edits, the slab
    // backend's cached bounds survive (widened), while the reference
    // backend rescans everything. Same script, same labels — strictly
    // better hit rate.
    let script = churn_script(99, 200);
    let (objects, _) = replay(StreamBackend::Objects, PruningConfig::Bounds, &script);
    let (slab, _) = replay(StreamBackend::Slab, PruningConfig::Bounds, &script);
    assert_identical(&objects, &slab, "hit-rate comparison script");
    let co = objects.pruning_counters();
    let cs = slab.pruning_counters();
    assert!(
        cs.skip_rate() > co.skip_rate(),
        "surgical invalidation must raise the cache hit-rate: \
         slab {:?} vs objects {:?}",
        cs,
        co
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Free-list churn property: random interleavings of
    /// insert/remove/stabilize — with slot reuse on the slab side — keep
    /// the two backends byte-identical and the maintained aggregates
    /// consistent with a from-scratch rebuild.
    #[test]
    fn random_churn_scripts_keep_backends_identical(
        seed in 0u64..1_000_000,
        steps in 10usize..120,
        pruned in 0u8..2,
    ) {
        let script = churn_script(seed, steps);
        let pruning = if pruned == 1 { PruningConfig::Bounds } else { PruningConfig::Off };
        let (objects, _) = replay(StreamBackend::Objects, pruning, &script);
        let (slab, by_handle) = replay(StreamBackend::Slab, pruning, &script);

        prop_assert_eq!(objects.live_labels(), slab.live_labels());
        prop_assert_eq!(objects.cluster_stats(), slab.cluster_stats());
        prop_assert_eq!(
            objects.objective().to_bits(),
            slab.objective().to_bits()
        );

        // Both agree with a from-scratch statistics rebuild, recovering
        // objects through the handle association (slots are recycled, so
        // slot index is not a payload identity).
        let rebuilt = rebuild(&slab, &by_handle);
        for (kept, fresh) in slab.cluster_stats().iter().zip(&rebuilt) {
            prop_assert_eq!(kept.size(), fresh.size());
            prop_assert!(close(kept.j(), fresh.j()));
        }
    }
}
