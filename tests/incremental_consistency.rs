//! Regression: `IncrementalUcpc` cache/stat consistency under interleaved
//! inserts, removals and relocation passes.
//!
//! Removing an object mutates a cluster's statistics outside the
//! drift-tracked relocation path; if the prune cache survived that edit, a
//! stale bound could skip a scan whose outcome the departed member changed.
//! The incremental driver therefore bumps its cache epoch on every
//! insert/remove. This suite interleaves edits with stabilization passes
//! (pruning on) and cross-checks the maintained `ClusterStats` aggregates —
//! per-dimension and scalar — against a from-scratch rebuild after every
//! step, and the live partition against an unpruned twin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::IncrementalUcpc;
use ucpc::core::objective::ClusterStats;
use ucpc::core::PruningConfig;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn object(rng: &mut StdRng) -> UncertainObject {
    let c = rng.gen_range(-10.0..10.0);
    UncertainObject::new(vec![
        UnivariatePdf::normal(c, rng.gen_range(0.05..0.8)),
        UnivariatePdf::uniform_centered(-c * 0.5, rng.gen_range(0.1..1.0)),
    ])
}

/// Rebuilds per-cluster statistics from the live objects and labels.
fn rebuild(live: &IncrementalUcpc, objects: &[UncertainObject]) -> Vec<ClusterStats> {
    let mut stats = vec![ClusterStats::empty(2); live.k()];
    for (id, c) in live.live_labels() {
        stats[c].add(objects[id.index()].moments());
    }
    stats
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn aggregates_match_rebuild_after_interleaved_removals_and_passes() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live = IncrementalUcpc::new(2, 3).unwrap();
        live.set_pruning(PruningConfig::Bounds);
        let mut log: Vec<UncertainObject> = Vec::new();
        let mut ids = Vec::new();

        for step in 0..150 {
            match rng.gen_range(0..10u8) {
                0..=5 => {
                    let o = object(&mut rng);
                    ids.push(live.insert(&o).unwrap());
                    log.push(o);
                }
                6..=7 => {
                    if !ids.is_empty() {
                        let id = ids[rng.gen_range(0..ids.len())];
                        live.remove(id);
                    }
                }
                _ => {
                    live.stabilize(rng.gen_range(1..4usize));
                }
            }

            let rebuilt = rebuild(&live, &log);
            for (c, (kept, fresh)) in live.cluster_stats().iter().zip(&rebuilt).enumerate() {
                assert_eq!(
                    kept.size(),
                    fresh.size(),
                    "cluster {c} size at step {step} (seed {seed})"
                );
                assert!(
                    close(kept.j(), fresh.j()),
                    "cluster {c} J drifted from rebuild: {} vs {} \
                     (step {step}, seed {seed})",
                    kept.j(),
                    fresh.j()
                );
                for j in 0..kept.dims() {
                    assert!(close(kept.psi()[j], fresh.psi()[j]), "psi[{j}]");
                    assert!(close(kept.phi()[j], fresh.phi()[j]), "phi[{j}]");
                    assert!(
                        close(kept.mean_sum()[j], fresh.mean_sum()[j]),
                        "mean_sum[{j}]"
                    );
                }
            }
            let total: f64 = rebuilt.iter().map(ClusterStats::j).sum();
            assert!(close(live.objective(), total), "total objective");
        }
    }
}

#[test]
fn removal_then_stabilize_cannot_reuse_stale_bounds() {
    // Craft the failure the epoch bump prevents: warm the cache with a
    // stabilization pass, then remove members so a previously-hopeless
    // relocation becomes beneficial, and verify the next pass actually
    // takes it (a stale "skip" would leave the partition frozen).
    let mut live = IncrementalUcpc::new(1, 2).unwrap();
    live.set_pruning(PruningConfig::Bounds);
    let obj = |c: f64| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);

    // Cluster layout after insertions + settle: {0.0, 0.2, 0.4} | {9.0, 9.2, 5.5}.
    let mut ids = Vec::new();
    for c in [0.0, 0.2, 0.4, 9.0, 9.2, 5.5] {
        ids.push(live.insert(&obj(c)).unwrap());
    }
    live.stabilize(10); // warm caches at the settled partition
    let settled: Vec<(ucpc::core::incremental::ObjectId, usize)> = live.live_labels();
    let right = settled
        .iter()
        .find(|&&(id, _)| id == ids[4])
        .expect("9.2 is live")
        .1;

    // Remove the two far-right anchors; 5.5 should now prefer whichever
    // side wins on the remaining data — recompute, don't trust the cache.
    assert!(live.remove(ids[3]));
    assert!(live.remove(ids[4]));
    live.stabilize(10);

    let after = live.live_labels();
    let lone = after.iter().find(|&&(id, _)| id == ids[5]).unwrap().1;
    // With {0.0, 0.2, 0.4} on one side and only 5.5 left on the other, a
    // singleton source is pinned by the k-preservation rule; the essential
    // assertion is that the pass re-scanned (epoch bumped) instead of
    // skipping on stale bounds — observable through the counters.
    let counters = live.pruning_counters();
    assert!(
        counters.full_scans > 0,
        "stabilize after removal must rescan, got {counters:?}"
    );
    assert_eq!(lone, right, "handle bookkeeping survived the removals");

    // And an unpruned twin replaying the same history agrees exactly.
    let mut twin = IncrementalUcpc::new(1, 2).unwrap();
    twin.set_pruning(PruningConfig::Off);
    let mut twin_ids = Vec::new();
    for c in [0.0, 0.2, 0.4, 9.0, 9.2, 5.5] {
        twin_ids.push(twin.insert(&obj(c)).unwrap());
    }
    twin.stabilize(10);
    assert!(twin.remove(twin_ids[3]));
    assert!(twin.remove(twin_ids[4]));
    twin.stabilize(10);
    assert_eq!(live.live_labels(), twin.live_labels());
    assert!((live.objective() - twin.objective()).abs() <= 1e-10);
}
