//! Property-based verification of the paper's formal results on randomized
//! inputs: Theorems 1–3, Lemmas 1–5 (as surfaced through the public API),
//! Corollary 1, and Propositions 1–5.

use proptest::prelude::*;
use ucpc::core::objective::ClusterStats;
use ucpc::core::ucentroid::UCentroid;
use ucpc::core::Ucpc;
use ucpc::uncertain::distance::{
    expected_sq_distance, expected_sq_distance_from_moments, expected_sq_distance_to_point,
};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// Strategy: a random uncertain object with `m` dimensions mixing pdf
/// families.
fn uncertain_object(m: usize) -> impl Strategy<Value = UncertainObject> {
    prop::collection::vec((0u8..4, -50.0..50.0f64, 0.01..5.0f64), m).prop_map(|dims| {
        UncertainObject::new(
            dims.into_iter()
                .map(|(fam, mean, spread)| match fam {
                    0 => UnivariatePdf::uniform_centered(mean, spread),
                    1 => UnivariatePdf::normal(mean, spread),
                    2 => UnivariatePdf::exponential_with_mean(mean, 1.0 / spread),
                    _ => UnivariatePdf::PointMass { x: mean },
                })
                .collect(),
        )
    })
}

fn cluster(m: usize, lo: usize, hi: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(uncertain_object(m), lo..hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3: the Ψ/Φ/Υ closed form equals Σ_o ÊD(o, U-centroid).
    #[test]
    fn theorem3_closed_form(objs in cluster(3, 1, 12)) {
        let stats = ClusterStats::from_members(objs.iter());
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        let direct: f64 = objs
            .iter()
            .map(|o| expected_sq_distance_from_moments(o.mu(), o.mu2(), c.mu(), c.mu2()))
            .sum();
        prop_assert!(
            (stats.j() - direct).abs() <= 1e-6 * (1.0 + direct.abs()),
            "J {} vs direct {}", stats.j(), direct
        );
    }

    /// Theorem 3 (second identity): J = (1/|C|) Σ σ² + J_UK.
    #[test]
    fn theorem3_second_identity(objs in cluster(2, 1, 10)) {
        let stats = ClusterStats::from_members(objs.iter());
        let var: f64 = objs.iter().map(|o| o.total_variance()).sum();
        let want = var / objs.len() as f64 + stats.j_uk();
        prop_assert!((stats.j() - want).abs() <= 1e-6 * (1.0 + want.abs()));
    }

    /// Theorem 2: U-centroid variance = |C|^-2 Σ σ².
    #[test]
    fn theorem2_variance(objs in cluster(4, 1, 10)) {
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        let want: f64 = objs.iter().map(|o| o.total_variance()).sum::<f64>()
            / (objs.len() * objs.len()) as f64;
        prop_assert!((c.variance() - want).abs() <= 1e-6 * (1.0 + want));
    }

    /// Proposition 2: J_MM = J_UK / |C|.
    #[test]
    fn proposition2(objs in cluster(3, 1, 10)) {
        let stats = ClusterStats::from_members(objs.iter());
        prop_assert!(
            (stats.j_mm() - stats.j_uk() / objs.len() as f64).abs()
                <= 1e-9 * (1.0 + stats.j_uk().abs())
        );
    }

    /// Proposition 3: Ĵ = 2 J_UK = 2 |C| J_MM.
    #[test]
    fn proposition3(objs in cluster(3, 1, 10)) {
        let stats = ClusterStats::from_members(objs.iter());
        prop_assert!((stats.j_hat() - 2.0 * stats.j_uk()).abs() <= 1e-9 * (1.0 + stats.j_uk().abs()));
        prop_assert!(
            (stats.j_hat() - 2.0 * objs.len() as f64 * stats.j_mm()).abs()
                <= 1e-6 * (1.0 + stats.j_hat().abs())
        );
    }

    /// Corollary 1: O(m) add/remove equals rebuilding from scratch.
    #[test]
    fn corollary1(objs in cluster(3, 2, 10)) {
        let (head, tail) = objs.split_at(objs.len() - 1);
        let extra = &tail[0];
        let partial = ClusterStats::from_members(head.iter());
        let full = ClusterStats::from_members(objs.iter());
        prop_assert!(
            (partial.j_after_add(extra.moments()) - full.j()).abs()
                <= 1e-6 * (1.0 + full.j().abs())
        );
        prop_assert!(
            (full.j_after_remove(extra.moments()) - partial.j()).abs()
                <= 1e-6 * (1.0 + partial.j().abs())
        );
    }

    /// Lemma 3 as exposed by the distance module: ÊD(o,o') equals the
    /// moment-space form and the mu/variance decomposition.
    #[test]
    fn lemma3_forms_agree(a in uncertain_object(3), b in uncertain_object(3)) {
        let d1 = expected_sq_distance(&a, &b);
        let d2 = expected_sq_distance_from_moments(a.mu(), a.mu2(), b.mu(), b.mu2());
        prop_assert!((d1 - d2).abs() <= 1e-6 * (1.0 + d1.abs()));
        // Eq. (8) consistency: ÊD to a *deterministic* object reduces to ED.
        let det = UncertainObject::deterministic(b.mu());
        let d3 = expected_sq_distance(&a, &det);
        let d4 = expected_sq_distance_to_point(&a, b.mu());
        prop_assert!((d3 - d4).abs() <= 1e-6 * (1.0 + d3.abs()));
    }

    /// Theorem 1 (region): the U-centroid region is the average box, and all
    /// member-average realizations fall inside it for bounded supports.
    #[test]
    fn theorem1_region(objs in cluster(2, 1, 8)) {
        // Restrict to bounded supports: truncate everything to 99% regions.
        let bounded: Vec<UncertainObject> = objs
            .iter()
            .map(|o| UncertainObject::with_coverage(o.pdfs().to_vec(), 0.99))
            .collect();
        let refs: Vec<&UncertainObject> = bounded.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        for j in 0..2 {
            let lo: f64 = refs.iter().map(|o| o.region().side(j).lo).sum::<f64>()
                / refs.len() as f64;
            let hi: f64 = refs.iter().map(|o| o.region().side(j).hi).sum::<f64>()
                / refs.len() as f64;
            prop_assert!((c.region().side(j).lo - lo).abs() < 1e-9);
            prop_assert!((c.region().side(j).hi - hi).abs() < 1e-9);
        }
    }

    /// Propositions 4–5 (behaviourally): UCPC's objective trace is monotone
    /// non-increasing and the algorithm terminates.
    #[test]
    fn proposition4_monotone_descent(objs in cluster(2, 6, 20), k in 2usize..4) {
        prop_assume!(k <= objs.len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let r = Ucpc::default().run(&objs, k, &mut rng).unwrap();
        for w in r.objective_trace.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-6 * (1.0 + w[0].abs()));
        }
        prop_assert!(r.converged || r.iterations == Ucpc::default().max_iters);
    }
}

/// Proposition 1's constructive counterexample, kept exact (non-random):
/// equal J_UK with different cluster variances.
#[test]
fn proposition1_counterexample() {
    let a = [
        UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0)]),
        UncertainObject::new(vec![UnivariatePdf::normal(2.0, 1.0)]),
    ];
    let b = [
        UncertainObject::new(vec![UnivariatePdf::normal(1.0, 3.0_f64.sqrt())]),
        UncertainObject::new(vec![UnivariatePdf::normal(1.0, 1.0)]),
    ];
    let sa = ClusterStats::from_members(a.iter());
    let sb = ClusterStats::from_members(b.iter());
    assert!(
        (sa.j_uk() - sb.j_uk()).abs() < 1e-12,
        "equal J_UK by construction"
    );
    let va: f64 = a.iter().map(|o| o.total_variance()).sum();
    let vb: f64 = b.iter().map(|o| o.total_variance()).sum();
    assert!((va - vb).abs() > 1.0, "different cluster variances");
    assert!((sa.j() - sb.j()).abs() > 0.1, "J tells them apart");
}
