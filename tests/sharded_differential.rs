//! Differential chaos harness for the sharded engine.
//!
//! Every test drives a [`ShardedUcpc`] and a single-node
//! [`IncrementalUcpc`] through the *same* scripted edit sequence and
//! asserts byte-identity — handle sequences, live labels, per-cluster
//! sufficient-statistic bits, and the objective — at every checkpoint of
//! the script. The sharded runs cover shard counts {1, 2, 4, 8}, seeded
//! fault schedules spanning drops / duplicates / reorders / bounded
//! delays, and mid-run participant crashes that recover from checkpoint +
//! WAL (including a torn log repaired by coordinator catch-up).
//!
//! Seeds fold in `UCPC_CHAOS_SEED` (via [`ChaosPlan::seed_from_env`]) so
//! CI can sweep fresh fault schedules without a code change; any failure
//! reproduces locally by exporting the same seed. SIMD coverage comes
//! from running this suite under the `UCPC_SIMD` env matrix — the kernels
//! are exact, so every lane width must reach the same bits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::IncrementalUcpc;
use ucpc::core::{ChaosPlan, PruningConfig, ShardedUcpc};
use ucpc::uncertain::{ObjectHandle, UncertainObject, UnivariatePdf};

const M: usize = 3;
const K: usize = 4;

fn object(rng: &mut StdRng) -> UncertainObject {
    UncertainObject::new(
        (0..M)
            .map(|_| UnivariatePdf::normal(rng.gen_range(-8.0..8.0), rng.gen_range(0.05..1.5)))
            .collect(),
    )
}

enum Step {
    Insert(UncertainObject),
    /// Remove the live handle at this index (modulo the live count).
    Remove(usize),
    Stabilize(usize),
}

/// A deterministic edit script: inserts dominate early so removals always
/// have material to work with, stabilize passes are sprinkled throughout.
fn script(seed: u64, len: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = 0usize;
    let mut steps = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f64 = rng.gen();
        if live < K + 2 || roll < 0.55 {
            steps.push(Step::Insert(object(&mut rng)));
            live += 1;
        } else if roll < 0.80 {
            steps.push(Step::Remove(rng.gen_range(0..64)));
            live -= 1;
        } else {
            steps.push(Step::Stabilize(1 + rng.gen_range(0..3usize)));
        }
    }
    steps.push(Step::Stabilize(4));
    steps
}

/// Byte-level equality of the replicated state: labels, per-cluster
/// sufficient statistics, and the objective.
fn assert_same_bits(sharded: &ShardedUcpc, single: &IncrementalUcpc, ctx: &str) {
    assert_eq!(sharded.len(), single.len(), "{ctx}: live count");
    assert_eq!(sharded.live_labels(), single.live_labels(), "{ctx}: labels");
    assert_eq!(
        sharded.objective().to_bits(),
        single.objective().to_bits(),
        "{ctx}: objective bits"
    );
    for (c, (a, b)) in sharded
        .cluster_stats()
        .iter()
        .zip(single.cluster_stats())
        .enumerate()
    {
        assert_eq!(a.size(), b.size(), "{ctx}: cluster {c} size");
        assert_eq!(
            a.j().to_bits(),
            b.j().to_bits(),
            "{ctx}: cluster {c} J bits"
        );
        assert_eq!(
            a.psi().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.psi().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: cluster {c} psi bits"
        );
        assert_eq!(
            a.phi().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.phi().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: cluster {c} phi bits"
        );
        assert_eq!(
            a.mean_sum().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.mean_sum().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: cluster {c} mean-sum bits"
        );
    }
}

/// Applies one step to both engines, asserting the handle sequences stay
/// in lockstep. Returns whether the step was a stabilize (the natural
/// checkpoint for full-state comparison).
fn apply_step(
    step: &Step,
    sharded: &mut ShardedUcpc,
    single: &mut IncrementalUcpc,
    handles: &mut Vec<ObjectHandle>,
) -> bool {
    match step {
        Step::Insert(o) => {
            let hs = sharded.insert(o).expect("sharded insert");
            let hi = single.insert(o).expect("single insert");
            assert_eq!(hs, hi, "slot allocation diverged");
            handles.push(hs);
            false
        }
        Step::Remove(idx) => {
            let h = handles.swap_remove(idx % handles.len());
            sharded.remove(h).expect("sharded remove");
            single.remove(h).expect("single remove");
            false
        }
        Step::Stabilize(passes) => {
            let ms = sharded.stabilize(*passes);
            let mi = single.stabilize(*passes);
            assert_eq!(ms, mi, "relocation counts diverged");
            true
        }
    }
}

fn run_script(sharded: &mut ShardedUcpc, single: &mut IncrementalUcpc, steps: &[Step], ctx: &str) {
    let mut handles = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        if apply_step(step, sharded, single, &mut handles) {
            assert_same_bits(sharded, single, &format!("{ctx}, step {i}"));
        }
    }
    assert_same_bits(sharded, single, &format!("{ctx}, final"));
}

fn chaos_seed(salt: u64) -> u64 {
    // seed_from_env replaces the seed when UCPC_CHAOS_SEED is set; the
    // salt keeps distinct schedule slots distinct either way.
    ChaosPlan::clean(0xC0FF_EE00).seed_from_env().seed ^ salt
}

#[test]
fn clean_transport_matches_single_node_across_shard_counts_and_pruning() {
    for shards in [1usize, 2, 4, 8] {
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let mut sharded = ShardedUcpc::new(M, K, shards).unwrap();
            let mut single = IncrementalUcpc::new(M, K).unwrap();
            single.set_pruning(pruning);
            let steps = script(17, 60);
            run_script(
                &mut sharded,
                &mut single,
                &steps,
                &format!("clean, {shards} shard(s), pruning {pruning:?}"),
            );
            assert_eq!(
                sharded.retries(),
                0,
                "a clean transport must never retry ({shards} shards)"
            );
        }
    }
}

#[test]
fn fault_schedules_reach_identical_bits_at_every_shard_count() {
    let mut total_retries = 0u64;
    for shards in [2usize, 4, 8] {
        let schedules = [
            ("drops", ChaosPlan::drops(chaos_seed(shards as u64), 0.25)),
            (
                "duplicates",
                ChaosPlan::duplicates(chaos_seed(0x10 + shards as u64), 0.25),
            ),
            (
                "reorders+delays",
                ChaosPlan::reorders(chaos_seed(0x20 + shards as u64), 0.30, 4),
            ),
            ("mixed", ChaosPlan::mixed(chaos_seed(0x30 + shards as u64))),
        ];
        for (name, plan) in schedules {
            let mut sharded = ShardedUcpc::with_chaos(M, K, shards, plan).unwrap();
            let mut single = IncrementalUcpc::new(M, K).unwrap();
            let steps = script(23, 40);
            run_script(
                &mut sharded,
                &mut single,
                &steps,
                &format!("{name}, {shards} shards"),
            );
            total_retries += sharded.retries();
        }
    }
    assert!(
        total_retries > 0,
        "lossy schedules must exercise the retry path"
    );
}

#[test]
fn mid_run_crash_recovery_and_rejoin_stays_bit_identical() {
    let crash_shard = 2;
    let mut sharded = ShardedUcpc::with_chaos(M, K, 4, ChaosPlan::mixed(chaos_seed(0x40))).unwrap();
    let mut single = IncrementalUcpc::new(M, K).unwrap();
    let steps = script(31, 48);
    let (first, rest) = steps.split_at(20);
    let (second, third) = rest.split_at(14);

    let mut handles = Vec::new();
    for step in first {
        apply_step(step, &mut sharded, &mut single, &mut handles);
    }
    // Checkpoint, keep editing so the WAL accumulates rounds past the
    // checkpoint, then crash: recovery must replay checkpoint + WAL and
    // rejoin at the committed watermark.
    sharded.checkpoint_shard(crash_shard);
    for step in second {
        apply_step(step, &mut sharded, &mut single, &mut handles);
    }
    sharded.crash(crash_shard);
    sharded.restart(crash_shard);
    assert_eq!(
        sharded.shard_applied(crash_shard),
        Some(sharded.committed_rounds()),
        "rejoin must land on the committed watermark"
    );
    assert_same_bits(&sharded, &single, "after crash + WAL recovery");

    // Tear the recovered shard's log mid-frame and crash again: the valid
    // prefix replays, coordinator catch-up supplies the missing rounds.
    sharded.truncate_shard_wal(crash_shard, 10);
    sharded.crash(crash_shard);
    sharded.restart(crash_shard);
    assert_same_bits(&sharded, &single, "after torn log + catch-up");

    for step in third {
        if apply_step(step, &mut sharded, &mut single, &mut handles) {
            assert_same_bits(&sharded, &single, "post-recovery stabilize");
        }
    }
    assert_same_bits(&sharded, &single, "final state after recovery");
}
