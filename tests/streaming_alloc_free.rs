//! Zero-allocation and flat-memory gate for the slab streaming path.
//!
//! `IncrementalUcpc` on the slab backend promises that steady-state churn —
//! insert-after-remove — touches the allocator **zero** times: the freed
//! moment row is recycled in place ([`ucpc::uncertain::SlabArena`]'s free
//! list), the generation-stamped handle scheme recycles the label-map slot
//! with it, the placement scan and the tracked statistic updates run
//! entirely on borrowed views and stack scalars, and no `Moments` is ever
//! cloned. With slot recycling, **no reservation is needed**: no
//! handle-indexed structure grows at all under steady churn (the slot
//! high-water mark is asserted flat below). This binary pins that promise
//! with a counting global allocator; it holds exactly one test so no
//! concurrently running test can pollute the counter (integration-test
//! files compile to separate processes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::PruningConfig;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// System allocator with a global counter of alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_insert_after_remove_allocates_nothing() {
    let m = 16;
    let k = 4;
    let n = 200;
    let churn = 400;

    // All stream payloads are materialized before the measured window; the
    // driver only ever borrows them. The first n seed the window, the rest
    // are the churn arrivals.
    let mk = |i: usize| {
        UncertainObject::new(
            (0..m)
                .map(|j| UnivariatePdf::normal(((i * m + j) % 37) as f64 * 0.5 - 9.0, 0.2))
                .collect(),
        )
    };
    let objects: Vec<UncertainObject> = (0..n + churn).map(mk).collect();

    let mut live = IncrementalUcpc::with_backend(m, k, StreamBackend::Slab).unwrap();
    live.set_pruning(PruningConfig::Off);
    // Each live handle rides with the index of its payload in `objects`,
    // for the from-scratch rebuild below (slots are recycled, so a slot is
    // not a payload identity).
    let mut ids: Vec<(ObjectHandle, usize)> = objects[..n]
        .iter()
        .enumerate()
        .map(|(i, o)| (live.insert(o).unwrap(), i))
        .collect();

    // One warm-up edit pays the slab free-list's first capacity growth.
    // From then on steady-state churn is allocation-free with no
    // reservation at all: slot recycling means no handle-indexed map ever
    // grows, so there is nothing to reserve for.
    let (h0, i0) = ids.remove(0);
    live.remove(h0).expect("warm-up victim is live");
    ids.push((live.insert(&objects[i0]).unwrap(), i0));

    let high_water = live.slot_rows();
    assert_eq!(high_water, n, "slot high-water mark is the live window");

    // The allocator counter is process-global, so the libtest harness
    // thread can race a handful of its own allocations into the measured
    // window. A genuinely per-operation allocation would show up on every
    // attempt (>= churn calls each time), so observing a single
    // zero-allocation churn run pins the contract; retry a few times to
    // shake off harness noise. State persists across attempts.
    let per_attempt = churn / 5;
    let mut cleanest = usize::MAX;
    for attempt in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for step in 0..per_attempt {
            let (victim, _) = ids.remove(0);
            live.remove(victim).expect("victim handle must be live");
            let idx = n + attempt * per_attempt + step;
            ids.push((live.insert(&objects[idx]).unwrap(), idx));
        }
        let during = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        cleanest = cleanest.min(during);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state insert-after-remove hit the allocator on every \
         attempt ({cleanest} calls at best over {per_attempt} ops)"
    );

    assert_eq!(live.len(), n);
    // Flat memory: hundreds of handles churned through, yet every
    // handle-indexed structure is still sized for the live window.
    assert_eq!(
        live.slot_rows(),
        high_water,
        "handle-indexed state must not grow under steady churn"
    );
    assert_eq!(live.cache_entries(), 0, "no pruned pass ran");

    // The churned partition is still exact: every live handle resolves and
    // the objective matches a from-scratch statistics rebuild.
    let rebuilt: f64 = {
        use ucpc::core::objective::ClusterStats;
        let by_handle: HashMap<ObjectHandle, usize> = ids.iter().copied().collect();
        let mut stats = vec![ClusterStats::empty(m); k];
        for (h, c) in live.live_labels() {
            let o = &objects[by_handle[&h]];
            stats[c].add(o.moments());
        }
        stats.iter().map(ClusterStats::j).sum()
    };
    assert!((live.objective() - rebuilt).abs() <= 1e-7 * (1.0 + rebuilt.abs()));
}
