//! Zero-allocation gate for the slab streaming path.
//!
//! `IncrementalUcpc` on the slab backend promises that steady-state churn —
//! insert-after-remove, within a handle reservation — touches the allocator
//! **zero** times: the freed moment row is recycled in place
//! ([`ucpc::uncertain::SlabArena`]'s free list), the placement scan and the
//! tracked statistic updates run entirely on borrowed views and stack
//! scalars, and no `Moments` is ever cloned. This binary pins that promise
//! with a counting global allocator; it holds exactly one test so no
//! concurrently running test can pollute the counter (integration-test
//! files compile to separate processes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ucpc::core::incremental::{IncrementalUcpc, ObjectId, StreamBackend};
use ucpc::core::PruningConfig;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// System allocator with a global counter of alloc/realloc calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_insert_after_remove_allocates_nothing() {
    let m = 16;
    let k = 4;
    let n = 200;
    let churn = 400;

    // All stream payloads are materialized before the measured window; the
    // driver only ever borrows them.
    let mk = |i: usize| {
        UncertainObject::new(
            (0..m)
                .map(|j| UnivariatePdf::normal(((i * m + j) % 37) as f64 * 0.5 - 9.0, 0.2))
                .collect(),
        )
    };
    let initial: Vec<UncertainObject> = (0..n).map(mk).collect();
    let replacements: Vec<UncertainObject> = (n..n + churn).map(mk).collect();

    let mut live = IncrementalUcpc::with_backend(m, k, StreamBackend::Slab).unwrap();
    live.set_pruning(PruningConfig::Off);
    let mut ids: Vec<ObjectId> = initial.iter().map(|o| live.insert(o).unwrap()).collect();

    // Handle maps grow with every insertion (ids are never reused), so the
    // steady-state contract is scoped to a reservation — which also covers
    // the slab's free-list, so even the very first removal stays off the
    // allocator: no warm-up churn is needed.
    live.reserve_ids(churn);

    // The allocator counter is process-global, so the libtest harness
    // thread can race a handful of its own allocations into the measured
    // window. A genuinely per-operation allocation would show up on every
    // attempt (>= churn calls each time), so observing a single
    // zero-allocation churn run pins the contract; retry a few times to
    // shake off harness noise. State persists across attempts — the
    // reservation above is sized for all of them.
    let per_attempt = churn / 5;
    let mut cleanest = usize::MAX;
    for attempt in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for step in 0..per_attempt {
            let victim = ids.remove(0);
            assert!(live.remove(victim));
            ids.push(
                live.insert(&replacements[attempt * per_attempt + step])
                    .unwrap(),
            );
        }
        let during = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        cleanest = cleanest.min(during);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state insert-after-remove hit the allocator on every \
         attempt ({cleanest} calls at best over {per_attempt} ops)"
    );

    assert_eq!(live.len(), n);
    // The churned partition is still exact: every live handle resolves and
    // the objective matches a from-scratch statistics rebuild.
    let rebuilt: f64 = {
        use ucpc::core::objective::ClusterStats;
        let mut stats = vec![ClusterStats::empty(m); k];
        let survivors: Vec<(ObjectId, usize)> = live.live_labels();
        for (id, c) in survivors {
            let idx = id.index();
            let o = if idx < n {
                &initial[idx]
            } else {
                &replacements[idx - n]
            };
            stats[c].add(o.moments());
        }
        stats.iter().map(ClusterStats::j).sum()
    };
    assert!((live.objective() - rebuilt).abs() <= 1e-7 * (1.0 + rebuilt.abs()));
}
