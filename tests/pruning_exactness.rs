//! Exactness gate for drift-bound candidate pruning: over a seeded grid of
//! (n, m, k) shapes — including m=1, k=1, k=n, duplicate objects and
//! empty-cluster churn — a pruned run must produce *byte-identical*
//! assignments and bit-identical (tolerated to 1e-10 relative) objectives
//! for `Ucpc`, `ParallelUcpc`, `IncrementalUcpc` and `BestOfRestarts`.
//! Pruning is configured explicitly on both arms so the suite is immune to
//! the `UCPC_PRUNING` environment knob the CI matrix flips.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::IncrementalUcpc;
use ucpc::core::parallel::{ParallelBackend, ParallelUcpc};
use ucpc::core::restarts::BestOfRestarts;
use ucpc::core::{PruningConfig, Ucpc};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// Mixed-family random dataset; with `duplicates`, every third object is a
/// clone of the first (ties must break identically in both arms).
fn dataset(n: usize, m: usize, seed: u64, duplicates: bool) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<UncertainObject> = (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        let mean = rng.gen_range(-8.0..8.0);
                        let spread = rng.gen_range(0.05..2.0);
                        match rng.gen_range(0..3u8) {
                            0 => UnivariatePdf::uniform_centered(mean, spread),
                            1 => UnivariatePdf::normal(mean, spread),
                            _ => UnivariatePdf::PointMass { x: mean },
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    if duplicates {
        let first = data[0].clone();
        for i in (0..n).step_by(3) {
            data[i] = first.clone();
        }
    }
    data
}

fn random_labels(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect()
}

fn objectives_match(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-10 * (1.0 + a.abs().max(b.abs()))
}

/// (n, m, k) shapes: ordinary, m=1, k=1, k=n.
const GRID: [(usize, usize, usize); 7] = [
    (12, 1, 2),
    (30, 3, 3),
    (40, 8, 5),
    (25, 16, 4),
    (60, 5, 6),
    (10, 2, 1),
    (12, 4, 12),
];

#[test]
fn ucpc_pruned_matches_unpruned_on_the_seeded_grid() {
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        for seed in 0..3u64 {
            for duplicates in [false, true] {
                for allow_empty in [false, true] {
                    let seed = seed + 100 * gi as u64;
                    let data = dataset(n, m, seed, duplicates);
                    let labels = random_labels(n, k, seed + 7);
                    let run = |pruning| {
                        Ucpc {
                            pruning,
                            allow_empty_clusters: allow_empty,
                            ..Ucpc::default()
                        }
                        .run_with_labels(&data, k, labels.clone())
                        .unwrap()
                    };
                    let off = run(PruningConfig::Off);
                    let on = run(PruningConfig::Bounds);
                    assert_eq!(
                        off.clustering.labels(),
                        on.clustering.labels(),
                        "labels diverged: n={n} m={m} k={k} seed={seed} \
                         dup={duplicates} empty={allow_empty}"
                    );
                    assert_eq!(off.iterations, on.iterations);
                    assert_eq!(off.relocations, on.relocations);
                    assert!(
                        objectives_match(off.objective, on.objective),
                        "objective diverged: {} vs {}",
                        off.objective,
                        on.objective
                    );
                    assert_eq!(off.objective_trace.len(), on.objective_trace.len());
                }
            }
        }
    }
}

#[test]
fn ucpc_pruning_actually_fires_on_clustered_data() {
    // Guard against the suite passing vacuously: on separable data the
    // bounds must skip a meaningful share of scans.
    let data = dataset(120, 4, 99, false);
    let labels = random_labels(120, 4, 3);
    let on = Ucpc {
        pruning: PruningConfig::Bounds,
        ..Ucpc::default()
    }
    .run_with_labels(&data, 4, labels)
    .unwrap();
    assert!(
        on.pruning.skips + on.pruning.confirms > 0,
        "bounds never fired: {:?}",
        on.pruning
    );
    assert_eq!(
        on.pruning.decisions(),
        on.pruning.skips + on.pruning.confirms + on.pruning.full_scans
    );
}

#[test]
fn parallel_ucpc_pruned_matches_unpruned() {
    for (gi, &(n, m, k)) in GRID.iter().enumerate() {
        for seed in 0..2u64 {
            for backend in [ParallelBackend::Even, ParallelBackend::Steal] {
                let seed = seed + 10 * gi as u64;
                let data = dataset(n, m, seed, gi % 2 == 0);
                let run = |pruning| {
                    let mut rng = StdRng::seed_from_u64(seed + 1);
                    ParallelUcpc {
                        threads: 3,
                        backend,
                        pruning,
                        ..ParallelUcpc::default()
                    }
                    .run(&data, k, &mut rng)
                    .unwrap()
                };
                let off = run(PruningConfig::Off);
                let on = run(PruningConfig::Bounds);
                assert_eq!(
                    off.clustering.labels(),
                    on.clustering.labels(),
                    "parallel labels diverged: n={n} m={m} k={k} seed={seed} \
                     backend={}",
                    backend.name()
                );
                assert_eq!(off.iterations, on.iterations);
                assert_eq!(off.applied, on.applied);
                assert_eq!(off.rejected, on.rejected);
                assert!(objectives_match(off.objective, on.objective));
            }
        }
    }
}

#[test]
fn incremental_ucpc_pruned_matches_unpruned_under_interleaved_edits() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 3;
        let mut off = IncrementalUcpc::new(2, k).unwrap();
        let mut on = IncrementalUcpc::new(2, k).unwrap();
        off.set_pruning(PruningConfig::Off);
        on.set_pruning(PruningConfig::Bounds);

        let mut ids = Vec::new();
        for step in 0..120 {
            match rng.gen_range(0..10u8) {
                // Mostly inserts.
                0..=5 => {
                    let c = rng.gen_range(-9.0..9.0);
                    let o = UncertainObject::new(vec![
                        UnivariatePdf::normal(c, 0.2),
                        UnivariatePdf::normal(-c, 0.3),
                    ]);
                    let a = off.insert(&o).unwrap();
                    let b = on.insert(&o).unwrap();
                    assert_eq!(a, b, "handles must track");
                    ids.push(a);
                }
                // Occasional removals (possibly of already-removed ids).
                6..=7 => {
                    if !ids.is_empty() {
                        let id = ids[rng.gen_range(0..ids.len())];
                        assert_eq!(off.remove(id), on.remove(id));
                    }
                }
                // Stabilization bursts.
                _ => {
                    let passes = rng.gen_range(1..4usize);
                    assert_eq!(
                        off.stabilize(passes),
                        on.stabilize(passes),
                        "relocation counts diverged at step {step} (seed {seed})"
                    );
                }
            }
            assert_eq!(off.live_labels(), on.live_labels(), "step {step}");
            assert!(objectives_match(off.objective(), on.objective()));
        }
        // Final settle must agree too.
        assert_eq!(off.stabilize(20), on.stabilize(20));
        assert_eq!(off.live_labels(), on.live_labels());
    }
}

#[test]
fn best_of_restarts_pruned_matches_unpruned() {
    for seed in 0..3u64 {
        let data = dataset(48, 3, 500 + seed, seed == 1);
        let run = |pruning| {
            let mut rng = StdRng::seed_from_u64(seed);
            BestOfRestarts {
                algorithm: Ucpc {
                    pruning,
                    ..Ucpc::default()
                },
                restarts: 6,
                threads: 2,
            }
            .run(&data, 4, &mut rng)
            .unwrap()
        };
        let off = run(PruningConfig::Off);
        let on = run(PruningConfig::Bounds);
        assert_eq!(off.winner, on.winner);
        assert_eq!(
            off.best.clustering.labels(),
            on.best.clustering.labels(),
            "restart winner labels diverged (seed {seed})"
        );
        assert_eq!(off.objectives.len(), on.objectives.len());
        for (a, b) in off.objectives.iter().zip(&on.objectives) {
            assert!(objectives_match(*a, *b), "restart objective {a} vs {b}");
        }
        // The reused cache is reset per restart, so later restarts still
        // prune from scratch rather than inheriting stale bounds.
        assert!(on.pruning.decisions() > 0);
        assert_eq!(off.pruning.decisions(), 0);
    }
}
