//! Top-k answer semantics of the serving front door: ranking length
//! clamps to the live cluster count, ties in delta-J keep the lower
//! cluster index (the serial scan's first-wins rule), the degenerate
//! `k = 1` margin is `+∞`, and the bounded placement scan
//! ([`best_insertion_bounded`]) agrees with the head of the full-scan
//! ranking — same winner, bit-identical delta — not just on the argmin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::{IncrementalUcpc, StreamBackend};
use ucpc::core::pruning::{best_insertion, best_insertion_bounded, fp_scale};
use ucpc::core::serving::{
    PlacementAnswer, ServingConfig, ServingResponse, ServingUcpc, MAX_TOP_K,
};
use ucpc::core::{PruneCounters, PruningConfig};
use ucpc::uncertain::{Moments, UncertainObject, UnivariatePdf};

fn arrival_at(rng: &mut StdRng, m: usize, center: f64) -> Moments {
    let o = UncertainObject::new(
        (0..m)
            .map(|_| UnivariatePdf::normal(center + rng.gen_range(-0.5..0.5), 0.2))
            .collect(),
    );
    o.moments().clone()
}

fn config(top_k: usize) -> ServingConfig {
    ServingConfig {
        batch: 1,
        queue_capacity: 4,
        deadline: None,
        stabilize_every: 0,
        stabilize_passes: 2,
        top_k,
        // WAL fields from the environment: the CI `wal` leg reruns this
        // suite with `UCPC_WAL=on` to prove logging changes no behaviour.
        ..ServingConfig::default()
    }
}

/// Runs one placement query through the serving layer and returns its
/// answer.
fn query(serving: &mut ServingUcpc, mo: &Moments) -> PlacementAnswer {
    serving.submit_query(mo).unwrap();
    serving.flush();
    match serving.pop_response() {
        Some((_, ServingResponse::Placed(a))) => a,
        other => panic!("expected a placement answer, got {other:?}"),
    }
}

#[test]
fn ranking_length_clamps_to_the_live_cluster_count() {
    // top_k = MAX_TOP_K (8) against k = 3 clusters: the answer holds every
    // cluster once, no padding.
    let mut rng = StdRng::seed_from_u64(1);
    let engine = IncrementalUcpc::with_backend(4, 3, StreamBackend::Slab).unwrap();
    let mut serving = ServingUcpc::over(engine, config(MAX_TOP_K));
    for c in 0..6 {
        let mo = arrival_at(&mut rng, 4, (c % 3) as f64 * 10.0);
        serving.submit_commit(&mo).unwrap();
        serving.poll(std::time::Instant::now());
    }
    while serving.pop_response().is_some() {}

    let probe = arrival_at(&mut rng, 4, 0.0);
    let a = query(&mut serving, &probe);
    assert_eq!(a.ranked().len(), 3, "one entry per live cluster, no more");
    let mut seen: Vec<usize> = a.ranked().iter().map(|&(c, _)| c).collect();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2], "each cluster ranked exactly once");
}

#[test]
fn ties_in_delta_j_keep_the_lower_cluster_index() {
    // A fresh engine's k = 4 clusters are bitwise identical, so every
    // delta ties: the ranking must come back in ascending cluster order —
    // the serial scan's strict-less, first-index-wins rule — with a zero
    // margin.
    let mut rng = StdRng::seed_from_u64(2);
    let engine = IncrementalUcpc::with_backend(4, 4, StreamBackend::Slab).unwrap();
    let mut serving = ServingUcpc::over(engine, config(MAX_TOP_K));
    let probe = arrival_at(&mut rng, 4, 1.0);
    let a = query(&mut serving, &probe);
    let order: Vec<usize> = a.ranked().iter().map(|&(c, _)| c).collect();
    assert_eq!(order, vec![0, 1, 2, 3], "ties must rank by ascending index");
    let d0 = a.ranked()[0].1;
    for &(_, d) in a.ranked() {
        assert_eq!(
            d.to_bits(),
            d0.to_bits(),
            "tied deltas must be bitwise equal"
        );
    }
    assert_eq!(a.best(), (0, d0), "tie at the top goes to cluster 0");
    assert_eq!(a.margin(), 0.0, "tied best and second-best leave no margin");
}

#[test]
fn single_cluster_margin_is_infinite() {
    let mut rng = StdRng::seed_from_u64(3);
    let engine = IncrementalUcpc::with_backend(4, 1, StreamBackend::Slab).unwrap();
    let mut serving = ServingUcpc::over(engine, config(MAX_TOP_K));
    let mo = arrival_at(&mut rng, 4, 0.0);
    serving.submit_commit(&mo).unwrap();
    serving.flush();
    while serving.pop_response().is_some() {}

    let a = query(&mut serving, &arrival_at(&mut rng, 4, 0.0));
    assert_eq!(a.ranked().len(), 1);
    assert_eq!(a.best().0, 0);
    assert_eq!(
        a.margin(),
        f64::INFINITY,
        "with no runner-up the placement is unconditionally stable"
    );
}

#[test]
fn bounded_placement_agrees_with_the_full_scan_ranking_head() {
    // Well-separated clusters so the Cauchy–Schwarz bound actually
    // discards candidates, then check the bounded scan returns exactly the
    // head of the serving layer's full ranking — winner and delta bits —
    // for every probe.
    let m = 16;
    let k = 6;
    let mut rng = StdRng::seed_from_u64(4);
    let mut engine = IncrementalUcpc::with_backend(m, k, StreamBackend::Slab).unwrap();
    engine.set_pruning(PruningConfig::Bounds);
    for i in 0..120 {
        let mo = arrival_at(&mut rng, m, (i % k) as f64 * 40.0);
        engine.insert_moments(&mo).unwrap();
    }
    let mut serving = ServingUcpc::over(engine, config(MAX_TOP_K));

    let mut counters = PruneCounters::default();
    let mut bypassed_any = false;
    for i in 0..40 {
        let probe = arrival_at(&mut rng, m, (i % k) as f64 * 40.0 + 1.0);
        let a = query(&mut serving, &probe);
        assert_eq!(a.ranked().len(), k.min(MAX_TOP_K));

        let stats = serving.engine().cluster_stats();
        let scale = fp_scale(stats);
        let before = counters.placement_bypassed;
        let (bc, bd) = best_insertion_bounded(stats, &probe.view(), scale, &mut counters)
            .expect("k > 0 always yields a winner");
        bypassed_any |= counters.placement_bypassed > before;

        let (fc, fd) = best_insertion(stats, &probe.view()).expect("k > 0");
        assert_eq!(
            (bc, bd.to_bits()),
            (fc, fd.to_bits()),
            "bounded vs full argmin"
        );
        assert_eq!(bc, a.best().0, "bounded winner must head the ranking");
        assert_eq!(
            bd.to_bits(),
            a.best().1.to_bits(),
            "bounded delta must match the ranking head bitwise"
        );
        // The ranking itself is sorted and strictly consistent with the
        // margin definition.
        for w in a.ranked().windows(2) {
            assert!(w[0].1 <= w[1].1, "ranking out of order");
        }
        assert_eq!(
            a.margin().to_bits(),
            (a.ranked()[1].1 - a.ranked()[0].1).to_bits(),
            "margin is second best minus best"
        );
    }
    assert!(
        bypassed_any,
        "separated clusters should let the lower bound discard candidates \
         (otherwise this test is not exercising the bounded path)"
    );
}
