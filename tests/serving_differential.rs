//! Differential serving harness: random request scripts — placement
//! queries, commits, removals, stabilizations — replayed through the
//! batched [`ServingUcpc`] front door at batch sizes {1, 3, 16, 64} must
//! produce *bitwise* the answers and engine state of a serial
//! [`IncrementalUcpc`] replay of the same requests, across storage backends
//! × pruning × SIMD backends, and at both kernel regimes (short rows and
//! the dot3-batched `m ≥ DISPATCH_THRESHOLD` path).
//!
//! The serial reference computes every expected placement answer with its
//! own independent implementation (per-cluster `delta_j_add` + a stable
//! sort), so agreement pins the serving layer's batched pricing, dirty-
//! cluster merging, top-k selection and margin — not just the argmin.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc::core::objective::ClusterStats;
use ucpc::core::serving::{PlacementAnswer, ServingConfig, ServingResponse, ServingUcpc};
use ucpc::core::{ClusterError, PruningConfig};
use ucpc::uncertain::arena::MomentView;
use ucpc::uncertain::simd::{self, Backend};
use ucpc::uncertain::{Moments, UncertainObject, UnivariatePdf};

const K: usize = 3;
const TOP_K: usize = 4;
const STABILIZE_EVERY: usize = 3;
const STABILIZE_PASSES: usize = 2;
const BATCH_SIZES: [usize; 4] = [1, 3, 16, 64];

/// One scripted request; arrivals carry their moments so every replay
/// admits identical bits.
#[derive(Debug, Clone)]
enum Op {
    Query(Moments),
    Commit(Moments),
    /// Remove the `r`-th (mod count) still-live committed handle.
    Remove(usize),
    Stabilize(usize),
}

fn arrival(rng: &mut StdRng, m: usize) -> Moments {
    let o = UncertainObject::new(
        (0..m)
            .map(|_| UnivariatePdf::normal(rng.gen_range(-10.0..10.0), rng.gen_range(0.05..0.8)))
            .collect(),
    );
    o.moments().clone()
}

fn script(seed: u64, steps: usize, m: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(steps + 8);
    for _ in 0..8 {
        ops.push(Op::Commit(arrival(&mut rng, m)));
    }
    for _ in 0..steps {
        ops.push(match rng.gen_range(0..10u8) {
            0..=3 => Op::Commit(arrival(&mut rng, m)),
            4..=6 => Op::Query(arrival(&mut rng, m)),
            7..=8 => Op::Remove(rng.gen_range(0..64)),
            _ => Op::Stabilize(rng.gen_range(1..3)),
        });
    }
    ops
}

/// Independent reference answer: per-cluster `delta_j_add` (the serial
/// kernel), ranked by a stable sort (ties keep the lower cluster index),
/// margin = second best − best over all clusters (`+∞` when `k == 1`).
fn reference_answer(stats: &[ClusterStats], v: &MomentView<'_>) -> (Vec<(usize, f64)>, f64) {
    let mut deltas: Vec<(usize, f64)> = stats
        .iter()
        .enumerate()
        .map(|(c, s)| (c, s.delta_j_add(v)))
        .collect();
    deltas.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite deltas"));
    let margin = if deltas.len() > 1 {
        deltas[1].1 - deltas[0].1
    } else {
        f64::INFINITY
    };
    deltas.truncate(TOP_K.min(stats.len()));
    (deltas, margin)
}

/// What the serial replay expects the serving layer to answer, per op that
/// produced a submission.
#[derive(Debug)]
enum Expected {
    Placed(Vec<(usize, f64)>, f64),
    Committed(ObjectHandle, Vec<(usize, f64)>, f64),
    Removed(Result<(), ClusterError>),
    Stabilized(usize),
}

/// Serial reference replay: one engine, one op at a time, stabilizing
/// after every `STABILIZE_EVERY`-th commit exactly like the serving
/// layer's cadence.
fn replay_serial(
    backend: StreamBackend,
    pruning: PruningConfig,
    ops: &[Op],
    m: usize,
) -> (IncrementalUcpc, Vec<Expected>) {
    let mut engine = IncrementalUcpc::with_backend(m, K, backend).unwrap();
    engine.set_pruning(pruning);
    let mut ids: Vec<ObjectHandle> = Vec::new();
    let mut commits = 0usize;
    let mut expected = Vec::new();
    for op in ops {
        match op {
            Op::Query(mo) => {
                let (ranked, margin) = reference_answer(engine.cluster_stats(), &mo.view());
                expected.push(Expected::Placed(ranked, margin));
            }
            Op::Commit(mo) => {
                let (ranked, margin) = reference_answer(engine.cluster_stats(), &mo.view());
                let h = engine.insert_moments(mo).unwrap();
                assert_eq!(
                    engine.label_of(h),
                    Some(ranked[0].0),
                    "serial placement disagrees with the reference ranking"
                );
                ids.push(h);
                expected.push(Expected::Committed(h, ranked, margin));
                commits += 1;
                if commits.is_multiple_of(STABILIZE_EVERY) {
                    engine.stabilize(STABILIZE_PASSES);
                }
            }
            Op::Remove(r) => {
                let alive: Vec<ObjectHandle> = ids
                    .iter()
                    .copied()
                    .filter(|&id| engine.label_of(id).is_some())
                    .collect();
                if !alive.is_empty() {
                    let h = alive[r % alive.len()];
                    expected.push(Expected::Removed(engine.remove(h)));
                }
            }
            Op::Stabilize(p) => {
                expected.push(Expected::Stabilized(engine.stabilize(*p)));
            }
        }
    }
    (engine, expected)
}

/// Serving replay at one batch size. Flushes are size-driven through
/// `poll`; a removal forces a flush first, because a client can only
/// address handles it has already received (and the drain keeps the
/// handle list — and hence the removal target — aligned with serial).
fn replay_serving(
    backend: StreamBackend,
    pruning: PruningConfig,
    ops: &[Op],
    m: usize,
    batch: usize,
) -> (ServingUcpc, Vec<ServingResponse>) {
    let mut engine = IncrementalUcpc::with_backend(m, K, backend).unwrap();
    engine.set_pruning(pruning);
    let cfg = ServingConfig {
        batch,
        queue_capacity: batch * 4,
        deadline: None,
        stabilize_every: STABILIZE_EVERY,
        stabilize_passes: STABILIZE_PASSES,
        top_k: TOP_K,
        // WAL fields from the environment: the CI `wal` leg reruns this
        // suite with `UCPC_WAL=on` to prove logging changes no behaviour.
        ..ServingConfig::default()
    };
    let mut serving = ServingUcpc::over(engine, cfg);
    let mut ids: Vec<ObjectHandle> = Vec::new();
    let mut log: Vec<ServingResponse> = Vec::new();
    let drain = |serving: &mut ServingUcpc, ids: &mut Vec<ObjectHandle>, log: &mut Vec<_>| {
        while let Some((_, resp)) = serving.pop_response() {
            if let ServingResponse::Committed { handle, .. } = &resp {
                ids.push(*handle);
            }
            log.push(resp);
        }
    };
    for op in ops {
        match op {
            Op::Query(mo) => {
                serving.submit_query(mo).unwrap();
            }
            Op::Commit(mo) => {
                serving.submit_commit(mo).unwrap();
            }
            Op::Remove(r) => {
                serving.flush();
                drain(&mut serving, &mut ids, &mut log);
                let alive: Vec<ObjectHandle> = ids
                    .iter()
                    .copied()
                    .filter(|&id| serving.engine().label_of(id).is_some())
                    .collect();
                if !alive.is_empty() {
                    serving.submit_remove(alive[*r % alive.len()]).unwrap();
                }
            }
            Op::Stabilize(p) => {
                serving.submit_stabilize(*p).unwrap();
            }
        }
        serving.poll(std::time::Instant::now());
        drain(&mut serving, &mut ids, &mut log);
    }
    serving.flush();
    drain(&mut serving, &mut ids, &mut log);
    (serving, log)
}

fn assert_answer(got: &PlacementAnswer, ranked: &[(usize, f64)], margin: f64, what: &str) {
    assert_eq!(
        got.ranked().len(),
        ranked.len(),
        "top-k length diverged: {what}"
    );
    for (i, (&(gc, gd), &(ec, ed))) in got.ranked().iter().zip(ranked).enumerate() {
        assert_eq!(gc, ec, "rank {i} cluster diverged: {what}");
        assert_eq!(
            gd.to_bits(),
            ed.to_bits(),
            "rank {i} delta bits diverged: {what}"
        );
    }
    assert_eq!(
        got.margin().to_bits(),
        margin.to_bits(),
        "margin bits diverged: {what}"
    );
}

fn assert_equivalent(
    serving: &ServingUcpc,
    log: &[ServingResponse],
    serial: &IncrementalUcpc,
    expected: &[Expected],
    what: &str,
) {
    assert_eq!(log.len(), expected.len(), "response count diverged: {what}");
    for (i, (got, want)) in log.iter().zip(expected).enumerate() {
        let ctx = format!("response {i}: {what}");
        match (got, want) {
            (ServingResponse::Placed(a), Expected::Placed(ranked, margin)) => {
                assert_answer(a, ranked, *margin, &ctx);
            }
            (
                ServingResponse::Committed { handle, answer },
                Expected::Committed(h, ranked, margin),
            ) => {
                assert_eq!(handle, h, "handle diverged: {ctx}");
                assert_answer(answer, ranked, *margin, &ctx);
            }
            (ServingResponse::Removed(got), Expected::Removed(want)) => {
                assert_eq!(got, want, "removal outcome diverged: {ctx}");
            }
            (ServingResponse::Stabilized { relocations }, Expected::Stabilized(want)) => {
                assert_eq!(relocations, want, "relocation count diverged: {ctx}");
            }
            (got, want) => panic!("response kind diverged: {ctx}: {got:?} vs {want:?}"),
        }
    }
    let engine = serving.engine();
    assert_eq!(
        engine.live_labels(),
        serial.live_labels(),
        "labels diverged: {what}"
    );
    assert_eq!(
        engine.cluster_stats(),
        serial.cluster_stats(),
        "cluster statistics diverged bitwise: {what}"
    );
    assert_eq!(
        engine.objective().to_bits(),
        serial.objective().to_bits(),
        "objective bits diverged: {what}"
    );
}

#[test]
fn serving_is_bit_identical_to_serial_across_the_full_matrix() {
    // batch {1,3,16,64} × {objects,slab} × {off,bounds} × {scalar,detected
    // SIMD}, at m = 16 — the dot3-batched pricing regime, where the
    // arrival-blocked kernel and the serial cluster-triple scan must still
    // agree bit for bit.
    let restore = simd::active_backend();
    for seed in 0..2u64 {
        let ops = script(seed, 70, 16);
        for simd_backend in [Backend::Scalar, Backend::detect()] {
            simd::force_backend(simd_backend).expect("backend available");
            for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
                for backend in [StreamBackend::Objects, StreamBackend::Slab] {
                    let (serial, expected) = replay_serial(backend, pruning, &ops, 16);
                    for batch in BATCH_SIZES {
                        let (serving, log) = replay_serving(backend, pruning, &ops, 16, batch);
                        assert_equivalent(
                            &serving,
                            &log,
                            &serial,
                            &expected,
                            &format!(
                                "seed {seed}, batch {batch}, {} / {:?} / {}",
                                backend.name(),
                                pruning,
                                simd_backend.name()
                            ),
                        );
                    }
                }
            }
        }
    }
    simd::force_backend(restore).expect("restore prior backend");
}

#[test]
fn serving_is_bit_identical_on_short_rows() {
    // m = 2 stays below DISPATCH_THRESHOLD: pricing takes the per-cluster
    // delta_j_add regime. Slab × both prunings × all batch sizes.
    for seed in 0..3u64 {
        let ops = script(seed + 100, 90, 2);
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let (serial, expected) = replay_serial(StreamBackend::Slab, pruning, &ops, 2);
            for batch in BATCH_SIZES {
                let (serving, log) = replay_serving(StreamBackend::Slab, pruning, &ops, 2, batch);
                assert_equivalent(
                    &serving,
                    &log,
                    &serial,
                    &expected,
                    &format!("seed {seed}, batch {batch}, slab / {pruning:?} / short rows"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property form: arbitrary scripts and batch sizes keep the serving
    /// layer bit-identical to serial on the slab backend (the production
    /// configuration), pruning on and off.
    #[test]
    fn random_scripts_serve_bit_identically(
        seed in 0u64..1_000_000,
        steps in 10usize..80,
        batch_idx in 0usize..BATCH_SIZES.len(),
        pruned in 0u8..2,
        wide in 0u8..2,
    ) {
        let m = if wide == 1 { 16 } else { 2 };
        let ops = script(seed, steps, m);
        let pruning = if pruned == 1 { PruningConfig::Bounds } else { PruningConfig::Off };
        let (serial, expected) = replay_serial(StreamBackend::Slab, pruning, &ops, m);
        let batch = BATCH_SIZES[batch_idx];
        let (serving, log) = replay_serving(StreamBackend::Slab, pruning, &ops, m, batch);
        assert_equivalent(
            &serving,
            &log,
            &serial,
            &expected,
            &format!("proptest seed {seed}, batch {batch}, m {m}, {pruning:?}"),
        );
    }
}
