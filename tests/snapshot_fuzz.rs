//! Corruption fuzz for `snapshot::restore`.
//!
//! The contract: `restore` over arbitrary damaged input — truncations,
//! bit flips, hostile length fields — either succeeds or returns a
//! checked `SnapshotError`. It never panics, and it never trusts a
//! length field it has not clamped against the remaining input, so a
//! hostile count cannot drive a huge allocation. For the checksummed v2
//! format the guarantee is stronger: any single-bit flip anywhere in the
//! stream is *detected* (magic/version checks over the 12-byte head,
//! CRC-32 over every chunk). v1 carries no checksums — a flip inside a
//! moment row can restore "successfully" to different bits — so v1 only
//! asserts the no-panic / checked-error half, which is exactly why
//! checkpoints taken for crash recovery use v2.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use ucpc::core::incremental::{IncrementalUcpc, StreamBackend};
use ucpc::core::PruningConfig;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// Valid victim snapshots, one per (format, backend) corner, built once.
fn victims() -> &'static Vec<Vec<u8>> {
    static VICTIMS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    VICTIMS.get_or_init(|| {
        let mut out = Vec::new();
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut engine = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
            engine.set_pruning(PruningConfig::Bounds);
            let mut rng = StdRng::seed_from_u64(5);
            let mut handles = Vec::new();
            for _ in 0..40 {
                let o = UncertainObject::new(vec![
                    UnivariatePdf::normal(rng.gen_range(-10.0..10.0), 0.3),
                    UnivariatePdf::uniform_centered(rng.gen_range(-3.0..3.0), 0.5),
                ]);
                handles.push(engine.insert(&o).unwrap());
            }
            for i in [3, 11, 26] {
                engine.remove(handles[i]).unwrap();
            }
            engine.stabilize(3);
            out.push(engine.snapshot());
            out.push(engine.snapshot_v2());
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any strict truncation of a valid snapshot (either format, either
    /// backend) is a checked error: every read is bounded by the input,
    /// so starving the tail can only surface as `SnapshotError`.
    #[test]
    fn truncations_always_fail_checked(which in 0usize..4, frac in 0.0f64..1.0) {
        let v = &victims()[which];
        let cut = ((v.len() - 1) as f64 * frac) as usize;
        prop_assert!(IncrementalUcpc::restore(&v[..cut]).is_err());
    }

    /// Any single-bit flip never panics; in the checksummed v2 format it
    /// is always *detected* as a checked error.
    #[test]
    fn bit_flips_never_panic_and_v2_always_detects(
        which in 0usize..4,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let v = &victims()[which];
        let pos = ((v.len() - 1) as f64 * frac) as usize;
        let mut bent = v.clone();
        bent[pos] ^= 1 << bit;
        let out = IncrementalUcpc::restore(&bent);
        if which % 2 == 1 {
            prop_assert!(out.is_err(), "v2 flip at byte {} bit {} undetected", pos, bit);
        } else if let Ok(engine) = out {
            // v1 has no checksums: a payload flip may restore — but to a
            // structurally sound engine that snapshots back cleanly.
            prop_assert_eq!(engine.snapshot(), bent);
        }
    }

    /// Random garbage never panics. (Almost everything fails the magic
    /// check; what survives must fail a later structural check.)
    #[test]
    fn random_bytes_never_panic(seed in 0u64..1_000_000, len in 0usize..4096) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        prop_assert!(IncrementalUcpc::restore(&bytes).is_err());
    }
}

/// A hostile length field must fail fast against the remaining-input
/// clamp, not reach an allocator: patching v1's `k` count to `u64::MAX`
/// asks restore for ~10^19 centroid slots backed by a few hundred bytes.
#[test]
fn hostile_v1_count_fields_fail_fast_without_allocating() {
    let v1 = &victims()[0];
    // Head: magic(8) + version(4) + backend(1) + pruning(1) + m(8); the
    // k count lives at bytes 22..30 (see the module docs format table).
    for field_at in [14usize, 22] {
        let mut bent = v1.clone();
        bent[field_at..field_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(IncrementalUcpc::restore(&bent).is_err());
    }
}

/// Same for v2: the first chunk's length field patched to `u32::MAX`
/// claims a 4 GiB payload; the reader must reject it against the bytes
/// actually present before allocating anything.
#[test]
fn hostile_v2_chunk_length_fails_fast_without_allocating() {
    let v2 = &victims()[1];
    // Head: magic(8) + version(4); first chunk kind at 12, length at 13.
    let mut bent = v2.clone();
    bent[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(IncrementalUcpc::restore(&bent).is_err());
}
