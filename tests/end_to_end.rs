//! End-to-end integration: dataset generation → Section-5.1 uncertainty
//! pipeline → every clustering algorithm → evaluation criteria.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::{FdbScan, Foptics, MmVar, Uahc, UkMeans, UkMedoids};
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::Ucpc;
use ucpc::datasets::benchmark::{generate_fraction, IRIS};
use ucpc::datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc::eval::{f_measure, quality};

fn algorithms() -> Vec<Box<dyn UncertainClusterer>> {
    vec![
        Box::new(Ucpc::default()),
        Box::new(UkMeans::default()),
        Box::new(MmVar::default()),
        Box::new(UkMedoids::default()),
        Box::new(Uahc::default()),
        Box::new(FdbScan::default()),
        Box::new(Foptics::default()),
    ]
}

#[test]
fn full_pipeline_runs_for_every_algorithm_and_pdf_family() {
    for kind in NoiseKind::all() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = generate_fraction(IRIS, 0.4, &mut rng); // 60 objects
        let model = UncertaintyModel::paper_default(kind);
        let assignment = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        let d1 = assignment.perturbed_objects(&mut rng);
        let d2 = assignment.uncertain_objects();

        for alg in algorithms() {
            let mut r1 = StdRng::seed_from_u64(21);
            let mut r2 = StdRng::seed_from_u64(21);
            let c1 = alg
                .cluster(&d1, IRIS.classes, &mut r1)
                .unwrap_or_else(|e| panic!("{} case 1 ({kind:?}): {e}", alg.name()));
            let c2 = alg
                .cluster(&d2, IRIS.classes, &mut r2)
                .unwrap_or_else(|e| panic!("{} case 2 ({kind:?}): {e}", alg.name()));

            // Scores are well-defined and in range.
            let f1 = f_measure(&c1, &d.labels);
            let f2 = f_measure(&c2, &d.labels);
            assert!((0.0..=1.0).contains(&f1), "{}", alg.name());
            assert!((0.0..=1.0).contains(&f2), "{}", alg.name());
            let q = quality(&d2, &c2);
            assert!((-1.0..=1.0).contains(&q.q), "{}", alg.name());
        }
    }
}

#[test]
fn partitional_algorithms_recover_classes_on_easy_uncertain_data() {
    // Clear class structure survives the uncertainty pipeline: UCPC, UKM and
    // MMV should all reach high F on the uncertain dataset.
    let mut rng = StdRng::seed_from_u64(3);
    let d = generate_fraction(IRIS, 0.5, &mut rng);
    let model = UncertaintyModel {
        spread_range: (0.05, 0.15), // gentle uncertainty
        ..UncertaintyModel::paper_default(NoiseKind::Normal)
    };
    let assignment = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
    let d2 = assignment.uncertain_objects();

    {
        let alg = &Ucpc::default() as &dyn UncertainClusterer;
        // Best of a few seeds (local search is initialization-dependent).
        let best = (0..5)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(40 + s);
                let c = alg.cluster(&d2, IRIS.classes, &mut rng).unwrap();
                f_measure(&c, &d.labels)
            })
            .fold(0.0f64, f64::max);
        assert!(best > 0.7, "{}: best F {best}", alg.name());
    }
}

#[test]
fn ucpc_beats_or_matches_ukmeans_on_heteroscedastic_data() {
    // Construct data where variance carries the class signal: same means
    // spread, but class-0 objects are precise and class-1 objects noisy, and
    // means overlap moderately. Averaged over seeds, UCPC's variance-aware
    // objective should do at least as well as UK-means.
    let mut rng = StdRng::seed_from_u64(9);
    let d = generate_fraction(IRIS, 0.4, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    let assignment = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
    let d2 = assignment.uncertain_objects();

    let runs = 10;
    let (mut f_ucpc, mut f_ukm) = (0.0, 0.0);
    for s in 0..runs {
        let mut r1 = StdRng::seed_from_u64(60 + s);
        let mut r2 = StdRng::seed_from_u64(60 + s);
        let c1 = Ucpc::default().cluster(&d2, IRIS.classes, &mut r1).unwrap();
        let c2 = UkMeans::default()
            .cluster(&d2, IRIS.classes, &mut r2)
            .unwrap();
        f_ucpc += f_measure(&c1, &d.labels);
        f_ukm += f_measure(&c2, &d.labels);
    }
    assert!(
        f_ucpc >= f_ukm - 0.5,
        "UCPC mean F {} vs UKM {} — should be comparable or better",
        f_ucpc / runs as f64,
        f_ukm / runs as f64
    );
}

#[test]
fn theta_protocol_is_reproducible() {
    let make = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = generate_fraction(IRIS, 0.3, &mut rng);
        let model = UncertaintyModel::paper_default(NoiseKind::Uniform);
        let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        let d1 = a.perturbed_objects(&mut rng);
        let d2 = a.uncertain_objects();
        let mut r = StdRng::seed_from_u64(77);
        let c1 = Ucpc::default().cluster(&d1, IRIS.classes, &mut r).unwrap();
        let mut r = StdRng::seed_from_u64(77);
        let c2 = Ucpc::default().cluster(&d2, IRIS.classes, &mut r).unwrap();
        f_measure(&c2, &d.labels) - f_measure(&c1, &d.labels)
    };
    assert_eq!(make(5), make(5), "same seed, same Theta");
}
