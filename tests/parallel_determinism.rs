//! Scheduler-determinism gate for the parallel relocation engine: for a
//! fixed dataset, seed and initial partition, `ParallelUcpc` must produce
//! **byte-identical** labels across
//!
//! * thread counts 1 / 2 / 4 / 8,
//! * the `even` (static chunks + snapshot clone) and `steal`
//!   (work-stealing shards + snapshot-free versioned stats) backends,
//! * candidate pruning off and on, and
//! * the scalar and the machine's detected SIMD dot-product backend,
//!
//! all against **one** shared reference per dataset — so any pairwise
//! combination of the four axes is pinned, not just neighbors. SIMD forcing
//! is process-global, but the backends are bit-identical by construction
//! (see `ucpc_uncertain::simd`), so concurrently running tests cannot be
//! perturbed by it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::parallel::{ParallelBackend, ParallelUcpc};
use ucpc::core::restarts::BestOfRestarts;
use ucpc::core::{PruningConfig, Ucpc};
use ucpc::uncertain::simd::{self, Backend};
use ucpc::uncertain::{MomentArena, UncertainObject, UnivariatePdf};

/// Mixed-family random dataset (same generator family as the pruning
/// exactness suite); every third object duplicates the first so tie-breaks
/// are exercised.
fn dataset(n: usize, m: usize, seed: u64) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<UncertainObject> = (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        let mean = rng.gen_range(-8.0..8.0);
                        let spread = rng.gen_range(0.05..2.0);
                        match rng.gen_range(0..3u8) {
                            0 => UnivariatePdf::uniform_centered(mean, spread),
                            1 => UnivariatePdf::normal(mean, spread),
                            _ => UnivariatePdf::PointMass { x: mean },
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    let first = data[0].clone();
    for i in (0..n).step_by(3) {
        data[i] = first.clone();
    }
    data
}

fn random_labels(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect()
}

#[test]
fn labels_are_identical_across_threads_backends_pruning_and_simd() {
    // Shapes straddle the SIMD dispatch threshold (m = 24 engages AVX2/NEON,
    // m = 4 stays on the short-row path) and include k large relative to n.
    let shapes = [(120usize, 4usize, 5usize), (90, 24, 3), (64, 2, 8)];
    let restore = simd::active_backend();
    for &(n, m, k) in &shapes {
        for seed in [1u64, 2] {
            let data = dataset(n, m, seed);
            let arena = MomentArena::from_objects(&data);
            let init = random_labels(n, k, seed + 31);
            let mut reference: Option<(Vec<usize>, usize, usize)> = None;
            for simd_backend in [Backend::Scalar, Backend::detect()] {
                simd::force_backend(simd_backend).expect("backend available");
                for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
                    for backend in [ParallelBackend::Even, ParallelBackend::Steal] {
                        for threads in [1usize, 2, 4, 8] {
                            let r = ParallelUcpc {
                                threads,
                                backend,
                                pruning,
                                ..ParallelUcpc::default()
                            }
                            .run_on_arena(&arena, k, init.clone())
                            .unwrap();
                            let got = (r.clustering.labels().to_vec(), r.iterations, r.applied);
                            match &reference {
                                Some(want) => assert_eq!(
                                    want,
                                    &got,
                                    "diverged: n={n} m={m} k={k} seed={seed} \
                                     {threads} threads, {} backend, {pruning:?}, \
                                     simd {simd_backend:?}",
                                    backend.name()
                                ),
                                None => reference = Some(got),
                            }
                        }
                    }
                }
            }
        }
    }
    simd::force_backend(restore).expect("previously active backend");
}

#[test]
fn restart_pool_is_deterministic_across_threads_and_pruning() {
    let data = dataset(72, 3, 9);
    for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
        // One reference per pruning config: thread counts must reproduce
        // bit-identical per-restart objectives (cross-pruning equivalence is
        // the exactness suite's job and tolerates last-ulp drift).
        let mut reference: Option<(usize, Vec<usize>, Vec<f64>)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(17);
            let r = BestOfRestarts {
                algorithm: Ucpc {
                    pruning,
                    ..Ucpc::default()
                },
                restarts: 7,
                threads,
            }
            .run(&data, 4, &mut rng)
            .unwrap();
            let got = (
                r.winner,
                r.best.clustering.labels().to_vec(),
                r.objectives.clone(),
            );
            match &reference {
                Some(want) => assert_eq!(
                    want, &got,
                    "restart pool diverged: {threads} threads, {pruning:?}"
                ),
                None => reference = Some(got),
            }
        }
    }
}
