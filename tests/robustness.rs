//! Robustness integration tests: extreme inputs, degenerate shapes, and
//! NaN-freedom across every algorithm.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::{FdbScan, Foptics, MmVar, Uahc, UkMeans, UkMedoids};
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::parallel::ParallelUcpc;
use ucpc::core::Ucpc;
use ucpc::eval::quality;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn algorithms() -> Vec<Box<dyn UncertainClusterer>> {
    vec![
        Box::new(Ucpc::default()),
        Box::new(ParallelUcpc::default()),
        Box::new(UkMeans::default()),
        Box::new(MmVar::default()),
        Box::new(UkMedoids::default()),
        Box::new(Uahc::default()),
        Box::new(FdbScan::default()),
        Box::new(Foptics::default()),
    ]
}

fn run_all(data: &[UncertainObject], k: usize) {
    for alg in algorithms() {
        let mut rng = StdRng::seed_from_u64(99);
        let c = alg
            .cluster(data, k, &mut rng)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(c.len(), data.len(), "{}", alg.name());
        // Internal quality must be finite on any valid clustering.
        let q = quality(data, &c);
        assert!(q.q.is_finite(), "{} produced NaN quality", alg.name());
    }
}

#[test]
fn identical_objects_do_not_break_anything() {
    let data: Vec<UncertainObject> = (0..12)
        .map(|_| UncertainObject::new(vec![UnivariatePdf::normal(1.0, 0.5)]))
        .collect();
    run_all(&data, 3);
}

#[test]
fn zero_variance_dataset() {
    let data: Vec<UncertainObject> = (0..10)
        .map(|i| UncertainObject::deterministic(&[i as f64, (i % 3) as f64]))
        .collect();
    run_all(&data, 2);
}

#[test]
fn extreme_scales_mixed_in_one_dataset() {
    // Coordinates spanning 12 orders of magnitude and variances from tiny to
    // huge: everything must stay finite.
    let mut data = Vec::new();
    for i in 0..6 {
        data.push(UncertainObject::new(vec![
            UnivariatePdf::normal(1e-6 * (i as f64 + 1.0), 1e-8),
            UnivariatePdf::normal(1e6 * (i as f64 + 1.0), 1e3),
        ]));
    }
    for i in 0..6 {
        data.push(UncertainObject::new(vec![
            UnivariatePdf::uniform_centered(-1e6 + i as f64, 10.0),
            UnivariatePdf::exponential_with_mean(-50.0 + i as f64, 0.01),
        ]));
    }
    run_all(&data, 2);
}

#[test]
fn k_equals_one_and_k_equals_n() {
    let data: Vec<UncertainObject> = (0..6)
        .map(|i| UncertainObject::new(vec![UnivariatePdf::normal(i as f64 * 3.0, 0.2)]))
        .collect();
    run_all(&data, 1);
    // k = n: partitional algorithms must produce n non-empty clusters.
    let mut rng = StdRng::seed_from_u64(4);
    let c = Ucpc::default()
        .cluster(&data, data.len(), &mut rng)
        .unwrap();
    assert_eq!(c.non_empty(), data.len());
}

#[test]
fn two_objects_two_clusters() {
    let data = vec![
        UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0)]),
        UncertainObject::new(vec![UnivariatePdf::normal(10.0, 1.0)]),
    ];
    run_all(&data, 2);
}

#[test]
fn heavily_skewed_exponential_objects() {
    let data: Vec<UncertainObject> = (0..15)
        .map(|i| {
            UncertainObject::with_coverage(
                vec![
                    UnivariatePdf::exponential_with_mean((i % 3) as f64 * 8.0, 0.5),
                    UnivariatePdf::exponential_with_mean((i % 3) as f64 * 8.0, 5.0),
                ],
                0.95,
            )
        })
        .collect();
    run_all(&data, 3);
}

#[test]
fn high_dimensional_objects() {
    let m = 64;
    let data: Vec<UncertainObject> = (0..20)
        .map(|i| {
            let base = (i % 2) as f64 * 5.0;
            UncertainObject::new(
                (0..m)
                    .map(|j| UnivariatePdf::normal(base + (j % 7) as f64 * 0.1, 0.3))
                    .collect(),
            )
        })
        .collect();
    run_all(&data, 2);
}
