//! Robustness integration tests: extreme inputs, degenerate shapes, and
//! NaN-freedom across every algorithm.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc::baselines::{FdbScan, Foptics, MmVar, Uahc, UkMeans, UkMedoids};
use ucpc::core::framework::UncertainClusterer;
use ucpc::core::incremental::IncrementalUcpc;
use ucpc::core::parallel::ParallelUcpc;
use ucpc::core::{ServingConfig, ServingError, ServingResponse, ServingUcpc, ShardedUcpc, Ucpc};
use ucpc::eval::quality;
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

fn algorithms() -> Vec<Box<dyn UncertainClusterer>> {
    vec![
        Box::new(Ucpc::default()),
        Box::new(ParallelUcpc::default()),
        Box::new(UkMeans::default()),
        Box::new(MmVar::default()),
        Box::new(UkMedoids::default()),
        Box::new(Uahc::default()),
        Box::new(FdbScan::default()),
        Box::new(Foptics::default()),
    ]
}

fn run_all(data: &[UncertainObject], k: usize) {
    for alg in algorithms() {
        let mut rng = StdRng::seed_from_u64(99);
        let c = alg
            .cluster(data, k, &mut rng)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(c.len(), data.len(), "{}", alg.name());
        // Internal quality must be finite on any valid clustering.
        let q = quality(data, &c);
        assert!(q.q.is_finite(), "{} produced NaN quality", alg.name());
    }
}

#[test]
fn identical_objects_do_not_break_anything() {
    let data: Vec<UncertainObject> = (0..12)
        .map(|_| UncertainObject::new(vec![UnivariatePdf::normal(1.0, 0.5)]))
        .collect();
    run_all(&data, 3);
}

#[test]
fn zero_variance_dataset() {
    let data: Vec<UncertainObject> = (0..10)
        .map(|i| UncertainObject::deterministic(&[i as f64, (i % 3) as f64]))
        .collect();
    run_all(&data, 2);
}

#[test]
fn extreme_scales_mixed_in_one_dataset() {
    // Coordinates spanning 12 orders of magnitude and variances from tiny to
    // huge: everything must stay finite.
    let mut data = Vec::new();
    for i in 0..6 {
        data.push(UncertainObject::new(vec![
            UnivariatePdf::normal(1e-6 * (i as f64 + 1.0), 1e-8),
            UnivariatePdf::normal(1e6 * (i as f64 + 1.0), 1e3),
        ]));
    }
    for i in 0..6 {
        data.push(UncertainObject::new(vec![
            UnivariatePdf::uniform_centered(-1e6 + i as f64, 10.0),
            UnivariatePdf::exponential_with_mean(-50.0 + i as f64, 0.01),
        ]));
    }
    run_all(&data, 2);
}

#[test]
fn k_equals_one_and_k_equals_n() {
    let data: Vec<UncertainObject> = (0..6)
        .map(|i| UncertainObject::new(vec![UnivariatePdf::normal(i as f64 * 3.0, 0.2)]))
        .collect();
    run_all(&data, 1);
    // k = n: partitional algorithms must produce n non-empty clusters.
    let mut rng = StdRng::seed_from_u64(4);
    let c = Ucpc::default()
        .cluster(&data, data.len(), &mut rng)
        .unwrap();
    assert_eq!(c.non_empty(), data.len());
}

#[test]
fn two_objects_two_clusters() {
    let data = vec![
        UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0)]),
        UncertainObject::new(vec![UnivariatePdf::normal(10.0, 1.0)]),
    ];
    run_all(&data, 2);
}

#[test]
fn heavily_skewed_exponential_objects() {
    let data: Vec<UncertainObject> = (0..15)
        .map(|i| {
            UncertainObject::with_coverage(
                vec![
                    UnivariatePdf::exponential_with_mean((i % 3) as f64 * 8.0, 0.5),
                    UnivariatePdf::exponential_with_mean((i % 3) as f64 * 8.0, 5.0),
                ],
                0.95,
            )
        })
        .collect();
    run_all(&data, 3);
}

// ---------------------------------------------------------------------------
// Degenerate shapes for the streaming / serving / sharded engines, which the
// batch sweeps above never construct.
// ---------------------------------------------------------------------------

fn point(coords: &[f64]) -> UncertainObject {
    UncertainObject::new(
        coords
            .iter()
            .map(|&c| UnivariatePdf::normal(c, 0.3))
            .collect(),
    )
}

#[test]
fn incremental_engine_degenerate_shapes() {
    // k = 1, m = 1: every insert lands in the only cluster, stabilize has
    // nowhere to move anything, and the objective stays finite throughout.
    let mut eng = IncrementalUcpc::new(1, 1).unwrap();
    let mut handles = Vec::new();
    for i in 0..5 {
        let h = eng.insert(&point(&[i as f64])).unwrap();
        assert_eq!(eng.label_of(h), Some(0));
        handles.push(h);
    }
    assert_eq!(eng.stabilize(3), 0, "k = 1 admits no relocations");
    assert!(eng.objective().is_finite());

    // Drain back down to empty: the engine must survive, report empty, and
    // accept fresh inserts afterwards.
    for h in handles {
        eng.remove(h).unwrap();
    }
    assert!(eng.is_empty());
    assert_eq!(eng.stabilize(2), 0, "empty engine stabilizes trivially");
    let h = eng.insert(&point(&[7.0])).unwrap();
    assert_eq!(eng.label_of(h), Some(0));

    // A single live object with k > 1: the singleton guard must keep
    // stabilize from evicting the only member of its cluster.
    let mut single = IncrementalUcpc::new(2, 3).unwrap();
    let h = single.insert(&point(&[1.0, -1.0])).unwrap();
    assert_eq!(single.len(), 1);
    assert_eq!(single.stabilize(4), 0, "a singleton never relocates");
    assert!(single.label_of(h).is_some());
    assert!(single.objective().is_finite());
}

#[test]
fn serving_layer_empty_flush_and_zero_capacity_queue() {
    // Flushing an empty queue is a no-op: no work, no responses.
    let mut idle = ServingUcpc::new(2, 2, ServingConfig::default()).unwrap();
    assert_eq!(idle.flush(), 0);
    assert!(idle.pop_response().is_none());

    // A zero-capacity queue clamps to the batch size (>= 1): exactly one
    // request is admitted, the next is shed with QueueFull rather than
    // dropped silently, and a flush makes room again.
    let cfg = ServingConfig {
        batch: 1,
        queue_capacity: 0,
        ..ServingConfig::default()
    };
    let mut serving = ServingUcpc::new(1, 2, cfg).unwrap();
    serving.submit_commit_object(&point(&[0.0])).unwrap();
    match serving.submit_commit_object(&point(&[1.0])) {
        Err(ServingError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull from a clamped zero-capacity queue, got {other:?}"),
    }
    assert_eq!(serving.flush(), 1);
    match serving.pop_response() {
        Some((_, ServingResponse::Committed { .. })) => {}
        other => panic!("expected the shed-survivor commit, got {other:?}"),
    }
    serving
        .submit_commit_object(&point(&[1.0]))
        .expect("flush frees the single queue slot");
    assert_eq!(serving.flush(), 1);

    // Degenerate maintenance on the drained queue: stabilize submitted
    // alone flushes cleanly and the engine stays consistent.
    serving.submit_stabilize(2).unwrap();
    assert_eq!(serving.flush(), 1);
    assert_eq!(serving.engine().len(), 2);
    assert!(serving.engine().objective().is_finite());
}

#[test]
fn sharded_engine_single_object_and_degenerate_k_m() {
    // One object across many shards: every shard but the owner holds an
    // empty partition, and the replicated state still matches single-node.
    let mut sharded = ShardedUcpc::new(1, 2, 8).unwrap();
    let mut single = IncrementalUcpc::new(1, 2).unwrap();
    let hs = sharded.insert(&point(&[3.0])).unwrap();
    let hi = single.insert(&point(&[3.0])).unwrap();
    assert_eq!(hs, hi);
    assert_eq!(sharded.stabilize(3), single.stabilize(3));
    assert_eq!(sharded.objective().to_bits(), single.objective().to_bits());
    sharded.remove(hs).unwrap();
    assert!(sharded.is_empty());

    // k = 1, m = 1 under sharding: inserts, a no-op stabilize, and removal
    // down to empty all replicate bit-identically.
    let mut sharded = ShardedUcpc::new(1, 1, 4).unwrap();
    let mut single = IncrementalUcpc::new(1, 1).unwrap();
    let mut handles = Vec::new();
    for i in 0..6 {
        let hs = sharded.insert(&point(&[i as f64])).unwrap();
        let hi = single.insert(&point(&[i as f64])).unwrap();
        assert_eq!(hs, hi);
        handles.push(hs);
    }
    assert_eq!(sharded.stabilize(2), 0, "k = 1 admits no relocations");
    assert_eq!(sharded.objective().to_bits(), single.objective().to_bits());
    for h in handles {
        sharded.remove(h).unwrap();
    }
    assert!(sharded.is_empty());
    assert_eq!(sharded.objective(), 0.0);
}

#[test]
fn high_dimensional_objects() {
    let m = 64;
    let data: Vec<UncertainObject> = (0..20)
        .map(|i| {
            let base = (i % 2) as f64 * 5.0;
            UncertainObject::new(
                (0..m)
                    .map(|j| UnivariatePdf::normal(base + (j % 7) as f64 * 0.1, 0.3))
                    .collect(),
            )
        })
        .collect();
    run_all(&data, 2);
}
