//! Generation-stamped handle suite for the slab arena: heavy free-list
//! reuse, slot recycling and generation wraparound.
//!
//! The contract: a surviving handle always reads exactly the moments it
//! was issued for (bit-identical to a fresh arena built from scratch from
//! the survivors), and every removed handle — however many times its slot
//! was recycled since — is a checked `StaleHandle` error, never a silent
//! read of the slot's next occupant. Generation counters wrap at `u32::MAX`
//! without aliasing the pre-wrap handle.

use proptest::prelude::*;
use std::collections::HashMap;
use ucpc::uncertain::{MomentArena, Moments, ObjectHandle, SlabArena};

fn mo(seed: u64, m: usize) -> Moments {
    // Cheap deterministic per-seed payload; distinct across seeds so an
    // aliased read cannot accidentally match.
    let mu: Vec<f64> = (0..m).map(|j| (seed as f64) * 0.37 + j as f64).collect();
    let mu2: Vec<f64> = mu.iter().map(|&x| x * x + 0.25).collect();
    Moments::from_mu_mu2(mu, mu2)
}

/// Bitwise equality of two kernel views, derived columns included.
fn views_bit_identical(
    a: &ucpc::uncertain::arena::MomentView<'_>,
    b: &ucpc::uncertain::arena::MomentView<'_>,
) -> bool {
    a.mu.iter()
        .zip(b.mu)
        .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.mu2
            .iter()
            .zip(b.mu2)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.var
            .iter()
            .zip(b.var)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.sum_mu_sq.to_bits() == b.sum_mu_sq.to_bits()
        && a.sum_mu2.to_bits() == b.sum_mu2.to_bits()
        && a.sum_var.to_bits() == b.sum_var.to_bits()
        && a.norm_mu.to_bits() == b.norm_mu.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Removal-heavy random churn: slots are recycled constantly, yet every
    /// surviving handle's view matches a from-scratch arena bit for bit,
    /// and every retired handle errors.
    #[test]
    fn churned_slab_matches_fresh_arena_bitwise(
        seed in 0u64..1_000_000,
        steps in 50usize..300,
        m in 1usize..6,
    ) {
        let mut slab = SlabArena::new();
        let mut live: Vec<(ObjectHandle, u64)> = Vec::new();
        let mut retired: Vec<ObjectHandle> = Vec::new();
        let mut payload: HashMap<ObjectHandle, u64> = HashMap::new();

        // Deterministic pseudo-random walk off the proptest seed; biased
        // toward removal so the free-list sees real traffic.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..steps {
            let r = next();
            if live.is_empty() || r % 5 < 2 {
                let tag = seed.wrapping_add(step as u64);
                let h = slab.insert(&mo(tag, m));
                prop_assert!(payload.insert(h, tag).is_none(), "handles are unique per run");
                live.push((h, tag));
            } else {
                let idx = (r as usize / 5) % live.len();
                let (h, _) = live.swap_remove(idx);
                slab.remove(h).expect("live handle removes cleanly");
                retired.push(h);
            }
        }

        prop_assert_eq!(slab.len(), live.len());
        // Every survivor reads its own payload…
        for &(h, tag) in &live {
            let v = slab.get(h).expect("surviving handle resolves");
            let fresh = mo(tag, m);
            prop_assert!(views_bit_identical(&v, &fresh.view()),
                "survivor view must match its payload bitwise");
        }
        // …bit-identical to an arena rebuilt from scratch from the
        // survivors (recycled rows carry no residue into the kernels).
        let survivors: Vec<Moments> = live.iter().map(|&(_, tag)| mo(tag, m)).collect();
        let rebuilt = MomentArena::from_moments(survivors.iter());
        for (i, &(h, _)) in live.iter().enumerate() {
            let v = slab.get(h).expect("surviving handle resolves");
            prop_assert!(views_bit_identical(&v, &rebuilt.view(i)),
                "recycled slot must be bit-identical to fresh append");
        }
        // Every retired handle is a checked error, no matter how many
        // occupants its slot has seen since.
        for &h in &retired {
            prop_assert!(slab.get(h).is_err(), "retired handle must be stale");
            prop_assert!(slab.remove(h).is_err(), "retired handle must not double-free");
        }
    }

    /// Generation wraparound under continued churn: slots seeded at
    /// `u32::MAX` wrap to 0 and keep recycling without ever resurrecting a
    /// pre-wrap handle.
    #[test]
    fn generation_wraparound_keeps_recycling_without_aliasing(
        rounds in 1usize..20,
    ) {
        let m = 2;
        // A one-row slab whose live occupant sits at the last generation
        // before wraparound.
        let arena = MomentArena::from_moments([&mo(0, m)]);
        let mut slab = SlabArena::from_parts(
            arena,
            vec![true],
            Vec::new(),
            vec![u32::MAX],
        );
        let pre_wrap = ObjectHandle::new(0, u32::MAX);
        prop_assert!(slab.contains(pre_wrap));
        slab.remove(pre_wrap).expect("live");

        let mut previous = pre_wrap;
        for round in 0..rounds {
            let h = slab.insert(&mo(round as u64 + 1, m));
            prop_assert_eq!(h.slot(), 0, "single slot keeps recycling");
            prop_assert_eq!(h.generation(), round as u32, "generation wrapped to 0 and counts up");
            prop_assert!(slab.get(pre_wrap).is_err(), "pre-wrap handle stays stale");
            prop_assert!(slab.get(previous).is_err(), "previous occupant stays stale");
            let v = slab.get(h).expect("current occupant resolves");
            prop_assert!(views_bit_identical(&v, &mo(round as u64 + 1, m).view()));
            slab.remove(h).expect("current occupant removes");
            previous = h;
        }
    }
}
