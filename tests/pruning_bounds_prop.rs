//! Property test of the drift-bound *invariant itself*, not just run-level
//! outcomes: over random relocation sequences — including adversarial,
//! non-greedy moves the search would never take — whenever the bound
//! machinery says "skip" (or "the cached argmin still wins"), a shadow full
//! scan must agree. A lucky end-to-end equality cannot mask an unsound
//! bound here: every single decision is cross-checked against ground truth.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::objective::ClusterStats;
use ucpc::core::pruning::{
    apply_tracked_relocation, fp_scale, DriftTotals, PruneCache, PruneDecision,
};
use ucpc::uncertain::{MomentArena, UncertainObject, UnivariatePdf};

const TOLERANCE: f64 = 1e-9;

fn dataset(n: usize, m: usize, rng: &mut StdRng) -> Vec<UncertainObject> {
    (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        let mean = rng.gen_range(-10.0..10.0);
                        match rng.gen_range(0..3u8) {
                            0 => UnivariatePdf::normal(mean, rng.gen_range(0.05..1.5)),
                            1 => UnivariatePdf::uniform_centered(mean, rng.gen_range(0.1..2.0)),
                            _ => UnivariatePdf::PointMass { x: mean },
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The reference scan: removal gain plus every candidate delta, with the
/// same best/second/argmin semantics as the relocation loops.
fn shadow_scan(
    stats: &[ClusterStats],
    arena: &MomentArena,
    i: usize,
    src: usize,
) -> Option<(usize, f64, f64)> {
    let v = arena.view(i);
    let removal_gain = stats[src].delta_j_remove(&v);
    let mut best: Option<(usize, f64)> = None;
    let mut second = f64::INFINITY;
    for (dst, stat) in stats.iter().enumerate() {
        if dst == src {
            continue;
        }
        let delta = removal_gain + stat.delta_j_add(&v);
        match best {
            Some((_, bd)) if delta >= bd => {
                if delta < second {
                    second = delta;
                }
            }
            Some((_, bd)) => {
                second = bd;
                best = Some((dst, delta));
            }
            None => best = Some((dst, delta)),
        }
    }
    best.map(|(dst, delta)| (dst, delta, second))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The stolen-shard variant of the invariant: cache entries are written
    /// through one shard geometry and read through *another*, re-split at a
    /// random chunk size every round — exactly what the work-stealing
    /// propose phase does when a shard (with its cache window) migrates
    /// between workers and the adaptive chunk size changes across passes.
    /// A skip or argmin confirmation issued through any window over any
    /// geometry must survive the shadow full scan; a base-offset bug in the
    /// window arithmetic would surface here as an unsound decision on a
    /// non-first shard.
    #[test]
    fn stolen_shard_windows_never_skip_what_a_full_scan_rejects(
        seed in 0u64..1_000_000,
        n in 12usize..40,
        m in 1usize..5,
        k in 2usize..6,
        steps in 8usize..30,
    ) {
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = dataset(n, m, &mut rng);
        let arena = MomentArena::from_objects(&data);
        let mut labels: Vec<usize> =
            (0..n).map(|i| if i < k { i } else { rng.gen_range(0..k) }).collect();
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, &l) in labels.iter().enumerate() {
            stats[l].add_view(&arena.view(i));
        }

        let mut cache = PruneCache::new(n, k);
        let mut totals = DriftTotals::default();
        let mut epoch = 0u64;

        for _step in 0..steps {
            // Write a handful of entries through this round's geometry,
            // each via the window that owns the object.
            let write_chunk = rng.gen_range(1..=n);
            {
                let mut shards = cache.shards(write_chunk);
                for _ in 0..3 {
                    let i = rng.gen_range(0..n);
                    let src = labels[i];
                    if stats[src].size() <= 1 {
                        continue;
                    }
                    if let Some((dst, best, second)) = shadow_scan(&stats, &arena, i, src) {
                        shards[i / write_chunk]
                            .store(i, epoch, &stats, totals, dst, best, second);
                    }
                }
            }

            // One adversarial relocation (any object, any destination).
            let i = rng.gen_range(0..n);
            let src = labels[i];
            if stats[src].size() > 1 {
                let mut dst = rng.gen_range(0..k);
                if dst == src {
                    dst = (dst + 1) % k;
                }
                let v = arena.view(i);
                if apply_tracked_relocation(&mut stats, src, dst, &v, &mut totals) {
                    epoch += 1;
                }
                cache.invalidate(i);
                labels[i] = dst;
            }

            // Read every object's decision through a *different* random
            // geometry — the "stolen" windows — and shadow-check it.
            let read_chunk = rng.gen_range(1..=n);
            let shards = cache.shards(read_chunk);
            let scale = fp_scale(&stats);
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                let src = labels[j];
                if stats[src].size() <= 1 {
                    continue;
                }
                let v = arena.view(j);
                let decision = shards[j / read_chunk]
                    .decide(j, epoch, &stats, totals, src, &v, TOLERANCE, scale);
                let truth = shadow_scan(&stats, &arena, j, src);
                match decision {
                    PruneDecision::FullScan => {}
                    PruneDecision::Skip => {
                        let (_, best, _) = truth.expect("k >= 2 yields candidates");
                        prop_assert!(
                            best >= -TOLERANCE,
                            "unsound skip through a stolen window: shadow best \
                             {best} would relocate (object {j}, chunk {read_chunk}, \
                             seed {seed})"
                        );
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        let (true_dst, best, second) = truth.expect("candidates exist");
                        prop_assert_eq!(
                            dst, true_dst,
                            "unsound argmin through a stolen window (object {}, \
                             chunk {}, seed {})", j, read_chunk, seed
                        );
                        prop_assert!(
                            best < second || second == f64::INFINITY,
                            "confirmed argmin is not strictly winning"
                        );
                    }
                }
            }
        }
    }

    /// Random relocation churn; after every step, every cached object's
    /// decision is validated against a shadow scan.
    #[test]
    fn skip_and_confirm_decisions_survive_shadow_scans(
        seed in 0u64..1_000_000,
        n in 12usize..40,
        m in 1usize..6,
        k in 2usize..6,
        steps in 10usize..60,
    ) {
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = dataset(n, m, &mut rng);
        let arena = MomentArena::from_objects(&data);
        let mut labels: Vec<usize> =
            (0..n).map(|i| if i < k { i } else { rng.gen_range(0..k) }).collect();
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, &l) in labels.iter().enumerate() {
            stats[l].add_view(&arena.view(i));
        }

        let mut cache = PruneCache::new(n, k);
        let mut totals = DriftTotals::default();
        let mut epoch = 0u64;

        for _step in 0..steps {
            // Cache a handful of random objects from genuine scans.
            for _ in 0..3 {
                let i = rng.gen_range(0..n);
                let src = labels[i];
                if stats[src].size() <= 1 {
                    continue;
                }
                if let Some((dst, best, second)) = shadow_scan(&stats, &arena, i, src) {
                    cache
                        .view()
                        .store(i, epoch, &stats, totals, dst, best, second);
                }
            }

            // One adversarial relocation: a random object to a random other
            // cluster, regardless of whether it improves the objective.
            let i = rng.gen_range(0..n);
            let src = labels[i];
            if stats[src].size() > 1 && k >= 2 {
                let mut dst = rng.gen_range(0..k);
                if dst == src {
                    dst = (dst + 1) % k;
                }
                let v = arena.view(i);
                if apply_tracked_relocation(&mut stats, src, dst, &v, &mut totals) {
                    epoch += 1;
                }
                cache.invalidate(i);
                labels[i] = dst;
            }

            // Validate every object's decision against ground truth.
            let scale = fp_scale(&stats);
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                let src = labels[j];
                if stats[src].size() <= 1 {
                    continue;
                }
                let v = arena.view(j);
                let decision =
                    cache
                        .view()
                        .decide(j, epoch, &stats, totals, src, &v, TOLERANCE, scale);
                let truth = shadow_scan(&stats, &arena, j, src);
                match decision {
                    PruneDecision::FullScan => {}
                    PruneDecision::Skip => {
                        let (_, best, _) = truth.expect("k >= 2 yields candidates");
                        prop_assert!(
                            best >= -TOLERANCE,
                            "unsound skip: shadow best {best} would relocate \
                             (object {j}, seed {seed})"
                        );
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        let (true_dst, best, second) = truth.expect("candidates exist");
                        prop_assert_eq!(
                            dst, true_dst,
                            "unsound argmin confirmation (object {}, seed {})", j, seed
                        );
                        prop_assert!(
                            best < second || second == f64::INFINITY,
                            "confirmed argmin is not strictly winning"
                        );
                    }
                }
            }
        }
    }
}
