//! Property test of the drift-bound *invariant itself*, not just run-level
//! outcomes: over random relocation sequences — including adversarial,
//! non-greedy moves the search would never take, and tracked streaming
//! edits (inserts/removals outside any relocation) — whenever the bound
//! machinery says "skip" (or "the cached argmin still wins"), a shadow full
//! scan must agree. A lucky end-to-end equality cannot mask an unsound
//! bound here: every single decision is cross-checked against ground truth.
//! The per-cluster remove-direction version counters (surgical
//! invalidation, see `ucpc_core::pruning`) are exercised directly: edits
//! that empty or nearly empty a cluster bump only that cluster's counter,
//! and every entry that survives must still pass its shadow scan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::objective::ClusterStats;
use ucpc::core::pruning::{
    apply_tracked_insert, apply_tracked_relocation, apply_tracked_remove, fp_scale, DriftTotals,
    PruneCache, PruneDecision,
};
use ucpc::uncertain::{MomentArena, UncertainObject, UnivariatePdf};

const TOLERANCE: f64 = 1e-9;

fn dataset(n: usize, m: usize, rng: &mut StdRng) -> Vec<UncertainObject> {
    (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        let mean = rng.gen_range(-10.0..10.0);
                        match rng.gen_range(0..3u8) {
                            0 => UnivariatePdf::normal(mean, rng.gen_range(0.05..1.5)),
                            1 => UnivariatePdf::uniform_centered(mean, rng.gen_range(0.1..2.0)),
                            _ => UnivariatePdf::PointMass { x: mean },
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The reference scan: removal gain plus every candidate delta, with the
/// same best/second/argmin semantics as the relocation loops.
fn shadow_scan(
    stats: &[ClusterStats],
    arena: &MomentArena,
    i: usize,
    src: usize,
) -> Option<(usize, f64, f64)> {
    let v = arena.view(i);
    let removal_gain = stats[src].delta_j_remove(&v);
    let mut best: Option<(usize, f64)> = None;
    let mut second = f64::INFINITY;
    for (dst, stat) in stats.iter().enumerate() {
        if dst == src {
            continue;
        }
        let delta = removal_gain + stat.delta_j_add(&v);
        match best {
            Some((_, bd)) if delta >= bd => {
                if delta < second {
                    second = delta;
                }
            }
            Some((_, bd)) => {
                second = bd;
                best = Some((dst, delta));
            }
            None => best = Some((dst, delta)),
        }
    }
    best.map(|(dst, delta)| (dst, delta, second))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The stolen-shard variant of the invariant: cache entries are written
    /// through one shard geometry and read through *another*, re-split at a
    /// random chunk size every round — exactly what the work-stealing
    /// propose phase does when a shard (with its cache window) migrates
    /// between workers and the adaptive chunk size changes across passes.
    /// A skip or argmin confirmation issued through any window over any
    /// geometry must survive the shadow full scan; a base-offset bug in the
    /// window arithmetic would surface here as an unsound decision on a
    /// non-first shard.
    #[test]
    fn stolen_shard_windows_never_skip_what_a_full_scan_rejects(
        seed in 0u64..1_000_000,
        n in 12usize..40,
        m in 1usize..5,
        k in 2usize..6,
        steps in 8usize..30,
    ) {
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = dataset(n, m, &mut rng);
        let arena = MomentArena::from_objects(&data);
        let mut labels: Vec<usize> =
            (0..n).map(|i| if i < k { i } else { rng.gen_range(0..k) }).collect();
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, &l) in labels.iter().enumerate() {
            stats[l].add_view(&arena.view(i));
        }

        let mut cache = PruneCache::new(n, k);
        let mut totals = DriftTotals::default();
        let mut versions = vec![0u64; k];

        for _step in 0..steps {
            // Write a handful of entries through this round's geometry,
            // each via the window that owns the object.
            let write_chunk = rng.gen_range(1..=n);
            {
                let mut shards = cache.shards(write_chunk);
                for _ in 0..3 {
                    let i = rng.gen_range(0..n);
                    let src = labels[i];
                    if stats[src].size() <= 1 {
                        continue;
                    }
                    if let Some((dst, best, second)) = shadow_scan(&stats, &arena, i, src) {
                        shards[i / write_chunk]
                            .store(i, 0, 0, &stats, totals, &versions, src, dst, best, second);
                    }
                }
            }

            // One adversarial relocation (any object, any destination).
            let i = rng.gen_range(0..n);
            let src = labels[i];
            if stats[src].size() > 1 {
                let mut dst = rng.gen_range(0..k);
                if dst == src {
                    dst = (dst + 1) % k;
                }
                let v = arena.view(i);
                apply_tracked_relocation(&mut stats, src, dst, &v, &mut totals, &mut versions);
                cache.invalidate(i);
                labels[i] = dst;
            }

            // Read every object's decision through a *different* random
            // geometry — the "stolen" windows — and shadow-check it.
            let read_chunk = rng.gen_range(1..=n);
            let shards = cache.shards(read_chunk);
            let scale = fp_scale(&stats);
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                let src = labels[j];
                if stats[src].size() <= 1 {
                    continue;
                }
                let v = arena.view(j);
                let decision = shards[j / read_chunk]
                    .decide(j, 0, 0, &stats, totals, &versions, src, &v, TOLERANCE, scale);
                let truth = shadow_scan(&stats, &arena, j, src);
                match decision {
                    PruneDecision::FullScan => {}
                    PruneDecision::Skip => {
                        let (_, best, _) = truth.expect("k >= 2 yields candidates");
                        prop_assert!(
                            best >= -TOLERANCE,
                            "unsound skip through a stolen window: shadow best \
                             {best} would relocate (object {j}, chunk {read_chunk}, \
                             seed {seed})"
                        );
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        let (true_dst, best, second) = truth.expect("candidates exist");
                        prop_assert_eq!(
                            dst, true_dst,
                            "unsound argmin through a stolen window (object {}, \
                             chunk {}, seed {})", j, read_chunk, seed
                        );
                        prop_assert!(
                            best < second || second == f64::INFINITY,
                            "confirmed argmin is not strictly winning"
                        );
                    }
                }
            }
        }
    }

    /// Random relocation churn *interleaved with tracked streaming edits*
    /// (inserts of pooled extra objects, removals of assigned ones — the
    /// slab backend's edit path, including edits that take clusters through
    /// size < 2 and fire the surgical per-cluster invalidation); after
    /// every step, every cached object's decision is validated against a
    /// shadow scan.
    #[test]
    fn skip_and_confirm_decisions_survive_shadow_scans(
        seed in 0u64..1_000_000,
        n in 12usize..40,
        extras in 3usize..10,
        m in 1usize..6,
        k in 2usize..6,
        steps in 10usize..60,
    ) {
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let total = n + extras;
        let data = dataset(total, m, &mut rng);
        let arena = MomentArena::from_objects(&data);
        // Core objects start assigned; the extra pool starts outside the
        // clustering and is streamed in/out by tracked edits.
        let mut labels: Vec<Option<usize>> = (0..total)
            .map(|i| {
                if i >= n {
                    None
                } else if i < k {
                    Some(i)
                } else {
                    Some(rng.gen_range(0..k))
                }
            })
            .collect();
        let mut stats = vec![ClusterStats::empty(m); k];
        for (i, l) in labels.iter().enumerate() {
            if let Some(l) = *l {
                stats[l].add_view(&arena.view(i));
            }
        }

        let mut cache = PruneCache::new(total, k);
        let mut totals = DriftTotals::default();
        let mut versions = vec![0u64; k];

        for _step in 0..steps {
            // Cache a handful of random objects from genuine scans.
            for _ in 0..3 {
                let i = rng.gen_range(0..total);
                let Some(src) = labels[i] else { continue };
                if stats[src].size() <= 1 {
                    continue;
                }
                if let Some((dst, best, second)) = shadow_scan(&stats, &arena, i, src) {
                    cache
                        .view()
                        .store(i, 0, 0, &stats, totals, &versions, src, dst, best, second);
                }
            }

            // One adversarial action: a non-greedy relocation, a tracked
            // insert of a pooled object, or a tracked removal.
            match rng.gen_range(0..4u8) {
                0 => {
                    // Tracked insert: any unassigned object, any cluster —
                    // including empty ones (small transition ⇒ surgical
                    // version bump on exactly that cluster).
                    let unassigned: Vec<usize> =
                        (0..total).filter(|&i| labels[i].is_none()).collect();
                    if let Some(&i) = unassigned.get(rng.gen_range(0..unassigned.len().max(1))) {
                        let dst = rng.gen_range(0..k);
                        let v = arena.view(i);
                        apply_tracked_insert(&mut stats, dst, &v, &mut totals, &mut versions);
                        cache.invalidate(i);
                        labels[i] = Some(dst);
                    }
                }
                1 => {
                    // Tracked removal — allowed to empty a cluster.
                    let assigned: Vec<usize> =
                        (0..total).filter(|&i| labels[i].is_some()).collect();
                    if assigned.len() > k {
                        let i = assigned[rng.gen_range(0..assigned.len())];
                        let src = labels[i].take().expect("assigned");
                        let v = arena.view(i);
                        apply_tracked_remove(&mut stats, src, &v, &mut totals, &mut versions);
                        cache.invalidate(i);
                    }
                }
                _ => {
                    let i = rng.gen_range(0..total);
                    if let Some(src) = labels[i] {
                        if stats[src].size() > 1 {
                            let mut dst = rng.gen_range(0..k);
                            if dst == src {
                                dst = (dst + 1) % k;
                            }
                            let v = arena.view(i);
                            apply_tracked_relocation(
                                &mut stats, src, dst, &v, &mut totals, &mut versions,
                            );
                            cache.invalidate(i);
                            labels[i] = Some(dst);
                        }
                    }
                }
            }

            // Validate every assigned object's decision against ground
            // truth.
            let scale = fp_scale(&stats);
            #[allow(clippy::needless_range_loop)]
            for j in 0..total {
                let Some(src) = labels[j] else { continue };
                if stats[src].size() <= 1 {
                    continue;
                }
                let v = arena.view(j);
                let decision =
                    cache
                        .view()
                        .decide(j, 0, 0, &stats, totals, &versions, src, &v, TOLERANCE, scale);
                let truth = shadow_scan(&stats, &arena, j, src);
                match decision {
                    PruneDecision::FullScan => {}
                    PruneDecision::Skip => {
                        let (_, best, _) = truth.expect("k >= 2 yields candidates");
                        prop_assert!(
                            best >= -TOLERANCE,
                            "unsound skip: shadow best {best} would relocate \
                             (object {j}, seed {seed})"
                        );
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        let (true_dst, best, second) = truth.expect("candidates exist");
                        prop_assert_eq!(
                            dst, true_dst,
                            "unsound argmin confirmation (object {}, seed {})", j, seed
                        );
                        prop_assert!(
                            best < second || second == f64::INFINITY,
                            "confirmed argmin is not strictly winning"
                        );
                    }
                }
            }
        }
    }
}
