//! Backpressure contract of the serving front door: a saturated ingest
//! queue is a *checked*, in-band condition — [`ServingError::QueueFull`] —
//! never an indefinite block and never a silent drop. Shedding is loss-free
//! for everything already admitted: draining the queue and resubmitting the
//! shed arrival leaves the engine byte-identical to a run that was never
//! saturated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc::core::incremental::StreamBackend;
use ucpc::core::serving::{ServingConfig, ServingError, ServingResponse, ServingUcpc};
use ucpc::uncertain::{Moments, UncertainObject, UnivariatePdf};

const M: usize = 4;
const K: usize = 2;

fn arrival(rng: &mut StdRng) -> Moments {
    let o = UncertainObject::new(
        (0..M)
            .map(|_| UnivariatePdf::normal(rng.gen_range(-5.0..5.0), rng.gen_range(0.1..0.5)))
            .collect(),
    );
    o.moments().clone()
}

fn config(batch: usize, queue_capacity: usize) -> ServingConfig {
    ServingConfig {
        batch,
        queue_capacity,
        deadline: None,
        stabilize_every: 0,
        stabilize_passes: 2,
        top_k: 2,
        // WAL fields from the environment: the CI `wal` leg reruns this
        // suite with `UCPC_WAL=on` to prove logging changes no behaviour.
        ..ServingConfig::default()
    }
}

fn serving(batch: usize, queue_capacity: usize) -> ServingUcpc {
    ServingUcpc::with_backend(M, K, StreamBackend::Slab, config(batch, queue_capacity)).unwrap()
}

#[test]
fn saturation_is_a_checked_error_that_drops_nothing() {
    let mut rng = StdRng::seed_from_u64(7);
    let arrivals: Vec<Moments> = (0..5).map(|_| arrival(&mut rng)).collect();

    // Flushes are poll/flush-driven, and this test never polls — so the
    // 4-slot queue saturates on the 5th submission.
    let mut s = serving(4, 4);
    for mo in &arrivals[..4] {
        s.submit_commit(mo).expect("queue has room");
    }
    assert_eq!(s.pending_len(), 4);

    // Every admission path reports saturation as the same checked error —
    // returning immediately (never blocking) with the queue intact.
    let full = ServingError::QueueFull { capacity: 4 };
    assert_eq!(s.submit_commit(&arrivals[4]), Err(full.clone()));
    assert_eq!(s.submit_query(&arrivals[4]), Err(full.clone()));
    assert_eq!(s.submit_stabilize(1), Err(full.clone()));
    assert_eq!(
        s.pending_len(),
        4,
        "a rejected submission must not shed admitted work"
    );

    // Drain: exactly the four admitted arrivals come back, in order.
    assert_eq!(s.flush(), 4);
    let mut committed = 0;
    while let Some((_, resp)) = s.pop_response() {
        assert!(matches!(resp, ServingResponse::Committed { .. }));
        committed += 1;
    }
    assert_eq!(committed, 4, "admitted requests answered exactly once");

    // The freed queue admits the shed arrival.
    s.submit_commit(&arrivals[4])
        .expect("drained queue has room again");
    assert_eq!(s.flush(), 1);
}

#[test]
fn drained_after_shed_state_matches_a_never_saturated_run() {
    let mut rng = StdRng::seed_from_u64(11);
    let arrivals: Vec<Moments> = (0..12).map(|_| arrival(&mut rng)).collect();

    // Saturating run: 4-slot queue, clients retry shed arrivals after a
    // drain, preserving arrival order.
    let mut shed = serving(4, 4);
    let mut shed_full = 0;
    for mo in &arrivals {
        loop {
            match shed.submit_commit(mo) {
                Ok(_) => break,
                Err(ServingError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 4);
                    shed_full += 1;
                    shed.flush();
                }
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
    }
    shed.flush();
    assert!(shed_full > 0, "the 4-slot queue must have saturated");

    // Reference run: queue wide enough that saturation never happens.
    let mut wide = serving(4, 64);
    for mo in &arrivals {
        wide.submit_commit(mo).expect("wide queue never saturates");
    }
    wide.flush();

    // Both runs answered every arrival once and agree byte-for-byte.
    let drain = |s: &mut ServingUcpc| {
        let mut handles = Vec::new();
        while let Some((_, resp)) = s.pop_response() {
            match resp {
                ServingResponse::Committed { handle, .. } => handles.push(handle),
                other => panic!("unexpected response: {other:?}"),
            }
        }
        handles
    };
    assert_eq!(
        drain(&mut shed),
        drain(&mut wide),
        "handle sequences diverged"
    );
    assert_eq!(shed.engine().live_labels(), wide.engine().live_labels());
    assert_eq!(shed.engine().cluster_stats(), wide.engine().cluster_stats());
    assert_eq!(
        shed.engine().objective().to_bits(),
        wide.engine().objective().to_bits()
    );
}

#[test]
fn dimension_mismatch_does_not_consume_a_queue_slot() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut s = serving(8, 8);
    let bad = UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0); M + 1]);
    assert_eq!(
        s.submit_commit(bad.moments()),
        Err(ServingError::DimensionMismatch {
            expected: M,
            found: M + 1
        })
    );
    assert_eq!(s.pending_len(), 0);
    // The staging row pool is intact: a full capacity's worth of good
    // arrivals still admits.
    for _ in 0..8 {
        let mo = arrival(&mut rng);
        s.submit_commit(&mo)
            .expect("rejected arrival must not leak a staging row");
    }
    assert_eq!(s.pending_len(), 8);
}
