//! Property-based tests of the evaluation criteria and partition utilities:
//! invariances that must hold for *any* clustering, not just the ones the
//! algorithms produce.

use proptest::prelude::*;
use ucpc::core::framework::Clustering;
use ucpc::eval::{
    adjusted_rand_index, dunn_index, f_measure, normalized_mutual_information, purity, quality,
    silhouette,
};
use ucpc::uncertain::{UncertainObject, UnivariatePdf};

/// Strategy: a labelling of `n` objects into at most `k` clusters.
fn labelling(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n..=n)
}

/// Strategy: a small uncertain dataset.
fn dataset(n: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-20.0..20.0f64, 0.05..2.0f64), n..=n).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(mean, sd)| UncertainObject::new(vec![UnivariatePdf::normal(mean, sd)]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// External metrics are invariant under cluster relabelling.
    #[test]
    fn external_metrics_relabel_invariant(
        labels in labelling(12, 4),
        reference in labelling(12, 3),
    ) {
        let c = Clustering::new(labels.clone(), 4);
        // Relabel via the permutation (0,1,2,3) -> (3,2,1,0).
        let permuted = Clustering::new(labels.iter().map(|&l| 3 - l).collect(), 4);
        prop_assert!((f_measure(&c, &reference) - f_measure(&permuted, &reference)).abs() < 1e-12);
        prop_assert!((purity(&c, &reference) - purity(&permuted, &reference)).abs() < 1e-12);
        prop_assert!(
            (adjusted_rand_index(&c, &reference)
                - adjusted_rand_index(&permuted, &reference)).abs() < 1e-12
        );
        prop_assert!(
            (normalized_mutual_information(&c, &reference)
                - normalized_mutual_information(&permuted, &reference)).abs() < 1e-12
        );
    }

    /// Every external metric is maximal when the clustering equals the
    /// reference (up to relabelling).
    #[test]
    fn self_comparison_is_maximal(reference in labelling(10, 3)) {
        let k = reference.iter().copied().max().unwrap_or(0) + 1;
        let c = Clustering::new(reference.clone(), k);
        prop_assert!((f_measure(&c, &reference) - 1.0).abs() < 1e-12);
        prop_assert!((purity(&c, &reference) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&c, &reference) - 1.0).abs() < 1e-12);
    }

    /// All metrics stay in their documented ranges for arbitrary partitions.
    #[test]
    fn metric_ranges(
        data in dataset(10),
        labels in labelling(10, 3),
        reference in labelling(10, 4),
    ) {
        let c = Clustering::new(labels, 3);
        let f = f_measure(&c, &reference);
        prop_assert!((0.0..=1.0).contains(&f));
        let p = purity(&c, &reference);
        prop_assert!((0.0..=1.0).contains(&p));
        let nmi = normalized_mutual_information(&c, &reference);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let ari = adjusted_rand_index(&c, &reference);
        prop_assert!((-1.0..=1.0).contains(&ari));
        let q = quality(&data, &c);
        prop_assert!((0.0..=1.0).contains(&q.intra));
        prop_assert!((0.0..=1.0).contains(&q.inter));
        prop_assert!((-1.0..=1.0).contains(&q.q));
        let s = silhouette(&data, &c);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
        let d = dunn_index(&data, &c);
        prop_assert!(d >= 0.0);
    }

    /// `Clustering::compact` preserves co-membership exactly.
    #[test]
    fn compact_preserves_comembership(labels in labelling(14, 6)) {
        let c = Clustering::new(labels, 6);
        let compacted = c.compact();
        prop_assert!(compacted.non_empty() == compacted.k());
        for i in 0..c.len() {
            for j in 0..c.len() {
                prop_assert_eq!(
                    c.label(i) == c.label(j),
                    compacted.label(i) == compacted.label(j),
                    "co-membership changed for ({}, {})", i, j
                );
            }
        }
    }

    /// Purity never decreases when a cluster is split (splitting can only
    /// sharpen majorities).
    #[test]
    fn purity_monotone_under_split(reference in labelling(12, 3)) {
        let coarse = Clustering::single(12);
        // Split into two halves.
        let fine = Clustering::new(
            (0..12).map(|i| usize::from(i >= 6)).collect(),
            2,
        );
        prop_assert!(purity(&fine, &reference) >= purity(&coarse, &reference) - 1e-12);
    }
}
