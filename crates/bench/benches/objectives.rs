//! Criterion benchmarks of the closed-form objective machinery: Theorem 3's
//! O(|C| m) evaluation, Corollary 1's O(m) incremental updates, and the
//! Proposition 2/3 identities (J_MM, Ĵ) — the formal backbone of the paper.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc_core::objective::ClusterStats;
use ucpc_core::ucentroid::UCentroid;
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

fn cluster(n: usize, m: usize, seed: u64) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        UnivariatePdf::normal(rng.gen_range(-5.0..5.0), rng.gen_range(0.1..2.0))
                    })
                    .collect(),
            )
        })
        .collect()
}

fn bench_theorem3_vs_bruteforce(c: &mut Criterion) {
    let objs = cluster(256, 16, 1);
    let refs: Vec<&UncertainObject> = objs.iter().collect();
    let stats = ClusterStats::from_members(objs.iter());

    let mut group = c.benchmark_group("objective_j");
    group.bench_function("theorem3_closed_form", |b| b.iter(|| black_box(stats.j())));
    group.bench_function("bruteforce_via_ucentroid", |b| {
        b.iter(|| {
            let c = UCentroid::from_cluster(&refs);
            let j: f64 = objs
                .iter()
                .map(|o| {
                    ucpc_uncertain::distance::expected_sq_distance_from_moments(
                        o.mu(),
                        o.mu2(),
                        c.mu(),
                        c.mu2(),
                    )
                })
                .sum();
            black_box(j)
        })
    });
    group.finish();
}

fn bench_corollary1_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("corollary1_incremental");
    for m in [4usize, 16, 64] {
        let objs = cluster(128, m, 2);
        let stats = ClusterStats::from_members(objs[..127].iter());
        let extra = objs[127].moments();
        group.bench_with_input(BenchmarkId::new("j_after_add", m), &m, |b, _| {
            b.iter(|| black_box(stats.j_after_add(extra)))
        });
        group.bench_with_input(BenchmarkId::new("rebuild_from_scratch", m), &m, |b, _| {
            b.iter(|| black_box(ClusterStats::from_members(objs.iter()).j()))
        });
    }
    group.finish();
}

fn bench_proposition_identities(c: &mut Criterion) {
    let objs = cluster(512, 8, 3);
    let stats = ClusterStats::from_members(objs.iter());
    let mut group = c.benchmark_group("proposition_identities");
    group.bench_function("j_uk", |b| b.iter(|| black_box(stats.j_uk())));
    group.bench_function("j_mm", |b| b.iter(|| black_box(stats.j_mm())));
    group.bench_function("j_hat", |b| b.iter(|| black_box(stats.j_hat())));
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem3_vs_bruteforce,
    bench_corollary1_updates,
    bench_proposition_identities
);
criterion_main!(benches);
