//! Criterion micro-benchmark of the UCPC relocation pass: the naive
//! three-sweep Corollary-1 evaluation vs the flat-arena scalar-aggregate
//! delta-`J` kernel, over an n × m × k grid that includes the acceptance
//! point (n=10000, m=32, k=20). Run `cargo bench --bench relocation_kernel`;
//! the `bench_relocation` binary emits the same measurements as
//! `BENCH_relocation.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ucpc_bench::relocation::{kernel_pass, naive_pass, workload, GRID};

fn bench_relocation_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("relocation_pass");
    group.sample_size(11);
    for shape in GRID {
        let w = workload(shape, 7);
        let label = format!("n{}_m{}_k{}", shape.n, shape.m, shape.k);
        group.bench_with_input(BenchmarkId::new("naive", &label), &w, |b, w| {
            b.iter(|| black_box(naive_pass(w)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", &label), &w, |b, w| {
            b.iter(|| black_box(kernel_pass(w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relocation_pass);
criterion_main!(benches);
