//! Criterion micro-benchmark of the UCPC relocation pass: the naive
//! three-sweep Corollary-1 evaluation vs the flat-arena scalar-aggregate
//! delta-`J` kernel, plus the kernel under the forced `scalar` backend vs
//! the machine's detected SIMD backend, over an n × m × k grid that
//! includes the acceptance point (n=10000, m=32, k=20). Run
//! `cargo bench --bench relocation_kernel`; the `bench_relocation` binary
//! emits the same measurements as `BENCH_relocation.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ucpc_bench::relocation::{kernel_pass, naive_pass, workload, Shape, GRID};
use ucpc_bench::streaming::{churn_once, streaming_workload, ChurnSpec};
use ucpc_core::incremental::StreamBackend;
use ucpc_core::pruning::PruningConfig;
use ucpc_uncertain::simd::{active_backend, force_backend, Backend};

fn bench_relocation_pass(c: &mut Criterion) {
    let restore = active_backend();
    let detected = Backend::detect();
    let mut group = c.benchmark_group("relocation_pass");
    group.sample_size(11);
    for shape in GRID {
        let w = workload(shape, 7);
        let label = format!("n{}_m{}_k{}", shape.n, shape.m, shape.k);
        group.bench_with_input(BenchmarkId::new("naive", &label), &w, |b, w| {
            b.iter(|| black_box(naive_pass(w)))
        });
        // The kernel under the scalar fallback and under the detected SIMD
        // backend; results are bit-identical, only the timing differs.
        force_backend(Backend::Scalar).expect("scalar backend always available");
        group.bench_with_input(BenchmarkId::new("kernel_scalar", &label), &w, |b, w| {
            b.iter(|| black_box(kernel_pass(w)))
        });
        // Only register the SIMD row when there is a distinct SIMD backend;
        // otherwise the ID would duplicate "kernel_scalar".
        if detected != Backend::Scalar {
            force_backend(detected).expect("detected backend must be available");
            group.bench_with_input(
                BenchmarkId::new(format!("kernel_{}", detected.name()), &label),
                &w,
                |b, w| b.iter(|| black_box(kernel_pass(w))),
            );
        }
    }
    group.finish();
    // Back to the env-resolved backend so later benches honour UCPC_SIMD.
    force_backend(restore).expect("previously active backend must be available");
}

fn bench_streaming_churn(c: &mut Criterion) {
    // The IncrementalUcpc churn loop (remove/insert/stabilize) on both
    // storage backends, pruning on — the configuration where the slab's
    // surgical invalidation separates from the reference path's global
    // epoch bumps. Small shape: criterion re-runs the whole cycle many
    // times.
    let shape = Shape {
        n: 2_000,
        m: 16,
        k: 5,
    };
    let spec = ChurnSpec {
        ops: 100,
        stabilize_every: 20,
        passes: 2,
    };
    let w = streaming_workload(shape, spec, 7);
    let mut group = c.benchmark_group("streaming_churn");
    group.sample_size(10);
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        group.bench_function(BenchmarkId::new(backend.name(), "n2000_m16_k5"), |b| {
            b.iter(|| black_box(churn_once(&w, backend, PruningConfig::Bounds).objective))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relocation_pass, bench_streaming_churn);
criterion_main!(benches);
