//! Criterion benchmarks of the expected-distance calculus: Eq. (8)'s closed
//! form vs sample approximation (the basic-UK-means bottleneck the paper
//! describes), and Lemma 3's pairwise closed form.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ucpc_uncertain::distance::{
    expected_distance_sampled, expected_sq_distance, expected_sq_distance_to_point, Metric,
};
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

fn object(m: usize, seed: u64) -> UncertainObject {
    let mut rng = StdRng::seed_from_u64(seed);
    UncertainObject::new(
        (0..m)
            .map(|_| UnivariatePdf::normal(rng.gen_range(-5.0..5.0), rng.gen_range(0.1..1.0)))
            .collect(),
    )
}

fn bench_eq8_closed_vs_sampled(c: &mut Criterion) {
    let m = 16;
    let o = object(m, 1);
    let y: Vec<f64> = vec![0.5; m];
    let mut rng = StdRng::seed_from_u64(2);

    let mut group = c.benchmark_group("expected_distance_to_point");
    group.bench_function("eq8_closed_form", |b| {
        b.iter(|| black_box(expected_sq_distance_to_point(&o, &y)))
    });
    for s in [16usize, 64, 256] {
        let samples = o.sample_n(&mut rng, s);
        group.bench_with_input(BenchmarkId::new("sampled", s), &samples, |b, samples| {
            b.iter(|| {
                black_box(expected_distance_sampled(
                    samples,
                    &y,
                    Metric::SquaredEuclidean,
                ))
            })
        });
    }
    group.finish();
}

fn bench_lemma3_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_expected_distance");
    for m in [4usize, 16, 64] {
        let a = object(m, 3);
        let b_obj = object(m, 4);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bch, _| {
            bch.iter(|| black_box(expected_sq_distance(&a, &b_obj)))
        });
    }
    group.finish();
}

fn bench_sampling_throughput(c: &mut Criterion) {
    let o = object(16, 5);
    let mut group = c.benchmark_group("sampling");
    group.bench_function("inverse_cdf_draw_16d", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(o.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eq8_closed_vs_sampled,
    bench_lemma3_pairwise,
    bench_sampling_throughput
);
criterion_main!(benches);
