//! Criterion micro-benchmarks of the clustering algorithms themselves: the
//! per-run cost backing Figure 4's panels, on a fixed synthetic workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_bench::harness::{run_timed, Algo, RunConfig};
use ucpc_datasets::benchmark::{generate_fraction, DatasetSpec};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc_uncertain::UncertainObject;

fn workload(n: usize, m: usize, classes: usize, seed: u64) -> Vec<UncertainObject> {
    let spec = DatasetSpec {
        name: "bench",
        objects: n,
        attributes: m,
        classes,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let d = generate_fraction(spec, 1.0, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng).uncertain_objects()
}

fn bench_fast_algorithms(c: &mut Criterion) {
    let data = workload(500, 8, 5, 1);
    let cfg = RunConfig {
        max_iters: 30,
        samples_per_object: 16,
    };
    let mut group = c.benchmark_group("fast_algorithms_n500");
    for algo in [
        Algo::Ucpc,
        Algo::Ukm,
        Algo::Mmv,
        Algo::MinMaxBb,
        Algo::VdBiP,
    ] {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| run_timed(algo, &data, 5, 7, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_slow_algorithms(c: &mut Criterion) {
    // Smaller n: these are the O(n^2)+ baselines of Figure 4's left panels.
    let data = workload(150, 8, 5, 2);
    let cfg = RunConfig {
        max_iters: 30,
        samples_per_object: 16,
    };
    let mut group = c.benchmark_group("slow_algorithms_n150");
    group.sample_size(10);
    for algo in [
        Algo::Ucpc,
        Algo::BUkm,
        Algo::UkMed,
        Algo::Uahc,
        Algo::Fdb,
        Algo::Fopt,
    ] {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| run_timed(algo, &data, 5, 7, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_ucpc_scaling(c: &mut Criterion) {
    // Linearity in n (Proposition 5): time n and 2n workloads.
    let cfg = RunConfig {
        max_iters: 30,
        samples_per_object: 16,
    };
    let mut group = c.benchmark_group("ucpc_scaling");
    for n in [250usize, 500, 1000, 2000] {
        let data = workload(n, 8, 5, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| run_timed(Algo::Ucpc, data, 5, 7, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fast_algorithms,
    bench_slow_algorithms,
    bench_ucpc_scaling
);
criterion_main!(benches);
