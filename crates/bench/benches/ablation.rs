//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * UCPC's J objective vs the pure U-centroid-variance criterion of
//!   Section 4.2.1 (which Theorem 2 reduces to member-variance averaging) on
//!   the Figure-1/Figure-2 archetype workloads — measuring both cost and,
//!   via the harness, which criterion ranks the archetypes correctly;
//! * initializer choice (random partition vs k-means++) for UCPC;
//! * immediate vs capped relocation passes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_core::objective::ClusterStats;
use ucpc_core::{Initializer, Ucpc};
use ucpc_datasets::benchmark::{generate_fraction, DatasetSpec};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

/// Figure-2 archetype: close-together high-variance vs far-apart low-variance.
fn figure2_archetypes() -> (Vec<UncertainObject>, Vec<UncertainObject>) {
    let far: Vec<UncertainObject> = [-10.0, 0.0, 10.0]
        .iter()
        .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
        .collect();
    let close: Vec<UncertainObject> = [-0.5, 0.0, 0.5]
        .iter()
        .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 1.0)]))
        .collect();
    (far, close)
}

fn bench_compactness_criteria(c: &mut Criterion) {
    let (far, close) = figure2_archetypes();
    let s_far = ClusterStats::from_members(far.iter());
    let s_close = ClusterStats::from_members(close.iter());

    let mut group = c.benchmark_group("compactness_criteria");
    group.bench_function("j_theorem3", |b| {
        b.iter(|| black_box((s_far.j(), s_close.j())))
    });
    group.bench_function("ucentroid_variance_theorem2", |b| {
        b.iter(|| black_box((s_far.ucentroid_variance(), s_close.ucentroid_variance())))
    });
    group.finish();

    // Sanity printed once per bench run: J ranks the archetypes correctly,
    // the pure-variance criterion does not (Figure 2's point).
    assert!(s_close.j() < s_far.j());
    assert!(s_close.ucentroid_variance() > s_far.ucentroid_variance());
}

fn workload(seed: u64) -> Vec<UncertainObject> {
    let spec = DatasetSpec {
        name: "abl",
        objects: 400,
        attributes: 6,
        classes: 4,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let d = generate_fraction(spec, 1.0, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng).uncertain_objects()
}

fn bench_initializers(c: &mut Criterion) {
    let data = workload(4);
    let mut group = c.benchmark_group("ucpc_initializer");
    for (name, init) in [
        ("random_partition", Initializer::RandomPartition),
        ("random_centroids", Initializer::RandomCentroids),
        ("kmeans_plus_plus", Initializer::KMeansPlusPlus),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let alg = Ucpc {
                    init,
                    ..Ucpc::default()
                };
                black_box(alg.run(&data, 4, &mut rng).unwrap().objective)
            })
        });
    }
    group.finish();
}

fn bench_iteration_caps(c: &mut Criterion) {
    let data = workload(5);
    let mut group = c.benchmark_group("ucpc_iteration_cap");
    for cap in [1usize, 3, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let alg = Ucpc {
                    max_iters: cap,
                    ..Ucpc::default()
                };
                black_box(alg.run(&data, 4, &mut rng).unwrap().objective)
            })
        });
    }
    group.finish();
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    use ucpc_core::parallel::ParallelUcpc;
    let data = workload(6);
    let mut group = c.benchmark_group("ucpc_sequential_vs_parallel");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(Ucpc::default().run(&data, 4, &mut rng).unwrap().objective)
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(9);
                    let alg = ParallelUcpc {
                        threads,
                        ..Default::default()
                    };
                    black_box(alg.run(&data, 4, &mut rng).unwrap().objective)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compactness_criteria,
    bench_initializers,
    bench_iteration_caps,
    bench_sequential_vs_parallel
);
criterion_main!(benches);
