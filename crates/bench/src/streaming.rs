//! Shared streaming-churn workload: `IncrementalUcpc` under interleaved
//! insert/remove/stabilize traffic, measured across the two storage
//! backends (the seed `Vec<Option<Moments>>` reference vs the slab arena)
//! and both pruning configurations.
//!
//! The churn loop models the moving-objects deployment: a settled live
//! partition, a stream of departures and arrivals (each arrival placed by
//! the O(k·m) Corollary-1 scan, each departure an O(m) retraction), and a
//! periodic stabilization sweep. On the reference backend every edit bumps
//! the global cache epoch, so each sweep re-scans the whole window; on the
//! slab backend edits are drift-tracked and the sweep keeps its cached
//! bounds (surgical invalidation — see `ucpc_core::pruning`), on top of the
//! slab's contiguous rows and allocation-free slot reuse. Labels are
//! asserted byte-identical across every configuration on every repetition,
//! so the comparison doubles as an end-to-end exactness check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ucpc_core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc_core::pruning::{PruneCounters, PruningConfig};
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

use crate::relocation::Shape;

/// Churn-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSpec {
    /// Remove-then-insert pairs in the measured window.
    pub ops: usize,
    /// A stabilization sweep runs every `stabilize_every` churn pairs.
    pub stabilize_every: usize,
    /// Relocation passes per stabilization sweep.
    pub passes: usize,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        Self {
            ops: 1_000,
            stabilize_every: 25,
            passes: 2,
        }
    }
}

/// A ready-to-churn streaming workload: the initial window, the arrival
/// stream, and the grid shape it models.
pub struct StreamingWorkload {
    /// Objects inserted before the measured window (the settled partition).
    pub initial: Vec<UncertainObject>,
    /// Arrivals consumed by the churn loop, in order.
    pub replacements: Vec<UncertainObject>,
    /// The modeled shape (`n` = window size, `m`, `k`).
    pub shape: Shape,
    /// The churn-loop parameters.
    pub spec: ChurnSpec,
}

/// Builds a seeded clustered (Gaussian-blob) streaming workload: arrivals
/// are drawn from the same blob geometry as the initial window, so the
/// stream keeps the partition clusterable — the regime where stabilization
/// sweeps converge fast and cached bounds have margins worth keeping.
pub fn streaming_workload(shape: Shape, spec: ChurnSpec, seed: u64) -> StreamingWorkload {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let draw = |i: usize, rng: &mut StdRng| {
        let c = &centers[i % k];
        UncertainObject::new(
            (0..m)
                .map(|j| {
                    UnivariatePdf::normal(c[j] + rng.gen_range(-1.5..1.5), rng.gen_range(0.1..0.6))
                })
                .collect(),
        )
    };
    let initial: Vec<UncertainObject> = (0..n).map(|i| draw(i, &mut rng)).collect();
    let replacements: Vec<UncertainObject> = (0..spec.ops).map(|i| draw(i, &mut rng)).collect();
    StreamingWorkload {
        initial,
        replacements,
        shape,
        spec,
    }
}

/// Outcome of one churn run: the final partition fingerprint plus the
/// pruning counters accumulated inside the measured window.
pub struct ChurnOutcome {
    /// Live labels after the final sweep, in insertion order.
    pub labels: Vec<(ObjectHandle, usize)>,
    /// Final objective.
    pub objective: f64,
    /// Pruning counters accumulated by the churn window's sweeps.
    pub counters: PruneCounters,
}

/// Runs one full churn cycle (setup + measured window) on the given
/// backend/pruning configuration; returns the outcome. The setup phase —
/// initial insertion and a settling stabilization — is identical across
/// configurations, so outcomes are directly comparable.
pub fn churn_once(
    w: &StreamingWorkload,
    backend: StreamBackend,
    pruning: PruningConfig,
) -> ChurnOutcome {
    let mut live = IncrementalUcpc::with_backend(w.shape.m, w.shape.k, backend)
        .expect("valid streaming configuration");
    live.set_pruning(pruning);
    let mut ids: Vec<ObjectHandle> = w
        .initial
        .iter()
        .map(|o| live.insert(o).expect("insert"))
        .collect();
    live.stabilize(5);

    let before = live.pruning_counters();
    for (op, arrival) in w.replacements.iter().enumerate() {
        // FIFO eviction: the op-th oldest handle departs, its replacement
        // arrives (recycling the victim's slot under a fresh generation).
        let victim = ids[op];
        live.remove(victim).expect("victim handle must be live");
        ids.push(live.insert(arrival).expect("insert"));
        if (op + 1) % w.spec.stabilize_every == 0 {
            live.stabilize(w.spec.passes);
        }
    }
    live.stabilize(w.spec.passes);

    let after = live.pruning_counters();
    ChurnOutcome {
        labels: live.live_labels(),
        objective: live.objective(),
        counters: PruneCounters {
            skips: after.skips - before.skips,
            confirms: after.confirms - before.confirms,
            full_scans: after.full_scans - before.full_scans,
            placement_priced: after.placement_priced - before.placement_priced,
            placement_bypassed: after.placement_bypassed - before.placement_bypassed,
        },
    }
}

/// One row of the streaming comparison grid.
#[derive(Debug, Clone)]
pub struct StreamingRow {
    /// The shape measured.
    pub shape: Shape,
    /// Storage backend name (`"objects"` or `"slab"`).
    pub backend: &'static str,
    /// Pruning configuration name (`"off"` or `"bounds"`).
    pub pruning: &'static str,
    /// Median wall time of the measured churn window.
    pub churn_ns: u128,
    /// Pruning counters accumulated inside the window (zero when off).
    pub counters: PruneCounters,
}

/// Runs the churn cycle for every backend × pruning configuration, `reps`
/// repetitions each, reporting median wall times of the measured window.
/// Asserts — on every repetition — that all configurations produce
/// byte-identical live labels and bit-identical objectives: the benchmark
/// doubles as an end-to-end streaming exactness check.
pub fn streaming_comparison(
    shape: Shape,
    spec: ChurnSpec,
    seed: u64,
    reps: usize,
) -> Vec<StreamingRow> {
    let w = streaming_workload(shape, spec, seed);
    let mut reference: Option<(Vec<(ObjectHandle, usize)>, u64)> = None;
    let mut rows = Vec::new();
    for backend in [StreamBackend::Objects, StreamBackend::Slab] {
        for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
            let mut ns = Vec::with_capacity(reps);
            let mut last = None;
            for _ in 0..reps {
                let t = Instant::now();
                let outcome = churn_once(&w, backend, pruning);
                ns.push(t.elapsed().as_nanos());
                match &reference {
                    Some((labels, obj_bits)) => {
                        assert_eq!(
                            labels,
                            &outcome.labels,
                            "streaming labels diverged: {} / {:?}",
                            backend.name(),
                            pruning
                        );
                        assert_eq!(
                            *obj_bits,
                            outcome.objective.to_bits(),
                            "streaming objective bits diverged: {} / {:?}",
                            backend.name(),
                            pruning
                        );
                    }
                    None => reference = Some((outcome.labels.clone(), outcome.objective.to_bits())),
                }
                last = Some(outcome);
            }
            ns.sort_unstable();
            rows.push(StreamingRow {
                shape,
                backend: backend.name(),
                pruning: if pruning.is_enabled() {
                    "bounds"
                } else {
                    "off"
                },
                churn_ns: ns[ns.len() / 2],
                counters: last.expect("reps >= 1").counters,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_comparison_is_exact_across_configurations() {
        let shape = Shape { n: 300, m: 8, k: 4 };
        let spec = ChurnSpec {
            ops: 60,
            stabilize_every: 10,
            passes: 2,
        };
        // Label identity across backends × pruning asserted inside.
        let rows = streaming_comparison(shape, spec, 11, 2);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.churn_ns > 0));
        // Pruned-off rows never touch the counters.
        assert!(rows
            .iter()
            .filter(|r| r.pruning == "off")
            .all(|r| r.counters.decisions() == 0));
    }

    #[test]
    fn surgical_invalidation_beats_epoch_bumps_on_hit_rate() {
        let shape = Shape {
            n: 400,
            m: 16,
            k: 5,
        };
        let spec = ChurnSpec {
            ops: 80,
            stabilize_every: 10,
            passes: 2,
        };
        let rows = streaming_comparison(shape, spec, 23, 1);
        let rate = |backend: &str| {
            rows.iter()
                .find(|r| r.backend == backend && r.pruning == "bounds")
                .expect("row present")
                .counters
                .skip_rate()
        };
        assert!(
            rate("slab") > rate("objects"),
            "slab skip-rate {} must beat objects {}",
            rate("slab"),
            rate("objects")
        );
    }
}
