//! Uniform driver for every algorithm in the paper's evaluation.
//!
//! Times follow the paper's measurement protocol: only the *clustering*
//! (online) phase is timed — sample-cache construction for the sample-based
//! algorithms, the pairwise expected-distance matrix of UK-medoids, and all
//! pruning bookkeeping setup are excluded, exactly as Section 5.2.2 excludes
//! pruning times and offline distance pre-computation. UCPC requires no
//! offline phase at all.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use ucpc_baselines::ukmedoids::PairwiseEd;
use ucpc_baselines::{
    BasicUkMeans, FdbScan, Foptics, MmVar, PruningUkMeans, Uahc, UkMeans, UkMedoids,
};
use ucpc_core::framework::{ClusterError, Clustering};
use ucpc_core::Ucpc;
use ucpc_uncertain::sampling::SampleCache;
use ucpc_uncertain::UncertainObject;

/// Every algorithm of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// FDBSCAN (density-based) — "FDB".
    Fdb,
    /// FOPTICS (hierarchical density-based) — "FOPT".
    Fopt,
    /// U-AHC (agglomerative hierarchical) — "UAHC".
    Uahc,
    /// UK-medoids — "UKmed".
    UkMed,
    /// Fast UK-means — "UKM".
    Ukm,
    /// MMVar — "MMV".
    Mmv,
    /// The paper's contribution — "UCPC".
    Ucpc,
    /// Basic (sample-based) UK-means — "bUKM".
    BUkm,
    /// MinMax-BB pruning (+ cluster-shift) — "MinMax-BB".
    MinMaxBb,
    /// VDBiP pruning (+ cluster-shift) — "VDBiP".
    VdBiP,
}

impl Algo {
    /// The seven accuracy-evaluation algorithms, in the paper's table column
    /// order (FDB, FOPT, UAHC, UKmed, UKM, MMV, UCPC).
    pub const ACCURACY: [Algo; 7] = [
        Algo::Fdb,
        Algo::Fopt,
        Algo::Uahc,
        Algo::UkMed,
        Algo::Ukm,
        Algo::Mmv,
        Algo::Ucpc,
    ];

    /// Figure 4's "slower" panel (plus UCPC for reference).
    pub const SLOW_PANEL: [Algo; 5] = [Algo::BUkm, Algo::UkMed, Algo::Uahc, Algo::Fdb, Algo::Fopt];

    /// Figure 4's "faster" panel (plus UCPC for reference).
    pub const FAST_PANEL: [Algo; 4] = [Algo::Ukm, Algo::Mmv, Algo::MinMaxBb, Algo::VdBiP];

    /// Figure 5's scalability contenders.
    pub const SCALABILITY: [Algo; 5] = [
        Algo::Ucpc,
        Algo::Ukm,
        Algo::Mmv,
        Algo::MinMaxBb,
        Algo::VdBiP,
    ];

    /// Table/figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Fdb => "FDB",
            Algo::Fopt => "FOPT",
            Algo::Uahc => "UAHC",
            Algo::UkMed => "UKmed",
            Algo::Ukm => "UKM",
            Algo::Mmv => "MMV",
            Algo::Ucpc => "UCPC",
            Algo::BUkm => "bUKM",
            Algo::MinMaxBb => "MinMax-BB",
            Algo::VdBiP => "VDBiP",
        }
    }
}

/// A clustering together with its online (clustering-phase) wall time.
#[derive(Debug, Clone)]
pub struct TimedClustering {
    /// The produced partition.
    pub clustering: Clustering,
    /// Online clustering time (offline precomputation excluded, per the
    /// paper's protocol).
    pub online: Duration,
}

/// Harness-wide knobs (iteration caps, sample counts) so that the figure
/// binaries can trade fidelity for turnaround.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Iteration cap for the iterative algorithms.
    pub max_iters: usize,
    /// Samples per object for the sample-based algorithms.
    pub samples_per_object: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            samples_per_object: 32,
        }
    }
}

/// Runs `algo` on `data` with `k` clusters under `seed`, timing only the
/// online phase.
pub fn run_timed(
    algo: Algo,
    data: &[UncertainObject],
    k: usize,
    seed: u64,
    cfg: &RunConfig,
) -> Result<TimedClustering, ClusterError> {
    let mut rng = StdRng::seed_from_u64(seed);
    match algo {
        Algo::Ucpc => {
            let alg = Ucpc {
                max_iters: cfg.max_iters,
                ..Ucpc::default()
            };
            let t = Instant::now();
            let r = alg.run(data, k, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::Ukm => {
            let alg = UkMeans {
                max_iters: cfg.max_iters,
                ..UkMeans::default()
            };
            let t = Instant::now();
            let r = alg.run(data, k, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::Mmv => {
            let alg = MmVar {
                max_iters: cfg.max_iters,
                ..MmVar::default()
            };
            let t = Instant::now();
            let r = alg.run(data, k, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::UkMed => {
            // Offline: pairwise ÊD matrix (untimed, as in the paper).
            let ed = PairwiseEd::compute(data);
            let alg = UkMedoids {
                max_iters: cfg.max_iters,
            };
            let t = Instant::now();
            let r = alg.run_with_matrix(data.len(), k, &ed, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::Uahc => {
            let alg = Uahc::default();
            let t = Instant::now();
            let r = alg.run(data, k)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::Fdb => {
            let alg = FdbScan {
                samples_per_object: cfg.samples_per_object,
                ..FdbScan::default()
            };
            let t = Instant::now();
            let r = alg.run(data, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::Fopt => {
            let alg = Foptics {
                samples_per_object: cfg.samples_per_object,
                ..Foptics::default()
            };
            let t = Instant::now();
            let r = alg.run(data, k, &mut rng)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::BUkm => {
            let m = ucpc_core::framework::validate_input(data, k)?;
            let alg = BasicUkMeans {
                max_iters: cfg.max_iters,
                samples_per_object: cfg.samples_per_object,
                ..BasicUkMeans::default()
            };
            // Offline: initial partition + sample cache (untimed).
            let labels = alg.init.initial_partition(data, k, &mut rng);
            let cache = SampleCache::build(data, cfg.samples_per_object, &mut rng);
            let t = Instant::now();
            let r = alg.run_from(data, k, m, labels, &cache)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
        Algo::MinMaxBb | Algo::VdBiP => {
            let m = ucpc_core::framework::validate_input(data, k)?;
            let base = if algo == Algo::MinMaxBb {
                PruningUkMeans::min_max_bb()
            } else {
                PruningUkMeans::vdbip()
            };
            let alg = PruningUkMeans {
                max_iters: cfg.max_iters,
                samples_per_object: cfg.samples_per_object,
                ..base
            };
            let labels = alg.init.initial_partition(data, k, &mut rng);
            let cache = SampleCache::build(data, cfg.samples_per_object, &mut rng);
            let t = Instant::now();
            let r = alg.run_from(data, k, m, labels, &cache)?;
            Ok(TimedClustering {
                clustering: r.clustering,
                online: t.elapsed(),
            })
        }
    }
}

/// Runs `algo` `runs` times with seeds `seed..seed+runs` and returns the mean
/// online time plus the last clustering (the accuracy harness aggregates
/// scores per run itself; this is for the timing figures).
pub fn run_averaged(
    algo: Algo,
    data: &[UncertainObject],
    k: usize,
    seed: u64,
    runs: usize,
    cfg: &RunConfig,
) -> Result<(Clustering, Duration), ClusterError> {
    assert!(runs > 0, "need at least one run");
    let mut total = Duration::ZERO;
    let mut last = None;
    for r in 0..runs {
        let out = run_timed(algo, data, k, seed + r as u64, cfg)?;
        total += out.online;
        last = Some(out.clustering);
    }
    Ok((last.expect("runs > 0"), total / runs as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn data() -> Vec<UncertainObject> {
        let mut d = Vec::new();
        for c in [0.0, 20.0] {
            for i in 0..8 {
                d.push(UncertainObject::with_coverage(
                    vec![
                        UnivariatePdf::normal(c + (i % 4) as f64 * 0.2, 0.3),
                        UnivariatePdf::normal(c, 0.3),
                    ],
                    0.95,
                ));
            }
        }
        d
    }

    #[test]
    fn every_algorithm_runs_through_the_harness() {
        let d = data();
        let cfg = RunConfig {
            max_iters: 30,
            samples_per_object: 16,
        };
        for algo in [
            Algo::Fdb,
            Algo::Fopt,
            Algo::Uahc,
            Algo::UkMed,
            Algo::Ukm,
            Algo::Mmv,
            Algo::Ucpc,
            Algo::BUkm,
            Algo::MinMaxBb,
            Algo::VdBiP,
        ] {
            let out = run_timed(algo, &d, 2, 42, &cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
            assert_eq!(out.clustering.len(), d.len(), "{}", algo.name());
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let d = data();
        let cfg = RunConfig::default();
        let a = run_timed(Algo::Ucpc, &d, 2, 7, &cfg).unwrap();
        let b = run_timed(Algo::Ucpc, &d, 2, 7, &cfg).unwrap();
        assert_eq!(a.clustering.labels(), b.clustering.labels());
    }

    #[test]
    fn averaged_run_reports_mean_time() {
        let d = data();
        let cfg = RunConfig::default();
        let (c, t) = run_averaged(Algo::Ukm, &d, 2, 1, 3, &cfg).unwrap();
        assert_eq!(c.len(), d.len());
        assert!(t >= Duration::ZERO); // smoke: no panic
    }
}
