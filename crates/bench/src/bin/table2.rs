//! Reproduces **Table 2**: accuracy on the benchmark datasets, external
//! (Θ = F-measure gain of modelling uncertainty) and internal (Q) criteria,
//! for Uniform/Normal/Exponential uncertainty across all seven algorithms.
//!
//! Protocol (Section 5.1): per dataset and pdf family, assign each point a
//! pdf with expected value at the point; cluster the perturbed deterministic
//! dataset `D'` (Case 1) and the uncertain dataset `D''` (Case 2); report
//! `Θ = F(C'') − F(C')` against the reference classes and `Q` of `C''`.
//! Scores are averaged over `--runs` seeded runs (paper: 50).
//!
//! Flags:
//! * `--scale`  fraction of each dataset's published size (default 0.1; use
//!   1.0 for full fidelity — hours of runtime for the O(n²)+ baselines);
//! * `--runs`   runs to average (default 5; paper 50);
//! * `--seed`   base seed (default 2012).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_bench::args::Args;
use ucpc_bench::harness::{run_timed, Algo, RunConfig};
use ucpc_bench::report::Table;
use ucpc_datasets::benchmark::{accuracy_benchmarks, generate_fraction};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc_eval::{f_measure, quality};

fn main() {
    let args = Args::from_env();
    let scale = args.f64_or("scale", 0.1);
    let runs = args.usize_or("runs", 5);
    let seed = args.u64_or("seed", 2012);
    let cfg = RunConfig::default();

    let columns: Vec<String> = Algo::ACCURACY
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut theta_table = Table::new(
        format!("Table 2 — F-measure gain Theta (scale {scale}, {runs} runs)"),
        columns.clone(),
    );
    let mut q_table = Table::new(
        format!("Table 2 — Quality Q (scale {scale}, {runs} runs)"),
        columns,
    );

    // Per-pdf rows for the paper's "avg score" aggregates.
    let mut pdf_theta_rows: Vec<(NoiseKind, Vec<f64>)> = Vec::new();
    let mut pdf_q_rows: Vec<(NoiseKind, Vec<f64>)> = Vec::new();

    for spec in accuracy_benchmarks() {
        for kind in NoiseKind::all() {
            let mut theta_sum = vec![0.0; Algo::ACCURACY.len()];
            let mut q_sum = vec![0.0; Algo::ACCURACY.len()];

            for run in 0..runs {
                // One uncertainty realization per run, shared by all
                // algorithms for a paired comparison.
                let run_seed = seed
                    ^ (run as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ((spec.objects as u64) << 16)
                    ^ kind.label().as_bytes()[0] as u64;
                let mut rng = StdRng::seed_from_u64(run_seed);
                let d = generate_fraction(spec, scale, &mut rng);
                let model = UncertaintyModel::paper_default(kind);
                let assignment = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
                // Paired Case-1/Case-2 datasets: one shared noise
                // realization, uncertainty model centered on the observed
                // values (see Centering in ucpc-datasets).
                let pair = assignment.paired(&mut rng);
                let (d1, d2) = (pair.observed, pair.uncertain);
                let k = spec.classes;

                for (ai, &algo) in Algo::ACCURACY.iter().enumerate() {
                    let c1 = run_timed(algo, &d1, k, run_seed.wrapping_add(1), &cfg)
                        .expect("case-1 run failed")
                        .clustering;
                    let c2 = run_timed(algo, &d2, k, run_seed.wrapping_add(1), &cfg)
                        .expect("case-2 run failed")
                        .clustering;
                    theta_sum[ai] += f_measure(&c2, &d.labels) - f_measure(&c1, &d.labels);
                    q_sum[ai] += quality(&d2, &c2).q;
                }
            }

            let inv = 1.0 / runs as f64;
            let theta_row: Vec<f64> = theta_sum.iter().map(|s| s * inv).collect();
            let q_row: Vec<f64> = q_sum.iter().map(|s| s * inv).collect();
            let label = format!("{}-{}", spec.name, kind.label());
            eprintln!("done: {label}");
            pdf_theta_rows.push((kind, theta_row.clone()));
            pdf_q_rows.push((kind, q_row.clone()));
            theta_table.push_row(label.clone(), theta_row);
            q_table.push_row(label, q_row);
        }
    }

    // Paper's aggregate rows: per-pdf average, overall average, overall gain.
    append_aggregates(&mut theta_table, &pdf_theta_rows);
    append_aggregates(&mut q_table, &pdf_q_rows);

    print!("{}", theta_table.render());
    println!();
    print!("{}", q_table.render());
    let p1 = theta_table.save_csv("table2_theta.csv").expect("write csv");
    let p2 = q_table.save_csv("table2_quality.csv").expect("write csv");
    println!("\nCSV: {} / {}", p1.display(), p2.display());
}

fn append_aggregates(table: &mut Table, rows: &[(NoiseKind, Vec<f64>)]) {
    let n_cols = rows.first().map_or(0, |(_, r)| r.len());
    for kind in NoiseKind::all() {
        let subset: Vec<&Vec<f64>> = rows
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, r)| r)
            .collect();
        if subset.is_empty() {
            continue;
        }
        let mut avg = vec![0.0; n_cols];
        for r in &subset {
            for (a, v) in avg.iter_mut().zip(r.iter()) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= subset.len() as f64;
        }
        table.push_row(format!("avg-{}", kind.label()), avg);
    }
    let mut overall = vec![0.0; n_cols];
    for (_, r) in rows {
        for (a, v) in overall.iter_mut().zip(r.iter()) {
            *a += v;
        }
    }
    for a in &mut overall {
        *a /= rows.len() as f64;
    }
    // Overall average gain of UCPC (last column) over each competitor.
    let ucpc = *overall.last().unwrap_or(&0.0);
    let gains: Vec<f64> = overall.iter().map(|&v| ucpc - v).collect();
    table.push_row("overall-avg", overall);
    table.push_row("overall-gain", gains);
}
