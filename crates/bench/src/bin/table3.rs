//! Reproduces **Table 3**: internal quality (Q) on the real microarray
//! datasets (Neuroblastoma, Leukaemia) for cluster counts
//! k ∈ {2, 3, 5, 10, 15, 20, 25, 30} across all seven algorithms.
//!
//! The microarray objects carry *inherent* probe-level uncertainty (Normal
//! pdfs from the mgMOS-style simulator — the paper's data is not available
//! offline; see DESIGN.md), and no reference classification exists, so only
//! the internal criterion Q is reported, as in the paper.
//!
//! Flags:
//! * `--genes`  genes (objects) per dataset (default 300; the paper's 22k
//!   genes are intractable for the O(n²)+ baselines on one machine);
//! * `--runs`   runs to average (default 5; paper 50);
//! * `--seed`   base seed (default 2012).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_bench::args::Args;
use ucpc_bench::harness::{run_timed, Algo, RunConfig};
use ucpc_bench::report::Table;
use ucpc_datasets::microarray::{MicroarraySimulator, LEUKAEMIA, NEUROBLASTOMA};
use ucpc_eval::quality;

const CLUSTER_COUNTS: [usize; 8] = [2, 3, 5, 10, 15, 20, 25, 30];

fn main() {
    let args = Args::from_env();
    let genes = args.usize_or("genes", 300);
    let runs = args.usize_or("runs", 5);
    let seed = args.u64_or("seed", 2012);
    let cfg = RunConfig::default();

    let columns: Vec<String> = Algo::ACCURACY
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut table = Table::new(
        format!("Table 3 — Quality Q on microarray data ({genes} genes, {runs} runs)"),
        columns,
    );

    let mut per_dataset_rows: Vec<(&'static str, Vec<f64>)> = Vec::new();

    for spec in [NEUROBLASTOMA, LEUKAEMIA] {
        let mut rng = StdRng::seed_from_u64(seed ^ spec.genes as u64);
        let data = MicroarraySimulator::default().simulate_genes(spec, genes, &mut rng);

        for &k in &CLUSTER_COUNTS {
            let mut q_sum = vec![0.0; Algo::ACCURACY.len()];
            for run in 0..runs {
                let run_seed =
                    seed ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k as u64;
                for (ai, &algo) in Algo::ACCURACY.iter().enumerate() {
                    let c = run_timed(algo, &data.objects, k, run_seed, &cfg)
                        .expect("microarray run failed")
                        .clustering;
                    q_sum[ai] += quality(&data.objects, &c).q;
                }
            }
            let inv = 1.0 / runs as f64;
            let row: Vec<f64> = q_sum.iter().map(|s| s * inv).collect();
            eprintln!("done: {} k={k}", spec.name);
            per_dataset_rows.push((spec.name, row.clone()));
            table.push_row(format!("{}-k{k}", spec.name), row);
        }
    }

    // Aggregates: per-dataset averages, overall average, overall gain.
    for spec_name in ["Neuroblastoma", "Leukaemia"] {
        let subset: Vec<&Vec<f64>> = per_dataset_rows
            .iter()
            .filter(|(n, _)| *n == spec_name)
            .map(|(_, r)| r)
            .collect();
        let mut avg = vec![0.0; Algo::ACCURACY.len()];
        for r in &subset {
            for (a, v) in avg.iter_mut().zip(r.iter()) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= subset.len() as f64;
        }
        table.push_row(format!("avg-{spec_name}"), avg);
    }
    let mut overall = vec![0.0; Algo::ACCURACY.len()];
    for (_, r) in &per_dataset_rows {
        for (a, v) in overall.iter_mut().zip(r.iter()) {
            *a += v;
        }
    }
    for a in &mut overall {
        *a /= per_dataset_rows.len() as f64;
    }
    let ucpc = *overall.last().unwrap_or(&0.0);
    let gains: Vec<f64> = overall.iter().map(|&v| ucpc - v).collect();
    table.push_row("overall-avg", overall);
    table.push_row("overall-gain", gains);

    print!("{}", table.render());
    let p = table.save_csv("table3_quality.csv").expect("write csv");
    println!("\nCSV: {}", p.display());
}
