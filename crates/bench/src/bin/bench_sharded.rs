//! Measures the sharded grid: the coordinator/participant replicated-log
//! layer (`ucpc_core::sharded::ShardedUcpc`) driven through a seeded edit
//! stream at shard counts {1, 2, 4, 8}, on a clean in-process transport
//! and under a seeded mixed chaos schedule (drops + duplicates +
//! reorders + bounded delays). Reports edits/sec, committed log rounds,
//! transport retries, and throughput relative to the single-node
//! `IncrementalUcpc` on the same stream — replication is a robustness
//! feature, so the relative column is the price being paid, not a
//! speedup gate.
//!
//! Every repetition asserts the final partition byte-identical to the
//! single-node replay, so the measurement doubles as the end-to-end
//! replication-exactness check.
//!
//! Usage:
//!
//! * `cargo run --release -p ucpc-bench --bin bench_sharded` — the
//!   measured grid, printed as a table plus `BENCH_relocation.json`
//!   `sharded_grid` rows ready to splice.
//! * `cargo run --release -p ucpc-bench --bin bench_sharded -- --check`
//!   — CI mode: a reduced grid whose value is the byte-identity asserts
//!   (clean and chaotic) at every shard count; timings are not gated.
//!
//! `UCPC_CHAOS_SEED` reseeds the chaos schedule (the differential test
//! suite honours the same knob), so CI can sweep fresh fault schedules
//! without a code change.

use ucpc_bench::relocation::Shape;
use ucpc_bench::sharded::{sharded_comparison, ShardedSpec};
use ucpc_core::fault::ChaosPlan;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let seed = ChaosPlan::clean(17).seed_from_env().seed;

    if check {
        // CI leg: exactness across shard counts and transports on a small
        // shape. The asserts live inside `sharded_comparison`; reaching
        // the print means they held.
        let shape = Shape { n: 120, m: 6, k: 4 };
        let spec = ShardedSpec {
            edits: 160,
            stabilize_every: 32,
        };
        let rows = sharded_comparison(shape, spec, seed, 1, &SHARD_COUNTS);
        let retries: u64 = rows.iter().map(|r| r.retries).sum();
        assert!(
            retries > 0,
            "the chaos legs must exercise retransmission (seed {seed})"
        );
        println!(
            "sharded --check ok: n={} m={} k={} byte-identical to single-node at shards {:?}, \
             clean and chaotic ({} retries, seed {})",
            shape.n, shape.m, shape.k, SHARD_COUNTS, retries, seed
        );
        return;
    }

    let shape = Shape {
        n: 1_000,
        m: 16,
        k: 8,
    };
    let spec = ShardedSpec {
        edits: 1_200,
        stabilize_every: 50,
    };
    let rows = sharded_comparison(shape, spec, seed, 5, &SHARD_COUNTS);

    println!(
        "{:<26} {:>7} {:>10} {:>12} {:>8} {:>9} {:>10}",
        "sharded (replicated log)",
        "shards",
        "transport",
        "edits/s",
        "rounds",
        "retries",
        "vs 1-node"
    );
    for row in &rows {
        println!(
            "n={:<5} m={:<3} k={:<10} {:>7} {:>10} {:>12.0} {:>8} {:>9} {:>9.3}x",
            row.shape.n,
            row.shape.m,
            row.shape.k,
            row.shards,
            row.transport,
            row.edits_per_sec,
            row.committed_rounds,
            row.retries,
            row.relative_to_single
        );
    }

    println!("\nBENCH_relocation.json sharded_grid rows:");
    for row in &rows {
        println!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"shards\": {}, ",
                "\"transport\": \"{}\", \"edits_per_sec\": {:.0}, ",
                "\"committed_rounds\": {}, \"retries\": {}, ",
                "\"relative_to_single\": {:.3}}}"
            ),
            row.shape.n,
            row.shape.m,
            row.shape.k,
            row.shards,
            row.transport,
            row.edits_per_sec,
            row.committed_rounds,
            row.retries,
            row.relative_to_single
        );
    }
}
