//! Churn soak bench: millions of edits through `IncrementalUcpc` on the
//! slab backend, gated on **flat memory**.
//!
//! The generation-stamped handle scheme promises that weeks of streaming
//! churn cannot grow any handle-indexed structure: slots are recycled, so
//! the label map, the moment rows and the prune-cache entries all top out
//! at the live-window high-water mark. This binary drives a 10M-edit
//! (default) insert-after-remove soak and asserts, over the measured
//! window:
//!
//! * **zero allocator calls** (counting global allocator — the strongest
//!   possible "nothing grew" witness), and
//! * **flat slot/cache counts** (`slot_rows`, `cache_entries` identical
//!   before and after the window).
//!
//! Rows are written into the `soak_grid` of `BENCH_relocation.json`
//! (spliced, preserving the other grids). CI runs the reduced
//! `--check --edits 100000` shape, which prints the gate verdict and exits
//! non-zero on any violation without touching the JSON.
//!
//! Usage: `cargo run --release -p ucpc-bench --bin bench_soak
//! [--check] [--edits N] [output.json]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ucpc_core::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use ucpc_core::PruningConfig;
use ucpc_uncertain::{UncertainObject, UnivariatePdf};

/// System allocator with a global counter of alloc/realloc calls — the
/// same witness `tests/streaming_alloc_free.rs` uses, here over a
/// millions-of-edits window.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

struct SoakRow {
    pruning: &'static str,
    edits: usize,
    window_ns: u128,
    ns_per_edit: f64,
    alloc_calls: usize,
    slot_rows_before: usize,
    slot_rows_after: usize,
    cache_entries_before: usize,
    cache_entries_after: usize,
    relocations: usize,
    flat: bool,
}

/// One soak run: a settled n-object window, then `edits` edits (half
/// removals, half insertions, FIFO victims) with a stabilization sweep
/// every `stabilize_every` pairs. Returns the gate observations.
fn soak(pruning: PruningConfig, edits: usize) -> SoakRow {
    let n = 2_000;
    let m = 8;
    let k = 8;
    let stabilize_every = 1_000;
    let pool = 10_000;

    // All payloads come from a pre-generated cyclic pool so the measured
    // window borrows everything: any allocator call inside the window is
    // the engine's own.
    let mk = |i: usize| {
        UncertainObject::new(
            (0..m)
                .map(|j| {
                    let c = ((i * 31 + j * 7) % 97) as f64 * 0.25 - 12.0;
                    UnivariatePdf::normal(c, 0.3)
                })
                .collect(),
        )
    };
    let objects: Vec<UncertainObject> = (0..pool).map(mk).collect();

    let mut live = IncrementalUcpc::with_backend(m, k, StreamBackend::Slab).unwrap();
    live.set_pruning(pruning);
    let mut ids: Vec<ObjectHandle> = (0..n)
        .map(|i| live.insert(&objects[i % pool]).unwrap())
        .collect();
    let mut oldest = 0usize;

    // Settle, then warm every lazily-grown structure before the measured
    // window: one stabilization sweep sizes the prune cache (a single
    // allocation, once), and one edit pair pays the slab free-list's first
    // capacity growth. From here on the engine has nothing left to grow.
    live.stabilize(5);
    let victim = ids[oldest];
    live.remove(victim).expect("warm-up victim is live");
    ids[oldest] = live.insert(&objects[n % pool]).unwrap();
    live.stabilize(1);

    let slot_rows_before = live.slot_rows();
    let cache_entries_before = live.cache_entries();
    let pairs = edits / 2;
    let mut relocations = 0usize;

    let alloc_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let t = Instant::now();
    for pair in 0..pairs {
        let victim = ids[oldest];
        live.remove(victim).expect("victim handle is live");
        ids[oldest] = live.insert(&objects[(n + 1 + pair) % pool]).unwrap();
        oldest = (oldest + 1) % n;
        if (pair + 1) % stabilize_every == 0 {
            relocations += live.stabilize(2);
        }
    }
    let window_ns = t.elapsed().as_nanos();
    let alloc_calls = ALLOC_CALLS.load(Ordering::Relaxed) - alloc_before;

    let slot_rows_after = live.slot_rows();
    let cache_entries_after = live.cache_entries();
    assert_eq!(live.len(), n, "window size is steady");

    let flat = alloc_calls == 0
        && slot_rows_after == slot_rows_before
        && cache_entries_after == cache_entries_before;

    SoakRow {
        pruning: if pruning.is_enabled() {
            "bounds"
        } else {
            "off"
        },
        edits: pairs * 2,
        window_ns,
        ns_per_edit: window_ns as f64 / (pairs * 2) as f64,
        alloc_calls,
        slot_rows_before,
        slot_rows_after,
        cache_entries_before,
        cache_entries_after,
        relocations,
        flat,
    }
}

/// Splices `soak_gate` + `soak_grid` into the JSON baseline, replacing any
/// previous soak block and preserving every other grid byte-for-byte.
fn splice(path: &str, gate: bool, rows: &[SoakRow]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run bench_relocation first)"));
    let base = match text.find(",\n  \"soak_gate\"") {
        Some(cut) => text[..cut].to_string(),
        None => {
            let end = text.rfind('}').expect("JSON object");
            text[..end].trim_end().trim_end_matches(',').to_string()
        }
    };
    let mut out = base;
    out.push_str(&format!(
        ",\n  \"soak_gate\": {{\"flat_memory\": {}, \"required\": true}},\n  \"soak_grid\": [\n",
        gate
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"backend\": \"slab\", \"pruning\": \"{}\", \"edits\": {}, ",
                "\"window_ns\": {}, \"ns_per_edit\": {:.1}, \"alloc_calls\": {}, ",
                "\"slot_rows_before\": {}, \"slot_rows_after\": {}, ",
                "\"cache_entries_before\": {}, \"cache_entries_after\": {}, ",
                "\"relocations\": {}, \"flat_memory\": {}}}{}\n"
            ),
            r.pruning,
            r.edits,
            r.window_ns,
            r.ns_per_edit,
            r.alloc_calls,
            r.slot_rows_before,
            r.slot_rows_after,
            r.cache_entries_before,
            r.cache_entries_after,
            r.relocations,
            r.flat,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let mut check = false;
    let mut edits = 10_000_000usize;
    let mut out_path = "BENCH_relocation.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--edits" => {
                edits = args.next().and_then(|v| v.parse().ok()).expect("--edits N");
            }
            other => out_path = other.to_string(),
        }
    }

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>22} {:>22} {:>6}",
        "pruning",
        "edits",
        "ns/edit",
        "alloc calls",
        "slot rows (pre/post)",
        "cache entries",
        "flat"
    );
    let mut rows = Vec::new();
    for pruning in [PruningConfig::Off, PruningConfig::Bounds] {
        let r = soak(pruning, edits);
        println!(
            "{:<8} {:>12} {:>12.1} {:>12} {:>11}/{:<10} {:>11}/{:<10} {:>6}",
            r.pruning,
            r.edits,
            r.ns_per_edit,
            r.alloc_calls,
            r.slot_rows_before,
            r.slot_rows_after,
            r.cache_entries_before,
            r.cache_entries_after,
            r.flat
        );
        rows.push(r);
    }
    let gate = rows.iter().all(|r| r.flat);

    if check {
        if gate {
            println!("soak gate: PASS (flat memory over {} edits per row)", edits);
        } else {
            println!("soak gate: FAIL — handle-indexed state grew under steady churn");
            std::process::exit(1);
        }
    } else {
        assert!(gate, "soak gate failed; not writing a violated baseline");
        splice(&out_path, gate, &rows);
        println!("spliced soak_grid into {out_path}");
    }
}
