//! Measures the serving grid: the batched assignment-serving front door
//! (`ucpc_core::serving::ServingUcpc`) under an open-loop placement
//! stream, across micro-batch sizes, on a small shape and the acceptance
//! shape (n=10k, m=32, k=20). Reports p50/p99 response latency and
//! arrivals/sec per batch size; the committed gate
//! (`BENCH_relocation.json`, `required_serving_speedup`) requires batched
//! serving ≥ 1.5× the batch-size-1 throughput on the acceptance shape.
//!
//! Every repetition asserts the final partition byte-identical across
//! batch sizes and equal to a serial `IncrementalUcpc` replay, so the
//! measurement doubles as the end-to-end serving exactness check.
//!
//! The WAL overhead leg serves the same stream with the write-ahead log
//! detached vs logging every commit; its gate (`required_wal_overhead`)
//! requires logging to cost < 15% of the WAL-off arrivals/sec at the
//! acceptance shape, and recovery from (streaming v2 checkpoint, full
//! log) is asserted bit-identical to the final partition on every run.
//!
//! Usage:
//!
//! * `cargo run --release -p ucpc-bench --bin bench_serving` — the full
//!   measured grid (printed; splice into `BENCH_relocation.json` via
//!   `bench_relocation`, which emits the same rows).
//! * `cargo run --release -p ucpc-bench --bin bench_serving -- --wal` —
//!   only the WAL overhead grid, as `BENCH_relocation.json` `wal_grid`
//!   rows.
//! * `cargo run --release -p ucpc-bench --bin bench_serving -- --check` —
//!   CI mode: a reduced grid whose value is the byte-identity and
//!   recovery asserts plus the WAL overhead gate; batching timings are
//!   not evaluated.

use ucpc_bench::relocation::Shape;
use ucpc_bench::serving::{serving_comparison, wal_comparison, ServingSpec};

/// The committed `required_wal_overhead` gate (see `BENCH_relocation.json`).
const REQUIRED_WAL_OVERHEAD: f64 = 0.15;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let wal_only = std::env::args().any(|a| a == "--wal");

    if check {
        // CI leg: exactness across batch sizes on two shapes bracketing the
        // SIMD dispatch threshold. The asserts live inside
        // `serving_comparison`; reaching the prints means they held.
        for shape in [
            Shape { n: 400, m: 8, k: 5 },
            Shape {
                n: 600,
                m: 32,
                k: 8,
            },
        ] {
            let spec = ServingSpec {
                arrivals: 400,
                commit_every: 3,
                top_k: 4,
            };
            serving_comparison(shape, spec, 7, 1, &[1, 3, 16, 64]);
            println!(
                "serving --check ok: n={} m={} k={} byte-identical across batch sizes and serial",
                shape.n, shape.m, shape.k
            );
        }
        // WAL leg: off-vs-on identity, end-to-end recovery, and the
        // overhead gate at a reduced shape with the gate's own commit
        // intensity (1 commit per 16 arrivals): framing + CRC cost a few
        // tens of ns per request against a placement scan — far enough
        // under the 15% gate that shared-runner noise stays clear of it.
        let shape = Shape {
            n: 600,
            m: 32,
            k: 8,
        };
        let spec = ServingSpec {
            arrivals: 1600,
            commit_every: 16,
            top_k: 4,
        };
        let row = wal_comparison(shape, spec, 7, 3, 16);
        assert!(
            row.overhead_frac < REQUIRED_WAL_OVERHEAD,
            "WAL overhead {:.1}% breaches the {:.0}% gate (off {:.0}/s, on {:.0}/s)",
            row.overhead_frac * 100.0,
            REQUIRED_WAL_OVERHEAD * 100.0,
            row.off_arrivals_per_sec,
            row.on_arrivals_per_sec
        );
        println!(
            "wal --check ok: n={} m={} k={} recovery bit-identical, overhead {:.1}% < {:.0}%",
            shape.n,
            shape.m,
            shape.k,
            row.overhead_frac * 100.0,
            REQUIRED_WAL_OVERHEAD * 100.0
        );
        return;
    }

    if wal_only {
        let spec = ServingSpec {
            arrivals: 4000,
            commit_every: 16,
            top_k: 4,
        };
        for shape in [
            Shape {
                n: 2_000,
                m: 16,
                k: 8,
            },
            Shape {
                n: 10_000,
                m: 32,
                k: 20,
            },
        ] {
            let row = wal_comparison(shape, spec, 7, 5, 16);
            println!(
                concat!(
                    "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"batch\": {}, ",
                    "\"off_arrivals_per_sec\": {:.0}, \"on_arrivals_per_sec\": {:.0}, ",
                    "\"overhead_frac\": {:.4}}}"
                ),
                shape.n,
                shape.m,
                shape.k,
                row.batch,
                row.off_arrivals_per_sec,
                row.on_arrivals_per_sec,
                row.overhead_frac
            );
        }
        return;
    }

    let reps = 9;
    // Placement-heavy open loop: 1 commit per 16 arrivals keeps the engine
    // churning while the measured quantity stays what the gate names —
    // batched *placement* throughput.
    let spec = ServingSpec {
        arrivals: 4000,
        commit_every: 16,
        top_k: 4,
    };
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>14} {:>9}",
        "serving (open loop)", "batch", "p50 ns", "p99 ns", "arrivals/s", "vs b=1"
    );
    for shape in [
        Shape {
            n: 2_000,
            m: 16,
            k: 8,
        },
        Shape {
            n: 10_000,
            m: 32,
            k: 20,
        },
    ] {
        let rows = serving_comparison(shape, spec, 7, reps, &[1, 8, 16, 32]);
        let base = rows
            .iter()
            .find(|r| r.batch == 1)
            .expect("batch-1 row present")
            .arrivals_per_sec;
        for row in &rows {
            println!(
                "n={:<6} m={:<3} k={:<4} {:>6} {:>12} {:>12} {:>14.0} {:>8.2}x",
                shape.n,
                shape.m,
                shape.k,
                row.batch,
                row.p50_ns,
                row.p99_ns,
                row.arrivals_per_sec,
                row.arrivals_per_sec / base
            );
        }
    }
}
