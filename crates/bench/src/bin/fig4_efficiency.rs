//! Reproduces **Figure 4**: clustering runtimes (milliseconds) on the two
//! largest benchmark datasets (Abalone, Letter) and the real microarray
//! datasets, organized as in the paper into a "slower" panel (basic UK-means,
//! UK-medoids, UAHC, FDBSCAN, FOPTICS) and a "faster" panel (UK-means,
//! MMVar, MinMax-BB, VDBiP) — each with UCPC included for reference.
//!
//! Measurement protocol as in Section 5.2.2: only the clustering phase is
//! timed; pruning-structure and sample-cache builds, UK-medoids' pairwise
//! distance matrix, and other offline stages are excluded.
//!
//! Flags:
//! * `--scale`  fraction of Abalone/Letter's published size (default 0.05;
//!   the UAHC/UK-medoids baselines are O(n²)–O(n³));
//! * `--genes`  genes per microarray dataset (default 250);
//! * `--runs`   timing repetitions to average (default 3; paper 50);
//! * `--seed`   base seed (default 2012).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_bench::args::Args;
use ucpc_bench::harness::{run_averaged, Algo, RunConfig};
use ucpc_bench::report::Table;
use ucpc_datasets::benchmark::{generate_fraction, ABALONE, LETTER};
use ucpc_datasets::microarray::{MicroarraySimulator, LEUKAEMIA, NEUROBLASTOMA};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};
use ucpc_uncertain::UncertainObject;

fn main() {
    let args = Args::from_env();
    let scale = args.f64_or("scale", 0.05);
    let genes = args.usize_or("genes", 250);
    let runs = args.usize_or("runs", 3);
    let seed = args.u64_or("seed", 2012);
    let cfg = RunConfig::default();

    // Workloads: uncertain versions of Abalone and Letter (Normal pdfs,
    // Case 2 of Section 5.1) and the two microarray datasets.
    let mut workloads: Vec<(String, Vec<UncertainObject>, usize)> = Vec::new();
    for spec in [ABALONE, LETTER] {
        let mut rng = StdRng::seed_from_u64(seed ^ spec.objects as u64);
        let d = generate_fraction(spec, scale, &mut rng);
        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        workloads.push((
            format!("{} (n={})", spec.name, d.len()),
            a.uncertain_objects(),
            spec.classes,
        ));
    }
    for spec in [NEUROBLASTOMA, LEUKAEMIA] {
        let mut rng = StdRng::seed_from_u64(seed ^ spec.genes as u64);
        let d = MicroarraySimulator::default().simulate_genes(spec, genes, &mut rng);
        workloads.push((format!("{} (n={genes})", spec.name), d.objects, 5));
    }

    let mut slow_algos: Vec<Algo> = Algo::SLOW_PANEL.to_vec();
    slow_algos.push(Algo::Ucpc);
    let mut fast_algos: Vec<Algo> = Algo::FAST_PANEL.to_vec();
    fast_algos.push(Algo::Ucpc);

    let mut slow_table = Table::new(
        format!("Figure 4 — clustering time, slower algorithms (ms, {runs}-run mean)"),
        slow_algos.iter().map(|a| a.name().to_string()),
    );
    let mut fast_table = Table::new(
        format!("Figure 4 — clustering time, faster algorithms (ms, {runs}-run mean)"),
        fast_algos.iter().map(|a| a.name().to_string()),
    );

    for (name, data, k) in &workloads {
        let time_row = |algos: &[Algo]| -> Vec<f64> {
            algos
                .iter()
                .map(|&algo| {
                    let (_, t) = run_averaged(algo, data, *k, seed, runs, &cfg)
                        .unwrap_or_else(|e| panic!("{} on {name}: {e}", algo.name()));
                    t.as_secs_f64() * 1e3
                })
                .collect()
        };
        slow_table.push_row(name.clone(), time_row(&slow_algos));
        eprintln!("done (slow panel): {name}");
        fast_table.push_row(name.clone(), time_row(&fast_algos));
        eprintln!("done (fast panel): {name}");
    }

    print!("{}", slow_table.render());
    println!();
    print!("{}", fast_table.render());
    let p1 = slow_table.save_csv("fig4_slow.csv").expect("write csv");
    let p2 = fast_table.save_csv("fig4_fast.csv").expect("write csv");
    println!("\nCSV: {} / {}", p1.display(), p2.display());
}
