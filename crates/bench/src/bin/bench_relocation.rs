//! Emits the machine-readable relocation-kernel baseline,
//! `BENCH_relocation.json`: median wall time of one evaluation-only UCPC
//! relocation pass on the naive three-sweep path vs the scalar-aggregate
//! delta-`J` kernel, over the shared n × m × k grid.
//!
//! Usage: `cargo run --release -p ucpc-bench --bin bench_relocation
//! [output.json]` (default output path: `BENCH_relocation.json`).

use std::time::Instant;
use ucpc_bench::relocation::{kernel_pass, naive_pass, workload, Workload, GRID};

/// Median nanoseconds per call of `f` over `reps` timed repetitions (after
/// one warm-up call).
fn median_ns(w: &Workload, reps: usize, f: fn(&Workload) -> f64) -> u128 {
    let mut sink = 0.0;
    sink += f(w); // warm-up
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            sink += f(w);
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    // Keep the accumulated objective observable so the passes cannot be
    // optimized away.
    assert!(
        sink.is_finite(),
        "benchmark payload produced a non-finite objective"
    );
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_relocation.json".into());
    let reps = 9;

    let mut rows = Vec::new();
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "shape", "naive ns/pass", "kernel ns/pass", "speedup"
    );
    for shape in GRID {
        let w = workload(shape, 7);
        let naive = median_ns(&w, reps, naive_pass);
        let kernel = median_ns(&w, reps, kernel_pass);
        let speedup = naive as f64 / kernel as f64;
        println!(
            "n={:<6} m={:<3} k={:<4} {naive:>14} {kernel:>14} {speedup:>8.2}x",
            shape.n, shape.m, shape.k
        );
        rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"naive_ns_per_pass\": {}, \"kernel_ns_per_pass\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            shape.n, shape.m, shape.k, naive, kernel, speedup
        ));
    }

    let acceptance = GRID
        .iter()
        .position(|s| s.n == 10_000 && s.m == 32 && s.k == 20)
        .expect("acceptance shape present in GRID");
    let json = format!(
        "{{\n  \"benchmark\": \"ucpc_relocation_pass\",\n  \"description\": \"one evaluation-only UCPC relocation pass: naive three-sweep Corollary-1 path vs flat-arena scalar-aggregate delta-J kernel\",\n  \"units\": \"nanoseconds per pass (median of {reps} repetitions, release profile)\",\n  \"acceptance_shape\": {{\"n\": 10000, \"m\": 32, \"k\": 20, \"required_speedup\": 2.0}},\n  \"acceptance_row_index\": {acceptance},\n  \"grid\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
