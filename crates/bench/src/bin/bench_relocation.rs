//! Emits the machine-readable relocation baseline, `BENCH_relocation.json`:
//!
//! * median wall time of one evaluation-only UCPC relocation pass on the
//!   naive three-sweep path vs the scalar-aggregate delta-`J` kernel, over
//!   the shared n × m × k grid;
//! * the same kernel pass with the `UCPC_SIMD=scalar` backend forced vs the
//!   machine's detected SIMD backend (AVX2+FMA or NEON), with the full
//!   relocation phase asserted byte-identical between the two backends; and
//! * median wall time of the *full* relocation phase (all passes to
//!   convergence) with candidate pruning off vs on, on the clustered blob
//!   workload, with skip/scan counters — the pruned run is asserted
//!   label-identical to the unpruned one on every repetition; and
//! * the same full relocation phase under `ParallelUcpc` for threads ∈
//!   {1, 2, 4, 8} × backends {even, steal} (pruning on) on the acceptance
//!   blob shape and on a load-skewed shape, with labels asserted
//!   byte-identical across every configuration; and
//! * the `IncrementalUcpc` streaming churn window (interleaved
//!   remove/insert/stabilize) over storage backends {objects, slab} ×
//!   pruning {off, bounds}, with live labels and objective bits asserted
//!   identical across all four configurations; and
//! * the `ServingUcpc` serving grid: an open-loop placement-heavy request
//!   stream through the batched assignment-serving front door across
//!   micro-batch sizes, with the final partition asserted byte-identical
//!   across batch sizes and equal to a serial replay on every repetition.
//!
//! All clustered batch workloads are built through the arena-native
//! `PdfAssignment::assign_into_arena` pipeline (no `UncertainObject`
//! round-trip).
//!
//! Usage: `cargo run --release -p ucpc-bench --bin bench_relocation
//! [output.json]` (default output path: `BENCH_relocation.json`).

use ucpc_bench::relocation::{
    blob_workload, kernel_pass, median_ns, naive_pass, parallel_comparison, pruning_comparison,
    simd_comparison, skewed_workload, workload, Shape, GRID,
};
use ucpc_bench::serving::{serving_comparison, wal_comparison, ServingSpec};
use ucpc_bench::streaming::{streaming_comparison, ChurnSpec};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_relocation.json".into());
    let reps = 9;

    let mut rows = Vec::new();
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "shape", "naive ns/pass", "kernel ns/pass", "speedup"
    );
    for shape in GRID {
        let w = workload(shape, 7);
        let naive = median_ns(&w, reps, naive_pass);
        let kernel = median_ns(&w, reps, kernel_pass);
        let speedup = naive as f64 / kernel as f64;
        println!(
            "n={:<6} m={:<3} k={:<4} {naive:>14} {kernel:>14} {speedup:>8.2}x",
            shape.n, shape.m, shape.k
        );
        rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"naive_ns_per_pass\": {}, \"kernel_ns_per_pass\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            shape.n, shape.m, shape.k, naive, kernel, speedup
        ));
    }

    // Scalar backend vs the detected SIMD backend on the identical kernel
    // pass; `simd_comparison` additionally asserts byte-identical labels
    // from the full relocation phase under both backends.
    let mut simd_rows = Vec::new();
    let mut simd_backend = "scalar";
    println!(
        "\n{:<22} {:>14} {:>14} {:>9}",
        "simd (kernel pass)", "scalar ns/pass", "simd ns/pass", "speedup"
    );
    for shape in GRID {
        let row = simd_comparison(shape, 7, reps);
        if row.engaged {
            simd_backend = row.backend;
        }
        println!(
            "n={:<6} m={:<3} k={:<4} {:>14} {:>14} {:>8.2}x  [{}]",
            shape.n,
            shape.m,
            shape.k,
            row.scalar_ns,
            row.simd_ns,
            row.speedup,
            if row.engaged {
                row.backend
            } else {
                "below dispatch threshold — backend not engaged"
            }
        );
        simd_rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"scalar_ns_per_pass\": {}, \"simd_ns_per_pass\": {}, ",
                "\"speedup\": {:.3}, \"simd_engaged\": {}}}"
            ),
            shape.n, shape.m, shape.k, row.scalar_ns, row.simd_ns, row.speedup, row.engaged
        ));
    }

    // End-to-end relocation-phase comparison: pruning off vs on, clustered
    // data, label equality asserted inside `pruning_comparison`.
    let pruning_reps = 5;
    let mut pruning_rows = Vec::new();
    println!(
        "\n{:<22} {:>14} {:>14} {:>9} {:>10}",
        "pruning (end-to-end)", "off ns/run", "bounds ns/run", "speedup", "skip rate"
    );
    for shape in GRID {
        let row = pruning_comparison(shape, 7, pruning_reps);
        let c = row.counters;
        println!(
            "n={:<6} m={:<3} k={:<4} {:>14} {:>14} {:>8.2}x {:>9.1}%",
            shape.n,
            shape.m,
            shape.k,
            row.unpruned_ns,
            row.pruned_ns,
            row.speedup,
            100.0 * c.skip_rate()
        );
        pruning_rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"unpruned_ns_per_run\": {}, \"pruned_ns_per_run\": {}, ",
                "\"speedup\": {:.3}, \"iterations\": {}, ",
                "\"skips\": {}, \"confirms\": {}, \"full_scans\": {}, ",
                "\"skip_rate\": {:.4}}}"
            ),
            shape.n,
            shape.m,
            shape.k,
            row.unpruned_ns,
            row.pruned_ns,
            row.speedup,
            row.iterations,
            c.skips,
            c.confirms,
            c.full_scans,
            c.skip_rate()
        ));
    }

    // Parallel scheduler grid: threads × {even, steal} on the acceptance
    // blob shape and on the load-skewed shape, pruning on; label identity
    // across every configuration is asserted inside `parallel_comparison`.
    let acceptance_shape = Shape {
        n: 10_000,
        m: 32,
        k: 20,
    };
    let threads_grid = [1usize, 2, 4, 8];
    let parallel_reps = 3;
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut parallel_rows = Vec::new();
    println!(
        "\n{:<10} {:<8} {:>8} {:>14} {:>9} {:>8} {:>12}",
        "parallel", "backend", "threads", "ns/run", "speedup", "steals", "revalidated"
    );
    for (workload_name, arena, labels) in [
        ("blob", blob_workload(acceptance_shape, 7)),
        ("skewed", skewed_workload(acceptance_shape, 7)),
    ]
    .map(|(name, (arena, labels))| (name, arena, labels))
    {
        let rows = parallel_comparison(
            &arena,
            &labels,
            acceptance_shape,
            parallel_reps,
            &threads_grid,
        );
        let base: Vec<(&str, u128)> = rows
            .iter()
            .filter(|r| r.threads == 1)
            .map(|r| (r.backend, r.ns_per_run))
            .collect();
        for row in rows {
            let base_ns = base
                .iter()
                .find(|(b, _)| *b == row.backend)
                .expect("1-thread row present")
                .1;
            let speedup = base_ns as f64 / row.ns_per_run as f64;
            println!(
                "{:<10} {:<8} {:>8} {:>14} {:>8.2}x {:>8} {:>12}",
                workload_name,
                row.backend,
                row.threads,
                row.ns_per_run,
                speedup,
                row.steals,
                row.revalidated
            );
            parallel_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, ",
                    "\"backend\": \"{}\", \"threads\": {}, \"ns_per_run\": {}, ",
                    "\"speedup_vs_1t\": {:.3}, \"steals\": {}, \"revalidated\": {}}}"
                ),
                workload_name,
                row.shape.n,
                row.shape.m,
                row.shape.k,
                row.backend,
                row.threads,
                row.ns_per_run,
                speedup,
                row.steals,
                row.revalidated
            ));
        }
    }

    // Streaming churn grid: IncrementalUcpc backends × pruning on a small
    // and the acceptance shape; labels and objective bits are asserted
    // identical across every configuration inside `streaming_comparison`.
    let streaming_reps = 3;
    let spec = ChurnSpec::default();
    let mut streaming_rows = Vec::new();
    println!(
        "\n{:<22} {:<8} {:<7} {:>14} {:>9} {:>10}",
        "streaming (churn)", "backend", "prune", "ns/window", "speedup", "skip rate"
    );
    for shape in [
        Shape {
            n: 2_000,
            m: 8,
            k: 5,
        },
        acceptance_shape,
    ] {
        let rows = streaming_comparison(shape, spec, 7, streaming_reps);
        let base: Vec<(&str, u128)> = rows
            .iter()
            .filter(|r| r.backend == "objects")
            .map(|r| (r.pruning, r.churn_ns))
            .collect();
        for row in rows {
            // Speedup of this row over the reference `objects` backend at
            // the same pruning configuration.
            let base_ns = base
                .iter()
                .find(|(p, _)| *p == row.pruning)
                .expect("objects row present")
                .1;
            let speedup = base_ns as f64 / row.churn_ns as f64;
            let c = row.counters;
            println!(
                "n={:<6} m={:<3} k={:<4} {:<8} {:<7} {:>14} {:>8.2}x {:>9.1}%",
                shape.n,
                shape.m,
                shape.k,
                row.backend,
                row.pruning,
                row.churn_ns,
                speedup,
                100.0 * c.skip_rate()
            );
            streaming_rows.push(format!(
                concat!(
                    "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                    "\"backend\": \"{}\", \"pruning\": \"{}\", ",
                    "\"churn_ns\": {}, \"speedup_vs_objects\": {:.3}, ",
                    "\"skips\": {}, \"confirms\": {}, \"full_scans\": {}, ",
                    "\"skip_rate\": {:.4}}}"
                ),
                shape.n,
                shape.m,
                shape.k,
                row.backend,
                row.pruning,
                row.churn_ns,
                speedup,
                c.skips,
                c.confirms,
                c.full_scans,
                c.skip_rate()
            ));
        }
    }

    // Serving grid: batched placement throughput and response latency
    // across micro-batch sizes, interleaved best-of-reps (see
    // `ucpc_bench::serving::serving_comparison`). Byte-identity across
    // batch sizes and vs the serial replay is asserted on every rep.
    let serving_reps = 5;
    let serving_spec = ServingSpec {
        arrivals: 4_000,
        commit_every: 16,
        top_k: 4,
    };
    let mut serving_rows = Vec::new();
    println!(
        "\n{:<22} {:>6} {:>12} {:>12} {:>14} {:>9}",
        "serving (open loop)", "batch", "p50 ns", "p99 ns", "arrivals/s", "vs b=1"
    );
    for shape in [
        Shape {
            n: 2_000,
            m: 16,
            k: 8,
        },
        acceptance_shape,
    ] {
        let rows = serving_comparison(shape, serving_spec, 7, serving_reps, &[1, 8, 16, 32]);
        let base = rows
            .iter()
            .find(|r| r.batch == 1)
            .expect("batch-1 row present")
            .arrivals_per_sec;
        for row in rows {
            let speedup = row.arrivals_per_sec / base;
            println!(
                "n={:<6} m={:<3} k={:<4} {:>6} {:>12} {:>12} {:>14.0} {:>8.2}x",
                shape.n,
                shape.m,
                shape.k,
                row.batch,
                row.p50_ns,
                row.p99_ns,
                row.arrivals_per_sec,
                speedup
            );
            serving_rows.push(format!(
                concat!(
                    "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"batch\": {}, ",
                    "\"p50_ns\": {}, \"p99_ns\": {}, ",
                    "\"arrivals_per_sec\": {:.0}, \"speedup_vs_batch1\": {:.3}}}"
                ),
                shape.n,
                shape.m,
                shape.k,
                row.batch,
                row.p50_ns,
                row.p99_ns,
                row.arrivals_per_sec,
                speedup
            ));
        }
    }

    // WAL overhead grid: the same open-loop stream served with the
    // write-ahead log detached vs logging every commit into an in-memory
    // sink, interleaved best-of-reps. Byte-identity vs the serial replay
    // is asserted for both legs, and recovery from (streaming checkpoint,
    // full log) is asserted bit-identical to the final partition — the
    // measurement doubles as an end-to-end durability check.
    let mut wal_rows = Vec::new();
    println!(
        "\n{:<22} {:>6} {:>14} {:>14} {:>10}",
        "wal (open loop)", "batch", "off arr/s", "on arr/s", "overhead"
    );
    for shape in [
        Shape {
            n: 2_000,
            m: 16,
            k: 8,
        },
        acceptance_shape,
    ] {
        let row = wal_comparison(shape, serving_spec, 7, serving_reps, 16);
        println!(
            "n={:<6} m={:<3} k={:<4} {:>6} {:>14.0} {:>14.0} {:>9.1}%",
            shape.n,
            shape.m,
            shape.k,
            row.batch,
            row.off_arrivals_per_sec,
            row.on_arrivals_per_sec,
            row.overhead_frac * 100.0
        );
        wal_rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"batch\": {}, ",
                "\"off_arrivals_per_sec\": {:.0}, \"on_arrivals_per_sec\": {:.0}, ",
                "\"overhead_frac\": {:.4}}}"
            ),
            shape.n,
            shape.m,
            shape.k,
            row.batch,
            row.off_arrivals_per_sec,
            row.on_arrivals_per_sec,
            row.overhead_frac
        ));
    }

    let acceptance = GRID
        .iter()
        .position(|s| s.n == 10_000 && s.m == 32 && s.k == 20)
        .expect("acceptance shape present in GRID");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"ucpc_relocation_pass\",\n",
            "  \"description\": \"one evaluation-only UCPC relocation pass: naive three-sweep ",
            "Corollary-1 path vs flat-arena scalar-aggregate delta-J kernel; the same kernel ",
            "pass under UCPC_SIMD=scalar vs the detected SIMD backend (labels asserted ",
            "byte-identical across backends); the full relocation phase with drift-bound ",
            "candidate pruning off vs on (clustered blob workload, pruned labels asserted ",
            "identical to unpruned); and the full ParallelUcpc relocation phase over threads x ",
            "{{even, steal}} backends on the acceptance blob shape and a load-skewed shape ",
            "(labels asserted byte-identical across every configuration; workloads built via ",
            "the zero-allocation assign_into_arena pipeline); and the IncrementalUcpc ",
            "streaming churn window (interleaved remove/insert/stabilize) over storage ",
            "backends {{objects, slab}} x pruning {{off, bounds}} — slab = free-list row ",
            "reuse + drift-tracked edits + surgical per-cluster cache invalidation, objects = ",
            "the seed per-object reference path with global epoch bumps (live labels and ",
            "objective bits asserted identical across all four configurations); and the ",
            "ServingUcpc serving grid — an open-loop placement-heavy request stream ",
            "(1 commit per 16 arrivals, top-4 answers) through the batched ",
            "assignment-serving front door across micro-batch sizes, interleaved ",
            "best-of-reps, final partition asserted byte-identical across batch sizes ",
            "and equal to a serial replay on every repetition; and the WAL overhead grid — ",
            "the same stream with the checksummed write-ahead log detached vs logging every ",
            "commit (in-memory sink), interleaved best-of-reps, with recovery from ",
            "(streaming v2 checkpoint, full log) asserted bit-identical to the final ",
            "partition on every emission\",\n",
            "  \"units\": \"nanoseconds (median of {reps} kernel / {preps} end-to-end / ",
            "{pareps} parallel / {sreps} streaming repetitions, best of {servreps} ",
            "interleaved serving repetitions, release profile)\",\n",
            "  \"acceptance_shape\": {{\"n\": 10000, \"m\": 32, \"k\": 20, ",
            // The pruning gate was 1.5 when PR 2 measured it against the
            // pre-SIMD kernel; the SIMD kernel made the skipped scans ~2x
            // cheaper, shrinking pruning's end-to-end win (see ROADMAP).
            "\"required_speedup\": 2.0, \"required_pruning_speedup\": 1.2, ",
            "\"required_simd_speedup\": 1.5, ",
            // Parallel gates: steal@8t >= 3x over steal@1t on the blob
            // acceptance shape, and steal >= 1.15x over even at 8 threads
            // on the skewed shape. Both compare thread-level parallelism,
            // so they are only evaluable on hosts with >= 8 cores —
            // "parallel_gates_evaluable" below records whether the emitting
            // host could exercise them (a single-core container cannot show
            // any multi-thread speedup, only the determinism asserts).
            // Streaming gate: the slab backend >= 1.5x over the seed
            // objects backend on the pruned (bounds) churn window at the
            // acceptance shape — the configuration where contiguity and
            // surgical invalidation both engage.
            "\"required_parallel_speedup\": 3.0, \"required_steal_advantage\": 1.15, ",
            // Serving gate: some batched row >= 1.5x the batch-size-1
            // arrivals/sec on the acceptance shape. Single-core noise on a
            // shared host moves both sides of that ratio; the serving grid
            // interleaves repetitions round-robin across batch sizes so a
            // slow window taxes every batch size alike.
            // Durability gate: logging every commit through the WAL into
            // an in-memory sink must cost < 15% of the WAL-off arrivals/sec
            // at the acceptance shape (the fsync policy is the deployment's
            // cost, not the encoder's; the gate prices framing + CRC +
            // group commit). Checked by `bench_serving --check`.
            "\"required_streaming_speedup\": 1.5, \"required_serving_speedup\": 1.5, ",
            "\"required_wal_overhead\": 0.15}},\n",
            "  \"acceptance_row_index\": {acceptance},\n",
            "  \"simd_backend\": \"{backend}\",\n",
            "  \"host_parallelism\": {host},\n",
            "  \"parallel_gates_evaluable\": {evaluable},\n",
            "  \"grid\": [\n{rows}\n  ],\n",
            "  \"simd_grid\": [\n{srows}\n  ],\n",
            "  \"pruning_grid\": [\n{prows}\n  ],\n",
            "  \"parallel_grid\": [\n{parows}\n  ],\n",
            "  \"streaming_grid\": [\n{strows}\n  ],\n",
            "  \"serving_grid\": [\n{servrows}\n  ],\n",
            "  \"wal_grid\": [\n{walrows}\n  ]\n",
            "}}\n",
        ),
        reps = reps,
        preps = pruning_reps,
        pareps = parallel_reps,
        sreps = streaming_reps,
        servreps = serving_reps,
        acceptance = acceptance,
        backend = simd_backend,
        host = host_parallelism,
        evaluable = host_parallelism >= 8,
        rows = rows.join(",\n"),
        srows = simd_rows.join(",\n"),
        prows = pruning_rows.join(",\n"),
        parows = parallel_rows.join(",\n"),
        strows = streaming_rows.join(",\n"),
        servrows = serving_rows.join(",\n"),
        walrows = wal_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
