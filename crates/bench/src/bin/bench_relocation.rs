//! Emits the machine-readable relocation baseline, `BENCH_relocation.json`:
//!
//! * median wall time of one evaluation-only UCPC relocation pass on the
//!   naive three-sweep path vs the scalar-aggregate delta-`J` kernel, over
//!   the shared n × m × k grid;
//! * the same kernel pass with the `UCPC_SIMD=scalar` backend forced vs the
//!   machine's detected SIMD backend (AVX2+FMA or NEON), with the full
//!   relocation phase asserted byte-identical between the two backends; and
//! * median wall time of the *full* relocation phase (all passes to
//!   convergence) with candidate pruning off vs on, on the clustered blob
//!   workload, with skip/scan counters — the pruned run is asserted
//!   label-identical to the unpruned one on every repetition.
//!
//! Usage: `cargo run --release -p ucpc-bench --bin bench_relocation
//! [output.json]` (default output path: `BENCH_relocation.json`).

use ucpc_bench::relocation::{
    kernel_pass, median_ns, naive_pass, pruning_comparison, simd_comparison, workload, GRID,
};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_relocation.json".into());
    let reps = 9;

    let mut rows = Vec::new();
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "shape", "naive ns/pass", "kernel ns/pass", "speedup"
    );
    for shape in GRID {
        let w = workload(shape, 7);
        let naive = median_ns(&w, reps, naive_pass);
        let kernel = median_ns(&w, reps, kernel_pass);
        let speedup = naive as f64 / kernel as f64;
        println!(
            "n={:<6} m={:<3} k={:<4} {naive:>14} {kernel:>14} {speedup:>8.2}x",
            shape.n, shape.m, shape.k
        );
        rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"naive_ns_per_pass\": {}, \"kernel_ns_per_pass\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            shape.n, shape.m, shape.k, naive, kernel, speedup
        ));
    }

    // Scalar backend vs the detected SIMD backend on the identical kernel
    // pass; `simd_comparison` additionally asserts byte-identical labels
    // from the full relocation phase under both backends.
    let mut simd_rows = Vec::new();
    let mut simd_backend = "scalar";
    println!(
        "\n{:<22} {:>14} {:>14} {:>9}",
        "simd (kernel pass)", "scalar ns/pass", "simd ns/pass", "speedup"
    );
    for shape in GRID {
        let row = simd_comparison(shape, 7, reps);
        if row.engaged {
            simd_backend = row.backend;
        }
        println!(
            "n={:<6} m={:<3} k={:<4} {:>14} {:>14} {:>8.2}x  [{}]",
            shape.n,
            shape.m,
            shape.k,
            row.scalar_ns,
            row.simd_ns,
            row.speedup,
            if row.engaged {
                row.backend
            } else {
                "below dispatch threshold — backend not engaged"
            }
        );
        simd_rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"scalar_ns_per_pass\": {}, \"simd_ns_per_pass\": {}, ",
                "\"speedup\": {:.3}, \"simd_engaged\": {}}}"
            ),
            shape.n, shape.m, shape.k, row.scalar_ns, row.simd_ns, row.speedup, row.engaged
        ));
    }

    // End-to-end relocation-phase comparison: pruning off vs on, clustered
    // data, label equality asserted inside `pruning_comparison`.
    let pruning_reps = 5;
    let mut pruning_rows = Vec::new();
    println!(
        "\n{:<22} {:>14} {:>14} {:>9} {:>10}",
        "pruning (end-to-end)", "off ns/run", "bounds ns/run", "speedup", "skip rate"
    );
    for shape in GRID {
        let row = pruning_comparison(shape, 7, pruning_reps);
        let c = row.counters;
        println!(
            "n={:<6} m={:<3} k={:<4} {:>14} {:>14} {:>8.2}x {:>9.1}%",
            shape.n,
            shape.m,
            shape.k,
            row.unpruned_ns,
            row.pruned_ns,
            row.speedup,
            100.0 * c.skip_rate()
        );
        pruning_rows.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"k\": {}, ",
                "\"unpruned_ns_per_run\": {}, \"pruned_ns_per_run\": {}, ",
                "\"speedup\": {:.3}, \"iterations\": {}, ",
                "\"skips\": {}, \"confirms\": {}, \"full_scans\": {}, ",
                "\"skip_rate\": {:.4}}}"
            ),
            shape.n,
            shape.m,
            shape.k,
            row.unpruned_ns,
            row.pruned_ns,
            row.speedup,
            row.iterations,
            c.skips,
            c.confirms,
            c.full_scans,
            c.skip_rate()
        ));
    }

    let acceptance = GRID
        .iter()
        .position(|s| s.n == 10_000 && s.m == 32 && s.k == 20)
        .expect("acceptance shape present in GRID");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"ucpc_relocation_pass\",\n",
            "  \"description\": \"one evaluation-only UCPC relocation pass: naive three-sweep ",
            "Corollary-1 path vs flat-arena scalar-aggregate delta-J kernel; the same kernel ",
            "pass under UCPC_SIMD=scalar vs the detected SIMD backend (labels asserted ",
            "byte-identical across backends); plus the full relocation phase with drift-bound ",
            "candidate pruning off vs on (clustered blob workload, pruned labels asserted ",
            "identical to unpruned)\",\n",
            "  \"units\": \"nanoseconds (median of {reps} kernel / {preps} end-to-end ",
            "repetitions, release profile)\",\n",
            "  \"acceptance_shape\": {{\"n\": 10000, \"m\": 32, \"k\": 20, ",
            // The pruning gate was 1.5 when PR 2 measured it against the
            // pre-SIMD kernel; the SIMD kernel made the skipped scans ~2x
            // cheaper, shrinking pruning's end-to-end win (see ROADMAP).
            "\"required_speedup\": 2.0, \"required_pruning_speedup\": 1.2, ",
            "\"required_simd_speedup\": 1.5}},\n",
            "  \"acceptance_row_index\": {acceptance},\n",
            "  \"simd_backend\": \"{backend}\",\n",
            "  \"grid\": [\n{rows}\n  ],\n",
            "  \"simd_grid\": [\n{srows}\n  ],\n",
            "  \"pruning_grid\": [\n{prows}\n  ]\n",
            "}}\n",
        ),
        reps = reps,
        preps = pruning_reps,
        acceptance = acceptance,
        backend = simd_backend,
        rows = rows.join(",\n"),
        srows = simd_rows.join(",\n"),
        prows = pruning_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
