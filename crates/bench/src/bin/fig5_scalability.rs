//! Reproduces **Figure 5**: scalability on the KDD Cup '99 dataset — dataset
//! size swept from 5% to 100% with all 23 classes covered in every subset,
//! `k = 23`, fastest algorithms only (UCPC, UK-means, MMVar, MinMax-BB,
//! VDBiP).
//!
//! The paper ran 4 million objects on an HPC cluster; the analogue defaults
//! to 40,000 objects on one machine (`--objects` raises it — the trends the
//! figure reports are linear in `n`, so the relative sweep is preserved at
//! any absolute size; see DESIGN.md).
//!
//! Flags:
//! * `--objects`  size of the 100% subset (default 40000; paper 4,000,000);
//! * `--seed`     base seed (default 2012);
//! * `--iters`    iteration cap for the iterative algorithms (default 10);
//! * `--samples`  samples/object for the pruning algorithms (default 8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_bench::args::Args;
use ucpc_bench::harness::{run_timed, Algo, RunConfig};
use ucpc_bench::report::Table;
use ucpc_datasets::benchmark::{generate_fraction, DatasetSpec, KDDCUP99};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};

const FRACTIONS: [f64; 6] = [0.05, 0.10, 0.25, 0.50, 0.75, 1.00];

fn main() {
    let args = Args::from_env();
    let objects = args.usize_or("objects", 40_000);
    let seed = args.u64_or("seed", 2012);
    let cfg = RunConfig {
        max_iters: args.usize_or("iters", 10),
        samples_per_object: args.usize_or("samples", 8),
    };

    // The KDD Cup '99 analogue at the configured absolute size.
    let spec = DatasetSpec {
        objects,
        ..KDDCUP99
    };
    let k = spec.classes;

    let mut table = Table::new(
        format!("Figure 5 — scalability on KDDCup99 analogue ({objects} objects, k={k}; ms)"),
        Algo::SCALABILITY.iter().map(|a| a.name().to_string()),
    );

    for frac in FRACTIONS {
        // Regenerate per fraction with all classes covered, as in the paper.
        let mut rng = StdRng::seed_from_u64(seed ^ (frac * 1e4) as u64);
        let d = generate_fraction(spec, frac, &mut rng);
        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        let data = a.uncertain_objects();

        let row: Vec<f64> = Algo::SCALABILITY
            .iter()
            .map(|&algo| {
                let out = run_timed(algo, &data, k, seed, &cfg)
                    .unwrap_or_else(|e| panic!("{} at {frac}: {e}", algo.name()));
                out.online.as_secs_f64() * 1e3
            })
            .collect();
        eprintln!("done: {:.0}% (n={})", frac * 100.0, data.len());
        table.push_row(format!("{:.0}%", frac * 100.0), row);
    }

    print!("{}", table.render());
    let p = table.save_csv("fig5_scalability.csv").expect("write csv");
    println!("\nCSV: {}", p.display());
}
