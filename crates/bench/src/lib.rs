//! # ucpc-bench — experiment harness for the paper's evaluation
//!
//! Shared machinery behind the four reproduction binaries:
//!
//! * `table2` — accuracy (Θ, Q) on the benchmark datasets (Table 2);
//! * `table3` — quality (Q) on the microarray datasets (Table 3);
//! * `fig4_efficiency` — clustering runtimes (Figure 4);
//! * `fig5_scalability` — scalability sweep on the KDD Cup '99 analogue
//!   (Figure 5);
//!
//! plus the Criterion micro-benchmarks under `benches/` and the
//! `bench_relocation` binary that emits the committed
//! `BENCH_relocation.json` baseline.
//!
//! Results print in the paper's row/column layout and are also written as
//! CSV under `target/experiments/`.
//!
//! ## The relocation baseline
//!
//! [`relocation`] is the shared workload behind the kernel-level numbers:
//! one evaluation-only UCPC relocation pass over a seeded n × m × k grid
//! ([`relocation::GRID`]), measured three ways —
//!
//! * [`relocation::naive_pass`] — the original three-sweep Corollary-1
//!   evaluation (per-dimension loops over `Moments`);
//! * [`relocation::kernel_pass`] — the production scan:
//!   `ucpc_core::pruning::best_candidate` over a flat
//!   [`ucpc_uncertain::MomentArena`], one fused (dot3-batched,
//!   runtime-dispatched) dot product per candidate;
//! * [`relocation::simd_comparison`] — the same kernel pass with the
//!   scalar backend forced vs the machine's detected SIMD backend
//!   (`ucpc_uncertain::simd`), asserting byte-identical labels from the
//!   full relocation phase under both;
//!
//! plus [`relocation::pruning_comparison`], the end-to-end relocation
//! phase with drift-bound candidate pruning off vs on,
//! [`relocation::parallel_comparison`], the full `ParallelUcpc` phase over
//! a threads × {even, steal} scheduler grid on clustered and load-skewed
//! workloads (both built through the zero-allocation
//! `PdfAssignment::assign_into_arena` pipeline), and
//! [`streaming::streaming_comparison`], the `IncrementalUcpc` churn loop
//! over storage backends × pruning (slab free-list reuse + surgical
//! invalidation vs the per-object reference path), and
//! [`serving::serving_comparison`], the batched assignment-serving front
//! door (`ucpc_core::serving::ServingUcpc`) under an open-loop placement
//! stream across micro-batch sizes, reporting p50/p99 response latency
//! and arrivals/sec (the `bench_serving` binary), and
//! [`sharded::sharded_comparison`], the coordinator/participant
//! replicated-log layer (`ucpc_core::sharded::ShardedUcpc`) over a shard
//! count × {clean, chaos} transport grid, reporting edit throughput
//! relative to single-node and the retry volume a lossy fabric induces
//! (the `bench_sharded` binary). Every comparison doubles as an exactness
//! check: any label divergence panics the bench.

#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod relocation;
pub mod report;
pub mod serving;
pub mod sharded;
pub mod streaming;
