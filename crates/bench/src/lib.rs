//! # ucpc-bench — experiment harness for the paper's evaluation
//!
//! Shared machinery behind the four reproduction binaries:
//!
//! * `table2` — accuracy (Θ, Q) on the benchmark datasets (Table 2);
//! * `table3` — quality (Q) on the microarray datasets (Table 3);
//! * `fig4_efficiency` — clustering runtimes (Figure 4);
//! * `fig5_scalability` — scalability sweep on the KDD Cup '99 analogue
//!   (Figure 5);
//!
//! plus the Criterion micro-benchmarks under `benches/`.
//!
//! Results print in the paper's row/column layout and are also written as
//! CSV under `target/experiments/`.

#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod relocation;
pub mod report;
