//! Minimal `--flag value` command-line parsing for the experiment binaries
//! (no external CLI dependency is in the approved set).

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`, skipping the binary name. Every flag must
    /// be of the form `--key value`.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument: {arg}");
            };
            let Some(value) = iter.next() else {
                panic!("flag --{key} is missing a value");
            };
            values.insert(key.to_string(), value);
        }
        Self { values }
    }

    /// A `usize` flag with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` flag with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` flag with a default (seeds).
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// A string flag with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_with_defaults() {
        let a = args(&["--runs", "10", "--scale", "0.5"]);
        assert_eq!(a.usize_or("runs", 3), 10);
        assert!((a.f64_or("scale", 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(a.usize_or("missing", 7), 7);
        assert_eq!(a.str_or("out", "x.csv"), "x.csv");
    }

    #[test]
    #[should_panic(expected = "missing a value")]
    fn dangling_flag_panics() {
        let _ = args(&["--runs"]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_argument_panics() {
        let _ = args(&["runs"]);
    }
}
