//! Serving-grid workload: the batched assignment-serving front door
//! ([`ServingUcpc`]) under an open-loop request stream, measured across
//! micro-batch sizes.
//!
//! The stream models the online deployment the serving layer exists for: a
//! settled live window, then a high-rate arrival stream where most
//! requests are *placement queries* (price an arrival, return the top-k
//! clusters with exact delta-`J` margins, commit nothing) and a fraction
//! are *commits* (place and insert). Every batch size replays the same
//! request stream; because the serving layer's batched pricing is
//! bit-identical to serial execution, the final partition must come out
//! byte-identical at every batch size **and** equal to a serial
//! [`IncrementalUcpc`] replay — asserted on every repetition, so the grid
//! doubles as an end-to-end serving exactness check.
//!
//! Measured per batch size: end-to-end arrivals/sec over the stream, and
//! the p50/p99 *response latency* (submission to answer availability —
//! batching trades queueing latency for pricing throughput, and the grid
//! records both sides of that trade).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ucpc_core::incremental::{IncrementalUcpc, StreamBackend};
use ucpc_core::pruning::PruningConfig;
use ucpc_core::serving::{ServingConfig, ServingUcpc};
use ucpc_core::wal::{recover, SharedVecIo, WalFsync};
use ucpc_uncertain::{Moments, UncertainObject, UnivariatePdf};

use crate::relocation::Shape;

/// Serving-stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServingSpec {
    /// Requests in the measured stream.
    pub arrivals: usize,
    /// Every `commit_every`-th request commits its arrival; the rest are
    /// placement queries.
    pub commit_every: usize,
    /// Top-k entries requested per answer.
    pub top_k: usize,
}

impl Default for ServingSpec {
    fn default() -> Self {
        Self {
            arrivals: 4_000,
            commit_every: 4,
            top_k: 4,
        }
    }
}

/// A ready-to-serve workload: the settled window and the request stream.
pub struct ServingWorkload {
    /// Objects committed before the measured stream (the settled window).
    pub window: Vec<Moments>,
    /// Arrivals served inside the measured window, in order.
    pub stream: Vec<Moments>,
    /// The modeled shape (`n` = window size, `m`, `k`).
    pub shape: Shape,
    /// The stream parameters.
    pub spec: ServingSpec,
}

/// Builds a seeded clustered (Gaussian-blob) serving workload, same
/// geometry as the streaming-churn workload: arrivals are drawn from the
/// window's blob centers so placements stay meaningful.
pub fn serving_workload(shape: Shape, spec: ServingSpec, seed: u64) -> ServingWorkload {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let mut draw = |i: usize| -> Moments {
        let c = &centers[i % k];
        UncertainObject::new(
            (0..m)
                .map(|j| {
                    UnivariatePdf::normal(c[j] + rng.gen_range(-1.5..1.5), rng.gen_range(0.1..0.6))
                })
                .collect(),
        )
        .moments()
        .clone()
    };
    let window: Vec<Moments> = (0..n).map(&mut draw).collect();
    let stream: Vec<Moments> = (0..spec.arrivals).map(&mut draw).collect();
    ServingWorkload {
        window,
        stream,
        shape,
        spec,
    }
}

/// Outcome of one serving run: the latency samples, the measured wall
/// time, and the final partition fingerprint for the identity assert.
pub struct ServingOutcome {
    /// Response latency (submit → answer available) per request, ns.
    pub latencies_ns: Vec<u128>,
    /// Wall time of the measured stream, ns.
    pub total_ns: u128,
    /// Live labels after the stream, in insertion order (handles strip to
    /// cluster assignments for cross-config comparison).
    pub labels: Vec<usize>,
    /// Final objective bits.
    pub objective_bits: u64,
}

/// Builds and settles the shared engine under the workload window: every
/// configuration (any batch size, and the serial reference) starts from
/// the identical partition.
fn settled_engine(w: &ServingWorkload) -> IncrementalUcpc {
    let mut engine =
        IncrementalUcpc::with_backend(w.shape.m, w.shape.k, StreamBackend::Slab).unwrap();
    engine.set_pruning(PruningConfig::Bounds);
    for mo in &w.window {
        engine.insert_moments(mo).expect("window insert");
    }
    engine.stabilize(5);
    engine
}

/// Runs the request stream through the serving layer at one batch size.
/// With `wal_sink`, every commit is logged through the write-ahead log
/// into the shared sink — the WAL-on leg of [`wal_comparison`].
pub fn serve_once(
    w: &ServingWorkload,
    batch: usize,
    wal_sink: Option<SharedVecIo>,
) -> ServingOutcome {
    let mut serving = ServingUcpc::over(
        settled_engine(w),
        ServingConfig {
            batch,
            // Occupancy never exceeds `batch` in this submit-then-poll open
            // loop, and the queue capacity sizes the staging arena — keeping
            // it tight keeps the priced rows L1-resident at every batch size.
            queue_capacity: batch,
            deadline: None,
            stabilize_every: 0,
            stabilize_passes: 2,
            top_k: w.spec.top_k,
            wal: false,
            wal_fsync: WalFsync::Flush,
        },
    );
    if let Some(sink) = wal_sink {
        serving
            .attach_wal(sink)
            .expect("in-memory sink cannot fault");
    }
    let total = w.stream.len();
    let mut submitted_at: Vec<Instant> = Vec::with_capacity(total);
    let mut latencies_ns: Vec<u128> = vec![0; total];
    let start = Instant::now();
    for (i, mo) in w.stream.iter().enumerate() {
        let ticket = if (i + 1) % w.spec.commit_every == 0 {
            serving.submit_commit(mo)
        } else {
            serving.submit_query(mo)
        }
        .expect("queue sized for the batch");
        debug_assert_eq!(ticket as usize, i);
        // One clock read per request (the submit stamp) plus one per
        // non-empty drain; extra reads here would tax every batch size by a
        // constant and blur the amortization the grid is measuring.
        let now = Instant::now();
        submitted_at.push(now);
        if serving.poll(now) > 0 {
            let drained_at = Instant::now();
            while let Some((t, _)) = serving.pop_response() {
                latencies_ns[t as usize] = drained_at
                    .duration_since(submitted_at[t as usize])
                    .as_nanos();
            }
        }
    }
    serving.flush();
    let drained_at = Instant::now();
    while let Some((t, _)) = serving.pop_response() {
        latencies_ns[t as usize] = drained_at
            .duration_since(submitted_at[t as usize])
            .as_nanos();
    }
    let total_ns = start.elapsed().as_nanos();
    let engine = serving.engine();
    ServingOutcome {
        latencies_ns,
        total_ns,
        labels: engine.live_labels().into_iter().map(|(_, c)| c).collect(),
        objective_bits: engine.objective().to_bits(),
    }
}

/// Replays the stream's commits serially — the reference the serving runs
/// must match byte for byte (queries are read-only and vanish).
pub fn serial_reference(w: &ServingWorkload) -> (Vec<usize>, u64) {
    let mut engine = settled_engine(w);
    for (i, mo) in w.stream.iter().enumerate() {
        if (i + 1) % w.spec.commit_every == 0 {
            engine.insert_moments(mo).expect("commit insert");
        }
    }
    (
        engine.live_labels().into_iter().map(|(_, c)| c).collect(),
        engine.objective().to_bits(),
    )
}

/// One row of the serving grid.
#[derive(Debug, Clone, Copy)]
pub struct ServingRow {
    /// The shape measured.
    pub shape: Shape,
    /// Micro-batch size.
    pub batch: usize,
    /// Median response latency, ns.
    pub p50_ns: u128,
    /// 99th-percentile response latency, ns.
    pub p99_ns: u128,
    /// End-to-end request throughput over the measured stream.
    pub arrivals_per_sec: f64,
}

/// Runs the stream at every batch size, `reps` repetitions each (best
/// throughput, latency percentiles from the matching run), asserting on
/// every repetition that the final partition is byte-identical across
/// batch sizes and equal to the serial reference. Repetitions are
/// interleaved round-robin across batch sizes so frequency scaling or a
/// noisy neighbour taxes every batch size alike instead of whichever ran
/// first.
pub fn serving_comparison(
    shape: Shape,
    spec: ServingSpec,
    seed: u64,
    reps: usize,
    batches: &[usize],
) -> Vec<ServingRow> {
    let w = serving_workload(shape, spec, seed);
    let (ref_labels, ref_bits) = serial_reference(&w);
    let mut bests: Vec<Option<ServingOutcome>> = (0..batches.len()).map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &batch) in batches.iter().enumerate() {
            let outcome = serve_once(&w, batch, None);
            assert_eq!(
                outcome.labels, ref_labels,
                "serving labels diverged from serial at batch {batch}"
            );
            assert_eq!(
                outcome.objective_bits, ref_bits,
                "serving objective bits diverged from serial at batch {batch}"
            );
            if bests[slot]
                .as_ref()
                .is_none_or(|b| outcome.total_ns < b.total_ns)
            {
                bests[slot] = Some(outcome);
            }
        }
    }
    let mut rows = Vec::new();
    for (slot, &batch) in batches.iter().enumerate() {
        let mut best = bests[slot].take().expect("reps >= 1");
        best.latencies_ns.sort_unstable();
        let pct = |p: f64| -> u128 {
            let idx = ((best.latencies_ns.len() as f64 - 1.0) * p).round() as usize;
            best.latencies_ns[idx]
        };
        rows.push(ServingRow {
            shape,
            batch,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            arrivals_per_sec: w.stream.len() as f64 / (best.total_ns as f64 * 1e-9),
        });
    }
    rows
}

/// One row of the WAL-overhead grid: the same stream served with logging
/// off and on, interleaved.
#[derive(Debug, Clone, Copy)]
pub struct WalRow {
    /// The shape measured.
    pub shape: Shape,
    /// Micro-batch size.
    pub batch: usize,
    /// Best throughput with the WAL detached.
    pub off_arrivals_per_sec: f64,
    /// Best throughput logging every commit through the WAL.
    pub on_arrivals_per_sec: f64,
    /// Fractional throughput lost to logging: `(off - on) / off`.
    pub overhead_frac: f64,
}

/// Measures WAL-on vs WAL-off serving throughput at one batch size,
/// `reps` repetitions each, interleaved off/on so ambient noise taxes
/// both legs alike. Asserts on every repetition that both legs end
/// byte-identical to the serial reference, and — once per call — that
/// [`recover`] from (streaming checkpoint of the settled window, the
/// WAL-on leg's log) rebuilds the exact final partition: the grid doubles
/// as an end-to-end durability check.
pub fn wal_comparison(
    shape: Shape,
    spec: ServingSpec,
    seed: u64,
    reps: usize,
    batch: usize,
) -> WalRow {
    let w = serving_workload(shape, spec, seed);
    let (ref_labels, ref_bits) = serial_reference(&w);
    let checkpoint = settled_engine(&w).snapshot_v2();
    let mut best_off: Option<u128> = None;
    let mut best_on: Option<u128> = None;
    let mut log_bytes: Option<Vec<u8>> = None;
    for _ in 0..reps.max(1) {
        for logging in [false, true] {
            let sink = logging.then(SharedVecIo::new);
            let outcome = serve_once(&w, batch, sink.clone());
            assert_eq!(
                outcome.labels, ref_labels,
                "serving labels diverged from serial (wal={logging})"
            );
            assert_eq!(
                outcome.objective_bits, ref_bits,
                "serving objective bits diverged from serial (wal={logging})"
            );
            let best = if logging { &mut best_on } else { &mut best_off };
            if best.is_none_or(|b| outcome.total_ns < b) {
                *best = Some(outcome.total_ns);
            }
            if let Some(sink) = sink {
                log_bytes.get_or_insert_with(|| sink.bytes());
            }
        }
    }
    let rec = recover(&checkpoint, log_bytes.as_deref().unwrap_or(&[]))
        .expect("checkpoint + intact log must recover");
    assert!(rec.damage.is_none(), "uncut log reported damage");
    let rec_labels: Vec<usize> = rec
        .engine
        .live_labels()
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    assert_eq!(rec_labels, ref_labels, "recovered labels diverged");
    assert_eq!(
        rec.engine.objective().to_bits(),
        ref_bits,
        "recovered objective bits diverged"
    );
    let rate = |ns: u128| w.stream.len() as f64 / (ns as f64 * 1e-9);
    let off = rate(best_off.expect("reps >= 1"));
    let on = rate(best_on.expect("reps >= 1"));
    WalRow {
        shape,
        batch,
        off_arrivals_per_sec: off,
        on_arrivals_per_sec: on,
        overhead_frac: (off - on) / off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_grid_is_exact_across_batch_sizes() {
        let shape = Shape {
            n: 300,
            m: 16,
            k: 4,
        };
        let spec = ServingSpec {
            arrivals: 120,
            commit_every: 3,
            top_k: 4,
        };
        // Byte-identity vs the serial reference asserted inside, at every
        // batch size.
        let rows = serving_comparison(shape, spec, 13, 1, &[1, 7, 32]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.arrivals_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.p50_ns <= r.p99_ns));
    }

    #[test]
    fn wal_grid_recovers_and_measures_both_legs() {
        let shape = Shape {
            n: 300,
            m: 16,
            k: 4,
        };
        let spec = ServingSpec {
            arrivals: 120,
            commit_every: 3,
            top_k: 4,
        };
        // Serial identity and end-to-end recovery asserted inside.
        let row = wal_comparison(shape, spec, 13, 1, 16);
        assert!(row.off_arrivals_per_sec > 0.0);
        assert!(row.on_arrivals_per_sec > 0.0);
        assert!(row.overhead_frac < 1.0);
    }
}
