//! Shared workload for the relocation-kernel micro-benchmark: the UCPC inner
//! loop evaluated two ways over identical data — the original naive
//! three-sweep path (`j_after_remove` + (k−1) × `j_after_add` against cached
//! cluster objectives) and the scalar-aggregate delta-`J` kernel (one fused
//! dot product per candidate, moments read from the flat [`MomentArena`]).
//!
//! Both the criterion bench (`benches/relocation_kernel.rs`) and the
//! `bench_relocation` binary (which emits the machine-readable
//! `BENCH_relocation.json` baseline) drive these functions, so the numbers
//! in the report and the JSON come from the same code path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ucpc_core::objective::ClusterStats;
use ucpc_core::parallel::{ParallelBackend, ParallelUcpc};
use ucpc_core::pruning::{best_candidate, PruneCounters, PruningConfig};
use ucpc_core::Ucpc;
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, SpreadScaling, UncertaintyModel};
use ucpc_uncertain::simd::{self, Backend};
use ucpc_uncertain::{MomentArena, UncertainObject, UnivariatePdf};

/// One grid point of the benchmark: `n` objects, `m` dimensions, `k` clusters.
#[derive(Debug, Clone, Copy)]
pub struct Shape {
    /// Number of objects.
    pub n: usize,
    /// Number of dimensions.
    pub m: usize,
    /// Number of clusters.
    pub k: usize,
}

/// The default n × m × k grid, including the acceptance point
/// (n=10000, m=32, k=20).
pub const GRID: [Shape; 3] = [
    Shape {
        n: 2_000,
        m: 8,
        k: 5,
    },
    Shape {
        n: 10_000,
        m: 32,
        k: 20,
    },
    Shape {
        n: 10_000,
        m: 64,
        k: 10,
    },
];

/// A ready-to-scan workload: the dataset in both representations plus a
/// label assignment and per-cluster statistics.
pub struct Workload {
    /// The objects (consumed by the naive path through `Moments`).
    pub data: Vec<UncertainObject>,
    /// The same moments in flat SoA form (consumed by the kernel path).
    pub arena: MomentArena,
    /// Cluster assignment, every cluster non-empty.
    pub labels: Vec<usize>,
    /// Per-cluster sufficient statistics for `labels`.
    pub stats: Vec<ClusterStats>,
    /// Number of clusters.
    pub k: usize,
}

/// Builds a seeded Gaussian workload for one grid shape.
pub fn workload(shape: Shape, seed: u64) -> Workload {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<UncertainObject> = (0..n)
        .map(|_| {
            UncertainObject::new(
                (0..m)
                    .map(|_| {
                        UnivariatePdf::normal(rng.gen_range(-10.0..10.0), rng.gen_range(0.1..1.5))
                    })
                    .collect(),
            )
        })
        .collect();
    let labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect();
    let arena = MomentArena::from_objects(&data);
    let mut stats = vec![ClusterStats::empty(m); k];
    for (i, &l) in labels.iter().enumerate() {
        stats[l].add_view(&arena.view(i));
    }
    Workload {
        data,
        arena,
        labels,
        stats,
        k,
    }
}

/// One evaluation-only relocation pass on the naive three-sweep path: for
/// every object, `J(src − o)` plus `J(dst + o)` for each of the k−1
/// candidates, against cached per-cluster objectives — exactly the work the
/// pre-kernel UCPC inner loop performed. Returns the sum of best deltas (a
/// value the optimizer cannot discard).
pub fn naive_pass(w: &Workload) -> f64 {
    let j_cache: Vec<f64> = w.stats.iter().map(ClusterStats::j_naive).collect();
    let mut acc = 0.0;
    for (i, o) in w.data.iter().enumerate() {
        let src = w.labels[i];
        if w.stats[src].size() <= 1 {
            continue;
        }
        let moments = o.moments();
        let removal_gain = w.stats[src].j_after_remove(moments) - j_cache[src];
        let mut best = f64::INFINITY;
        for (dst, (stat, cached)) in w.stats.iter().zip(&j_cache).enumerate() {
            if dst == src {
                continue;
            }
            let delta = removal_gain + stat.j_after_add(moments) - cached;
            if delta < best {
                best = delta;
            }
        }
        acc += best;
    }
    acc
}

/// The same evaluation-only pass on the scalar-aggregate delta-`J` kernel:
/// one fused dot product per candidate over the arena's contiguous rows,
/// routed through [`best_candidate`] — the exact (dot3-batched, runtime-
/// dispatched) scan the relocation drivers run, so this measures the
/// production code path under whichever SIMD backend is active.
pub fn kernel_pass(w: &Workload) -> f64 {
    let mut acc = 0.0;
    for i in 0..w.arena.len() {
        let src = w.labels[i];
        if w.stats[src].size() <= 1 {
            continue;
        }
        let v = w.arena.view(i);
        if let Some((_, delta)) = best_candidate(&w.stats, src, &v) {
            acc += delta;
        }
    }
    acc
}

/// The Section-5.1 uncertainty model the arena-native workloads inject:
/// Normal pdfs with spreads proportional to the per-dimension standard
/// deviation (so the noise scale tracks the blob geometry, not individual
/// coordinate magnitudes).
fn bench_model() -> UncertaintyModel {
    UncertaintyModel {
        scaling: SpreadScaling::DimStd,
        spread_range: (0.02, 0.2),
        ..UncertaintyModel::paper_default(NoiseKind::Normal)
    }
}

/// Builds an arena straight from deterministic points through the
/// `PdfAssignment` pipeline — the batch path the relocation benchmarks
/// default to: pdfs are assigned per point and their truncated moments are
/// written into a pre-reserved [`MomentArena`] with zero per-object heap
/// allocations (`assign_into_arena`); no `UncertainObject` is ever
/// materialized.
fn arena_from_points(points: &[Vec<f64>], rng: &mut StdRng) -> MomentArena {
    let m = points[0].len();
    let inv = 1.0 / points.len() as f64;
    let mut mean = vec![0.0f64; m];
    for p in points {
        for j in 0..m {
            mean[j] += p[j];
        }
    }
    let mut dim_std = vec![0.0f64; m];
    for p in points {
        for j in 0..m {
            let d = p[j] - mean[j] * inv;
            dim_std[j] += d * d;
        }
    }
    for s in &mut dim_std {
        *s = (*s * inv).sqrt().max(1e-9);
    }
    let assignment = PdfAssignment::assign(points, &dim_std, &bench_model(), rng);
    let mut arena = MomentArena::with_capacity(points.len(), m);
    assignment.assign_into_arena(&mut arena);
    arena
}

/// A clustered (Gaussian-blob) workload for the end-to-end pruned-vs-unpruned
/// relocation-phase comparison. Candidate pruning pays off exactly when most
/// objects' cluster neighborhoods are stable — the regime of the paper's
/// datasets — so the pruning benchmark runs on clusterable data; the uniform
/// [`workload`] above (no structure, every margin small) remains the kernel
/// microbench substrate and doubles as pruning's adversarial case. Built
/// through the arena-native `assign_into_arena` pipeline.
pub fn blob_workload(shape: Shape, seed: u64) -> (MomentArena, Vec<usize>) {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centers[i % k];
            (0..m).map(|j| c[j] + rng.gen_range(-1.5..1.5)).collect()
        })
        .collect();
    let arena = arena_from_points(&points, &mut rng);
    let labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect();
    (arena, labels)
}

/// A load-skewed clustered workload for the scheduler comparison: the first
/// quarter of the objects sits in the ambiguous midpoint region between two
/// cluster centers (tiny decision margins — the pruning bounds can rarely
/// retire them, so they pay the full `k−1` candidate scan pass after pass),
/// while the remaining three quarters form tight, well-separated blobs that
/// tier-0 drift tests skip in O(1) after the first passes. Because the hard
/// objects are contiguous at the front, even chunking concentrates nearly
/// all scan work on the first worker(s); work stealing redistributes it.
/// Built through the arena-native `assign_into_arena` pipeline.
pub fn skewed_workload(shape: Shape, seed: u64) -> (MomentArena, Vec<usize>) {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    // Center c sits 40 units along axis (c mod m): pairwise separation is
    // comfortably larger than any blob or jitter scale.
    let center = |c: usize, j: usize| if j == c % m { 40.0 } else { 0.0 };
    let hard = n / 4;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            if i < hard {
                // Midway between centers 0 and 1, jittered: ambiguous.
                (0..m)
                    .map(|j| 0.5 * (center(0, j) + center(1 % k, j)) + rng.gen_range(-2.0..2.0))
                    .collect()
            } else {
                let c = i % k;
                (0..m)
                    .map(|j| center(c, j) + rng.gen_range(-0.5..0.5))
                    .collect()
            }
        })
        .collect();
    let arena = arena_from_points(&points, &mut rng);
    let labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect();
    (arena, labels)
}

/// One grid row of the end-to-end pruning comparison.
#[derive(Debug, Clone)]
pub struct PruningRow {
    /// The shape measured.
    pub shape: Shape,
    /// Median wall time of the full relocation phase, pruning off.
    pub unpruned_ns: u128,
    /// Median wall time of the full relocation phase, pruning on.
    pub pruned_ns: u128,
    /// `unpruned_ns / pruned_ns`.
    pub speedup: f64,
    /// Skip/scan counters of the last pruned run.
    pub counters: PruneCounters,
    /// Passes until convergence (identical for both configurations).
    pub iterations: usize,
}

/// Runs the full UCPC relocation phase (identical arena + initial labels)
/// with pruning off and on, `reps` times each, and reports median wall
/// times. Asserts — on every repetition — that the two runs produce
/// identical labels and iteration counts: the benchmark doubles as an
/// end-to-end exactness check.
pub fn pruning_comparison(shape: Shape, seed: u64, reps: usize) -> PruningRow {
    let (arena, labels) = blob_workload(shape, seed);
    let algo = |pruning| Ucpc {
        pruning,
        ..Ucpc::default()
    };

    let mut unpruned_ns = Vec::with_capacity(reps);
    let mut pruned_ns = Vec::with_capacity(reps);
    let mut counters = PruneCounters::default();
    let mut iterations = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let off = algo(PruningConfig::Off)
            .run_on_arena(&arena, shape.k, labels.clone())
            .expect("unpruned run");
        unpruned_ns.push(t.elapsed().as_nanos());

        let t = Instant::now();
        let on = algo(PruningConfig::Bounds)
            .run_on_arena(&arena, shape.k, labels.clone())
            .expect("pruned run");
        pruned_ns.push(t.elapsed().as_nanos());

        assert_eq!(
            off.clustering.labels(),
            on.clustering.labels(),
            "pruned relocation phase diverged from the reference"
        );
        assert_eq!(off.iterations, on.iterations);
        counters = on.pruning;
        iterations = on.iterations;
    }
    unpruned_ns.sort_unstable();
    pruned_ns.sort_unstable();
    let unpruned = unpruned_ns[unpruned_ns.len() / 2];
    let pruned = pruned_ns[pruned_ns.len() / 2];
    PruningRow {
        shape,
        unpruned_ns: unpruned,
        pruned_ns: pruned,
        speedup: unpruned as f64 / pruned as f64,
        counters,
        iterations,
    }
}

/// One grid row of the parallel scheduler comparison.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// The shape measured.
    pub shape: Shape,
    /// Worker threads of the propose phase.
    pub threads: usize,
    /// Backend name (`"even"` or `"steal"`).
    pub backend: &'static str,
    /// Median wall time of the full relocation phase.
    pub ns_per_run: u128,
    /// Shards claimed across worker-run boundaries (steal backend only).
    pub steals: usize,
    /// Apply-phase proposals that had to be re-priced (on the steal backend
    /// only the version-staled ones; on even, every survivor).
    pub revalidated: usize,
    /// Relocations applied (identical across every configuration).
    pub applied: usize,
}

/// Runs the full parallel relocation phase (identical arena + initial
/// labels, candidate pruning on) for every combination of `threads_grid`
/// and the two scheduling backends, `reps` repetitions each, reporting
/// median wall times. Asserts — on every repetition — that all
/// configurations produce byte-identical labels and identical pass/apply
/// counts: the benchmark doubles as an end-to-end scheduler-determinism
/// check.
pub fn parallel_comparison(
    arena: &MomentArena,
    labels: &[usize],
    shape: Shape,
    reps: usize,
    threads_grid: &[usize],
) -> Vec<ParallelRow> {
    let mut reference: Option<(Vec<usize>, usize, usize)> = None;
    let mut rows = Vec::new();
    for backend in [ParallelBackend::Even, ParallelBackend::Steal] {
        for &threads in threads_grid {
            let algo = ParallelUcpc {
                threads,
                backend,
                pruning: PruningConfig::Bounds,
                ..ParallelUcpc::default()
            };
            let mut ns = Vec::with_capacity(reps);
            let mut last = None;
            for _ in 0..reps {
                let init = labels.to_vec();
                let t = Instant::now();
                let r = algo
                    .run_on_arena(arena, shape.k, init)
                    .expect("parallel relocation run");
                ns.push(t.elapsed().as_nanos());
                match &reference {
                    Some((ref_labels, iters, applied)) => {
                        assert_eq!(
                            ref_labels.as_slice(),
                            r.clustering.labels(),
                            "labels diverged: {} backend, {threads} threads",
                            backend.name()
                        );
                        assert_eq!(*iters, r.iterations);
                        assert_eq!(*applied, r.applied);
                    }
                    None => {
                        reference = Some((r.clustering.labels().to_vec(), r.iterations, r.applied))
                    }
                }
                last = Some(r);
            }
            let r = last.expect("reps >= 1");
            ns.sort_unstable();
            rows.push(ParallelRow {
                shape,
                threads,
                backend: backend.name(),
                ns_per_run: ns[ns.len() / 2],
                steals: r.steals,
                revalidated: r.revalidated,
                applied: r.applied,
            });
        }
    }
    rows
}

/// Median nanoseconds per call of `f` over `reps` timed repetitions (after
/// one warm-up call). The accumulated objective stays observable so the
/// passes cannot be optimized away.
pub fn median_ns(w: &Workload, reps: usize, f: fn(&Workload) -> f64) -> u128 {
    let mut sink = 0.0;
    sink += f(w); // warm-up
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            sink += f(w);
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    assert!(
        sink.is_finite(),
        "benchmark payload produced a non-finite objective"
    );
    samples[samples.len() / 2]
}

/// One grid row of the scalar-vs-SIMD kernel comparison.
#[derive(Debug, Clone)]
pub struct SimdRow {
    /// The shape measured.
    pub shape: Shape,
    /// Median wall time of one kernel pass under `UCPC_SIMD=scalar`.
    pub scalar_ns: u128,
    /// Median wall time of the same pass under the detected SIMD backend.
    pub simd_ns: u128,
    /// `scalar_ns / simd_ns`.
    pub speedup: f64,
    /// `UCPC_SIMD` name of the SIMD backend measured (`"scalar"` when the
    /// machine has no vector backend and the row is a self-comparison).
    pub backend: &'static str,
    /// Whether the SIMD backend actually engages on this shape. `false`
    /// when `m` is below [`ucpc_uncertain::simd::DISPATCH_THRESHOLD`] (both
    /// legs then run the identical inlined short-row path and the measured
    /// "speedup" is timing noise) or when the machine has no vector
    /// backend.
    pub engaged: bool,
}

/// Times one evaluation-only kernel pass with the scalar backend forced and
/// with the machine's best SIMD backend, and — because the backends promise
/// bit-identical results, not just close ones — runs the *full* UCPC
/// relocation phase under both and asserts byte-identical labels. The
/// process is restored to whatever backend was active on entry (the
/// env-resolved one on first use), so surrounding measurements keep
/// honouring `UCPC_SIMD`.
pub fn simd_comparison(shape: Shape, seed: u64, reps: usize) -> SimdRow {
    let w = workload(shape, seed);
    let restore = simd::active_backend();
    let best = Backend::detect();

    simd::force_backend(Backend::Scalar).expect("scalar backend always available");
    let scalar_ns = median_ns(&w, reps, kernel_pass);
    simd::force_backend(best).expect("detected backend must be available");
    let simd_ns = median_ns(&w, reps, kernel_pass);

    // End-to-end exactness: identical labels from the full relocation phase
    // under the scalar backend and under the SIMD backend.
    let (arena, labels) = blob_workload(shape, seed);
    simd::force_backend(Backend::Scalar).expect("scalar backend always available");
    let scalar_run = Ucpc::default()
        .run_on_arena(&arena, shape.k, labels.clone())
        .expect("scalar-backend run");
    simd::force_backend(best).expect("detected backend must be available");
    let simd_run = Ucpc::default()
        .run_on_arena(&arena, shape.k, labels)
        .expect("SIMD-backend run");
    assert_eq!(
        scalar_run.clustering.labels(),
        simd_run.clustering.labels(),
        "SIMD backend diverged from the scalar reference"
    );
    assert_eq!(scalar_run.iterations, simd_run.iterations);
    simd::force_backend(restore).expect("previously active backend must be available");

    SimdRow {
        shape,
        scalar_ns,
        simd_ns,
        speedup: scalar_ns as f64 / simd_ns as f64,
        backend: best.name(),
        engaged: best != Backend::Scalar && shape.m >= simd::DISPATCH_THRESHOLD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_on_the_same_workload() {
        let w = workload(Shape { n: 200, m: 6, k: 4 }, 42);
        let naive = naive_pass(&w);
        let kernel = kernel_pass(&w);
        assert!(
            (naive - kernel).abs() <= 1e-9 * (1.0 + naive.abs()),
            "naive {naive} vs kernel {kernel}"
        );
    }

    #[test]
    fn workload_clusters_are_nonempty() {
        let w = workload(Shape { n: 50, m: 3, k: 7 }, 1);
        assert!(w.stats.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn simd_comparison_is_exact_across_backends() {
        // Small shape: the point here is the byte-identical-labels assertion
        // inside `simd_comparison`, not the timing.
        let row = simd_comparison(
            Shape {
                n: 300,
                m: 32,
                k: 7,
            },
            3,
            2,
        );
        assert!(row.scalar_ns > 0 && row.simd_ns > 0);
    }

    #[test]
    fn parallel_comparison_is_deterministic_across_the_grid() {
        let shape = Shape { n: 300, m: 8, k: 4 };
        let (arena, labels) = skewed_workload(shape, 5);
        let rows = parallel_comparison(&arena, &labels, shape, 2, &[1, 3]);
        // 2 backends × 2 thread counts; label identity asserted inside.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.ns_per_run > 0));
        assert!(rows
            .iter()
            .filter(|r| r.backend == "even")
            .all(|r| r.steals == 0));
    }

    #[test]
    fn pruning_comparison_is_exact_and_skips() {
        let row = pruning_comparison(Shape { n: 400, m: 8, k: 5 }, 11, 2);
        // `pruning_comparison` asserts label equality internally; here we
        // additionally require the bounds to have fired at all.
        assert!(
            row.counters.skips + row.counters.confirms > 0,
            "no candidate scan was ever pruned: {:?}",
            row.counters
        );
    }
}
