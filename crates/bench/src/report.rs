//! Result tables: paper-style stdout rendering plus CSV persistence under
//! `target/experiments/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A rectangular result table with row labels and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: impl IntoIterator<Item = String>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the value count must match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column-wise means over all current rows (used for the paper's
    /// "avg score" rows).
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.columns.len()];
        if self.rows.is_empty() {
            return means;
        }
        for (_, vals) in &self.rows {
            for (m, v) in means.iter_mut().zip(vals) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows.len() as f64;
        }
        means
    }

    /// Renders the table in the paper's fixed-width style
    /// (three decimals, leading label column).
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.title.len().min(24)))
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(6)
            .max(7);

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, " {c:>col_w$}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in vals {
                let _ = write!(out, " {v:>col_w$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "label");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label}");
            for v in vals {
                let _ = write!(out, ",{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV under `target/experiments/<file>` and returns the path.
    pub fn save_csv(&self, file: &str) -> io::Result<PathBuf> {
        let dir = experiments_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(file);
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// `target/experiments/` relative to the workspace (falls back to the current
/// directory when `CARGO_MANIFEST_DIR` is absent at runtime).
pub fn experiments_dir() -> PathBuf {
    // The binaries run from the workspace root via `cargo run`; resolve
    // against the workspace target dir.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", ["A".to_string(), "B".to_string()]);
        t.push_row("r1", vec![1.0, -0.5]);
        t.push_row("r2", vec![3.0, 0.5]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().render();
        assert!(s.contains("demo"));
        assert!(s.contains("r1") && s.contains("r2"));
        assert!(s.contains("1.000") && s.contains("-0.500"));
    }

    #[test]
    fn csv_round_trip_structure() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "label,A,B");
        assert!(lines[1].starts_with("r1,"));
    }

    #[test]
    fn column_means_average_rows() {
        let means = sample().column_means();
        assert!((means[0] - 2.0).abs() < 1e-12);
        assert!((means[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn save_csv_writes_file() {
        let path = sample().save_csv("report_test.csv").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("label,A,B"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", ["A".to_string()]);
        t.push_row("r", vec![1.0, 2.0]);
    }
}
