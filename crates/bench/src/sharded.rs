//! Sharded-engine workload: the coordinator/participant replicated-log
//! layer ([`ShardedUcpc`]) driven through a seeded edit stream at a grid
//! of shard counts, on a clean transport and under a mixed chaos schedule
//! (drops + duplicates + reorders + bounded delays).
//!
//! The sharded engine exists for fault tolerance, not speedup — every
//! propose/apply round is a lockstep message exchange, so adding shards
//! adds coordination. What the grid pins down is the *cost* of that
//! coordination (edits/sec relative to the single-node engine on the
//! same stream) and the retry volume a lossy fabric induces. Every run
//! asserts the final partition byte-identical to a serial
//! [`IncrementalUcpc`] replay — the measurement doubles as the
//! end-to-end replication-exactness check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ucpc_core::fault::ChaosPlan;
use ucpc_core::incremental::IncrementalUcpc;
use ucpc_core::sharded::ShardedUcpc;
use ucpc_uncertain::{Moments, UncertainObject, UnivariatePdf};

use crate::relocation::Shape;

/// Sharded-stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShardedSpec {
    /// Edits in the measured stream (inserts; every fourth edit past the
    /// warm window also removes an earlier object).
    pub edits: usize,
    /// A stabilize round (2 passes) every this many edits (0 = never).
    pub stabilize_every: usize,
}

impl Default for ShardedSpec {
    fn default() -> Self {
        Self {
            edits: 600,
            stabilize_every: 40,
        }
    }
}

/// A seeded clustered edit stream, same blob geometry as the serving
/// workload: `shape.n` warm inserts, then `spec.edits` measured edits.
pub struct ShardedWorkload {
    /// Objects inserted before measurement starts.
    pub warm: Vec<Moments>,
    /// Arrivals inserted during the measured stream, in order.
    pub stream: Vec<Moments>,
    /// The modeled shape (`n` = warm-window size, `m`, `k`).
    pub shape: Shape,
    /// The stream parameters.
    pub spec: ShardedSpec,
}

/// Builds the seeded workload.
pub fn sharded_workload(shape: Shape, spec: ShardedSpec, seed: u64) -> ShardedWorkload {
    let Shape { n, m, k } = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let mut draw = |i: usize| -> Moments {
        let c = &centers[i % k];
        UncertainObject::new(
            (0..m)
                .map(|j| {
                    UnivariatePdf::normal(c[j] + rng.gen_range(-1.5..1.5), rng.gen_range(0.1..0.6))
                })
                .collect(),
        )
        .moments()
        .clone()
    };
    ShardedWorkload {
        warm: (0..n).map(&mut draw).collect(),
        stream: (0..spec.edits).map(&mut draw).collect(),
        shape,
        spec,
    }
}

/// Outcome of one sharded run over the measured stream.
pub struct ShardedOutcome {
    /// Wall time of the measured stream, ns.
    pub total_ns: u128,
    /// Replicated-log rounds committed over the whole run.
    pub committed_rounds: u64,
    /// Retransmissions the transport forced.
    pub retries: u64,
    /// Live labels after the stream, in slot order.
    pub labels: Vec<usize>,
    /// Final objective bits.
    pub objective_bits: u64,
}

/// Drives one engine (sharded at `shards`, or the single-node reference
/// when `shards == 0`) through the workload: warm inserts, then the
/// measured stream with interleaved removes and stabilize rounds.
fn drive(w: &ShardedWorkload, shards: usize, plan: Option<ChaosPlan>) -> ShardedOutcome {
    let Shape { m, k, .. } = w.shape;
    #[allow(clippy::large_enum_variant)] // one instance per run, never collected
    enum Engine {
        Single(IncrementalUcpc),
        Sharded(ShardedUcpc),
    }
    let mut engine = if shards == 0 {
        Engine::Single(IncrementalUcpc::new(m, k).expect("shape is valid"))
    } else {
        Engine::Sharded(match plan {
            Some(p) => ShardedUcpc::with_chaos(m, k, shards, p).expect("shape is valid"),
            None => ShardedUcpc::new(m, k, shards).expect("shape is valid"),
        })
    };
    let mut handles = Vec::with_capacity(w.warm.len() + w.stream.len());
    let insert = |e: &mut Engine, mo: &Moments| match e {
        Engine::Single(s) => s.insert_moments(mo).expect("insert"),
        Engine::Sharded(s) => s.insert_moments(mo).expect("insert"),
    };
    for mo in &w.warm {
        handles.push(insert(&mut engine, mo));
    }
    match &mut engine {
        Engine::Single(s) => s.stabilize(3),
        Engine::Sharded(s) => s.stabilize(3),
    };

    let start = Instant::now();
    for (i, mo) in w.stream.iter().enumerate() {
        handles.push(insert(&mut engine, mo));
        if i % 4 == 3 {
            // Remove a deterministic earlier survivor: churn keeps the
            // free-list and relocation paths hot without shrinking the
            // window below the warm size.
            let victim = handles.swap_remove((i * 7) % handles.len());
            match &mut engine {
                Engine::Single(s) => s.remove(victim).expect("remove"),
                Engine::Sharded(s) => s.remove(victim).expect("remove"),
            }
        }
        if w.spec.stabilize_every != 0 && (i + 1) % w.spec.stabilize_every == 0 {
            match &mut engine {
                Engine::Single(s) => s.stabilize(2),
                Engine::Sharded(s) => s.stabilize(2),
            };
        }
    }
    let total_ns = start.elapsed().as_nanos();
    match engine {
        Engine::Single(s) => ShardedOutcome {
            total_ns,
            committed_rounds: 0,
            retries: 0,
            labels: s.live_labels().into_iter().map(|(_, c)| c).collect(),
            objective_bits: s.objective().to_bits(),
        },
        Engine::Sharded(s) => ShardedOutcome {
            total_ns,
            committed_rounds: s.committed_rounds(),
            retries: s.retries(),
            labels: s.live_labels().into_iter().map(|(_, c)| c).collect(),
            objective_bits: s.objective().to_bits(),
        },
    }
}

/// One row of the sharded grid.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// The shape measured.
    pub shape: Shape,
    /// Shard count of this row.
    pub shards: usize,
    /// `"clean"` or `"mixed"` (the seeded chaos schedule).
    pub transport: &'static str,
    /// Measured edit throughput over the stream.
    pub edits_per_sec: f64,
    /// Replicated-log rounds committed.
    pub committed_rounds: u64,
    /// Retransmissions the transport forced (0 on a clean fabric).
    pub retries: u64,
    /// Throughput relative to the single-node engine on the same stream
    /// (< 1: the price of replication).
    pub relative_to_single: f64,
}

/// Runs the edit stream single-node and at every shard count — clean
/// transport plus a seeded mixed chaos schedule — `reps` repetitions each
/// (best wall time kept), asserting on every repetition that the final
/// partition is byte-identical to the single-node replay.
pub fn sharded_comparison(
    shape: Shape,
    spec: ShardedSpec,
    seed: u64,
    reps: usize,
    shard_counts: &[usize],
) -> Vec<ShardedRow> {
    let w = sharded_workload(shape, spec, seed);
    let reference = drive(&w, 0, None);
    let mut single_best = reference.total_ns;
    for _ in 1..reps {
        single_best = single_best.min(drive(&w, 0, None).total_ns);
    }
    let edits = w.stream.len() as f64;
    let single_eps = edits / (single_best as f64 / 1e9);

    let mut rows = Vec::new();
    for &shards in shard_counts {
        for (transport, plan) in [
            ("clean", None),
            ("mixed", Some(ChaosPlan::mixed(seed ^ shards as u64))),
        ] {
            let mut best: Option<ShardedOutcome> = None;
            for _ in 0..reps.max(1) {
                let out = drive(&w, shards, plan);
                assert_eq!(
                    out.labels, reference.labels,
                    "sharded labels diverged ({shards} shards, {transport})"
                );
                assert_eq!(
                    out.objective_bits, reference.objective_bits,
                    "sharded objective diverged ({shards} shards, {transport})"
                );
                if plan.is_none() {
                    assert_eq!(out.retries, 0, "clean transport retried");
                }
                best = Some(match best {
                    Some(b) if b.total_ns <= out.total_ns => b,
                    _ => out,
                });
            }
            let out = best.expect("reps >= 1");
            let eps = edits / (out.total_ns as f64 / 1e9);
            rows.push(ShardedRow {
                shape,
                shards,
                transport,
                edits_per_sec: eps,
                committed_rounds: out.committed_rounds,
                retries: out.retries,
                relative_to_single: eps / single_eps,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_grid_is_exact_at_every_shard_count_and_transport() {
        let shape = Shape { n: 60, m: 4, k: 3 };
        let spec = ShardedSpec {
            edits: 80,
            stabilize_every: 20,
        };
        let rows = sharded_comparison(shape, spec, 11, 1, &[1, 2, 4]);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.edits_per_sec > 0.0);
            assert!(row.committed_rounds > 0);
            if row.transport == "clean" {
                assert_eq!(row.retries, 0);
            }
        }
        // The lossy fabric must actually exercise retransmission somewhere
        // in the grid (a mixed schedule that never drops is miswired).
        assert!(rows.iter().any(|r| r.transport == "mixed" && r.retries > 0));
    }
}
