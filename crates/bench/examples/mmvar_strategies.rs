//! Ablation demo: MMVar's two search strategies on overlapping data.
//!
//! Greedy descent on the raw criterion `Σ σ²(C_MM)` collapses (the mixture
//! variance is intensive in cluster size, so evaporating clusters is locally
//! downhill); the Lloyd alternation keeps a sensible partition. DESIGN.md
//! records why the Lloyd reading is used for the paper's "MMV" baseline.
use rand::rngs::StdRng;
use rand::SeedableRng;
use ucpc_baselines::{MmVar, MmVarStrategy};
use ucpc_datasets::benchmark::{generate_fraction, YEAST};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let d = generate_fraction(YEAST, 0.1, &mut rng);
    let model = UncertaintyModel::paper_default(NoiseKind::Normal);
    let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
    let data = a.uncertain_objects();

    for strategy in [MmVarStrategy::Lloyd, MmVarStrategy::GreedyRelocation] {
        let cfg = MmVar {
            strategy,
            ..Default::default()
        };
        let r = cfg.run(&data, 10, &mut rng).unwrap();
        let mut sizes = r.clustering.sizes();
        sizes.sort_unstable();
        println!(
            "{strategy:?}: objective {:.3}, cluster sizes {:?}",
            r.objective, sizes
        );
    }
}
