//! Measures UK-medoids' offline pairwise-matrix cost vs its online PAM cost
//! (the split Figure 4's protocol relies on).
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use ucpc_baselines::ukmedoids::{PairwiseEd, UkMedoids};
use ucpc_datasets::benchmark::{generate_fraction, ABALONE, LETTER};
use ucpc_datasets::uncertainty::{NoiseKind, PdfAssignment, UncertaintyModel};

fn main() {
    for spec in [ABALONE, LETTER] {
        let mut rng = StdRng::seed_from_u64(2012 ^ spec.objects as u64);
        let d = generate_fraction(spec, 0.05, &mut rng);
        let model = UncertaintyModel::paper_default(NoiseKind::Normal);
        let a = PdfAssignment::assign(&d.points, &d.dim_std(), &model, &mut rng);
        let data = a.uncertain_objects();
        let t0 = Instant::now();
        let ed = PairwiseEd::compute(&data);
        let offline = t0.elapsed();
        let t1 = Instant::now();
        let _ = UkMedoids::default()
            .run_with_matrix(data.len(), spec.classes, &ed, &mut rng)
            .unwrap();
        let online = t1.elapsed();
        println!(
            "{} n={}: offline {:.3} ms, online {:.3} ms",
            spec.name,
            data.len(),
            offline.as_secs_f64() * 1e3,
            online.as_secs_f64() * 1e3
        );
    }
}
