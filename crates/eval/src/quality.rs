//! Internal cluster-validity criteria: intra/inter distances and `Q`
//! (Section 5.1).
//!
//! * `intra(C)` — mean pairwise expected squared distance `ÊD` within
//!   clusters (cluster cohesiveness);
//! * `inter(C)` — mean pairwise `ÊD` across cluster pairs (separation);
//! * `Q(C) = inter(C) − intra(C)` after normalizing both to `[0, 1]` by the
//!   dataset's maximum pairwise `ÊD`, so `Q ∈ [−1, 1]`, higher is better.
//!
//! All `ÊD` values use the Lemma-3 closed form — no sampling.

use ucpc_core::framework::Clustering;
use ucpc_uncertain::distance::expected_sq_distance;
use ucpc_uncertain::UncertainObject;

/// Internal-quality report for one clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Normalized mean within-cluster `ÊD` (lower is better).
    pub intra: f64,
    /// Normalized mean between-cluster `ÊD` (higher is better).
    pub inter: f64,
    /// `inter − intra`, in `[-1, 1]`.
    pub q: f64,
}

/// Computes intra, inter and `Q` for `clustering` over `data`.
///
/// O(n²·m) in the dataset size; the experiment harness subsamples very large
/// datasets before calling this, exactly as any implementation of the paper's
/// protocol must.
pub fn quality(data: &[UncertainObject], clustering: &Clustering) -> Quality {
    assert_eq!(
        data.len(),
        clustering.len(),
        "clustering must cover the data"
    );
    let n = data.len();

    // Normalization constant: max pairwise ÊD over the dataset.
    let mut max_ed = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            max_ed = max_ed.max(expected_sq_distance(&data[i], &data[j]));
        }
    }
    if max_ed <= 0.0 {
        // All objects identical and deterministic: perfectly cohesive.
        return Quality {
            intra: 0.0,
            inter: 0.0,
            q: 0.0,
        };
    }

    let members = clustering.members();

    // intra(C): average over clusters of the mean pairwise ÊD within the
    // cluster; singleton and empty clusters contribute zero cohesion cost
    // and are excluded from the average (the paper's formula divides by
    // |C|(|C|-1), undefined for singletons).
    let mut intra_acc = 0.0;
    let mut intra_clusters = 0usize;
    for ms in &members {
        if ms.len() < 2 {
            continue;
        }
        let mut acc = 0.0;
        for (ai, &a) in ms.iter().enumerate() {
            for &b in &ms[ai + 1..] {
                acc += expected_sq_distance(&data[a], &data[b]);
            }
        }
        // Sum over ordered pairs = 2 * unordered; denominator |C|(|C|-1).
        let denom = (ms.len() * (ms.len() - 1)) as f64;
        intra_acc += 2.0 * acc / denom;
        intra_clusters += 1;
    }
    let intra = if intra_clusters > 0 {
        intra_acc / intra_clusters as f64 / max_ed
    } else {
        0.0
    };

    // inter(C): average over cluster pairs of the mean pairwise ÊD between
    // their members.
    let non_empty: Vec<&Vec<usize>> = members.iter().filter(|ms| !ms.is_empty()).collect();
    let mut inter_acc = 0.0;
    let mut inter_pairs = 0usize;
    for (ci, a_members) in non_empty.iter().enumerate() {
        for b_members in &non_empty[ci + 1..] {
            let mut acc = 0.0;
            for &a in a_members.iter() {
                for &b in b_members.iter() {
                    acc += expected_sq_distance(&data[a], &data[b]);
                }
            }
            inter_acc += acc / (a_members.len() * b_members.len()) as f64;
            inter_pairs += 1;
        }
    }
    let inter = if inter_pairs > 0 {
        inter_acc / inter_pairs as f64 / max_ed
    } else {
        0.0
    };

    Quality {
        intra,
        inter,
        q: inter - intra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 10.0] {
            for i in 0..4 {
                data.push(UncertainObject::new(vec![UnivariatePdf::normal(
                    c + i as f64 * 0.1,
                    0.1,
                )]));
            }
        }
        data
    }

    #[test]
    fn good_clustering_beats_bad_clustering() {
        let data = blobs();
        let good = Clustering::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let bad = Clustering::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        let qg = quality(&data, &good);
        let qb = quality(&data, &bad);
        assert!(qg.q > qb.q, "good {:?} vs bad {:?}", qg, qb);
        assert!(qg.q > 0.5);
        assert!(qb.q.abs() < 0.2, "mixed clustering should have ~zero Q");
    }

    #[test]
    fn values_are_normalized() {
        let data = blobs();
        let c = Clustering::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let q = quality(&data, &c);
        assert!((0.0..=1.0).contains(&q.intra));
        assert!((0.0..=1.0).contains(&q.inter));
        assert!((-1.0..=1.0).contains(&q.q));
    }

    #[test]
    fn single_cluster_has_zero_inter() {
        let data = blobs();
        let c = Clustering::single(8);
        let q = quality(&data, &c);
        assert_eq!(q.inter, 0.0);
        assert!(q.intra > 0.0);
        assert!(q.q < 0.0);
    }

    #[test]
    fn all_singletons_have_zero_intra() {
        let data = blobs();
        let c = Clustering::new((0..8).collect(), 8);
        let q = quality(&data, &c);
        assert_eq!(q.intra, 0.0);
        assert!(q.inter > 0.0);
    }

    #[test]
    fn identical_deterministic_objects_are_degenerate() {
        let data: Vec<UncertainObject> = (0..4)
            .map(|_| UncertainObject::deterministic(&[1.0]))
            .collect();
        let c = Clustering::new(vec![0, 0, 1, 1], 2);
        let q = quality(&data, &c);
        assert_eq!(q.q, 0.0);
    }

    #[test]
    fn uncertainty_inflates_intra() {
        // Same means, higher variance -> higher (normalized) intra for the
        // same partition, because ÊD includes both objects' variances.
        let tight = blobs();
        let loose: Vec<UncertainObject> = tight
            .iter()
            .map(|o| UncertainObject::new(vec![UnivariatePdf::normal(o.mu()[0], 2.0)]))
            .collect();
        let c = Clustering::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let qt = quality(&tight, &c);
        let ql = quality(&loose, &c);
        assert!(ql.intra > qt.intra);
    }
}
