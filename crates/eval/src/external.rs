//! Additional external validity criteria beyond the paper's F-measure:
//! purity, the adjusted Rand index, and normalized mutual information.
//!
//! The paper reports F only; these are provided because downstream users of
//! a clustering library expect the standard external metrics, and because
//! the integration tests use them to cross-check conclusions drawn from F
//! (a ranking that flips under ARI/NMI is usually an evaluation bug).

use ucpc_core::framework::Clustering;

/// Contingency table between a clustering and a reference labelling.
struct Contingency {
    counts: Vec<Vec<usize>>, // [class][cluster]
    class_sizes: Vec<usize>,
    cluster_sizes: Vec<usize>,
    n: usize,
}

fn contingency(clustering: &Clustering, reference: &[usize]) -> Contingency {
    assert_eq!(
        clustering.len(),
        reference.len(),
        "clustering and reference must cover the same objects"
    );
    let k = clustering.k();
    let k_ref = reference.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![vec![0usize; k]; k_ref];
    let mut class_sizes = vec![0usize; k_ref];
    let mut cluster_sizes = vec![0usize; k];
    for (i, &u) in reference.iter().enumerate() {
        let v = clustering.label(i);
        counts[u][v] += 1;
        class_sizes[u] += 1;
        cluster_sizes[v] += 1;
    }
    Contingency {
        counts,
        class_sizes,
        cluster_sizes,
        n: reference.len(),
    }
}

/// Purity: every cluster votes for its majority class;
/// `(1/n) Σ_v max_u |C_v ∩ C̃_u|`. Range `(0, 1]`, higher is better; trivially
/// 1 for singletons (use together with NMI/ARI).
pub fn purity(clustering: &Clustering, reference: &[usize]) -> f64 {
    let c = contingency(clustering, reference);
    if c.n == 0 {
        return 0.0;
    }
    let k = clustering.k();
    let mut total = 0usize;
    for v in 0..k {
        let best = c.counts.iter().map(|row| row[v]).max().unwrap_or(0);
        total += best;
    }
    total as f64 / c.n as f64
}

/// Adjusted Rand index: pair-counting agreement corrected for chance.
/// 1 for identical partitions (up to relabelling), ~0 for independent ones;
/// can be negative.
pub fn adjusted_rand_index(clustering: &Clustering, reference: &[usize]) -> f64 {
    let c = contingency(clustering, reference);
    if c.n < 2 {
        return 1.0;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = c.counts.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = c.class_sizes.iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = c.cluster_sizes.iter().map(|&x| choose2(x)).sum();
    let total = choose2(c.n);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-15 {
        return if (sum_ij - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max - expected)
}

/// Normalized mutual information with arithmetic-mean normalization:
/// `I(U; V) / ((H(U) + H(V)) / 2)`. Range `[0, 1]`, higher is better; 1 for
/// identical partitions, 0 when independent (or when either side is a single
/// block).
pub fn normalized_mutual_information(clustering: &Clustering, reference: &[usize]) -> f64 {
    let c = contingency(clustering, reference);
    if c.n == 0 {
        return 0.0;
    }
    let n = c.n as f64;
    let entropy = |sizes: &[usize]| -> f64 {
        sizes
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let h_u = entropy(&c.class_sizes);
    let h_v = entropy(&c.cluster_sizes);
    if h_u <= 0.0 || h_v <= 0.0 {
        // One side is a single block: MI is 0 by definition here.
        return if h_u <= 0.0 && h_v <= 0.0 { 1.0 } else { 0.0 };
    }
    let mut mi = 0.0;
    for (u, row) in c.counts.iter().enumerate() {
        for (v, &cnt) in row.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let p_uv = cnt as f64 / n;
            let p_u = c.class_sizes[u] as f64 / n;
            let p_v = c.cluster_sizes[v] as f64 / n;
            mi += p_uv * (p_uv / (p_u * p_v)).ln();
        }
    }
    (mi / (0.5 * (h_u + h_v))).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> (Clustering, Vec<usize>) {
        (
            Clustering::new(vec![1, 1, 0, 0, 2, 2], 3),
            vec![0, 0, 1, 1, 2, 2],
        )
    }

    #[test]
    fn perfect_partition_maxes_all_metrics() {
        let (c, r) = perfect();
        assert!((purity(&c, &r) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&c, &r) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&c, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_scores() {
        let r = vec![0, 0, 1, 1];
        let c = Clustering::single(4);
        assert!((purity(&c, &r) - 0.5).abs() < 1e-12);
        assert!(adjusted_rand_index(&c, &r).abs() < 1e-12);
        assert_eq!(normalized_mutual_information(&c, &r), 0.0);
    }

    #[test]
    fn all_singletons_have_perfect_purity_but_low_nmi_weighting() {
        let r = vec![0, 0, 0, 0];
        let c = Clustering::new(vec![0, 1, 2, 3], 4);
        assert_eq!(purity(&c, &r), 1.0);
        // Reference is a single block: NMI defined as 0 here.
        assert_eq!(normalized_mutual_information(&c, &r), 0.0);
    }

    #[test]
    fn ari_is_near_zero_for_random_like_partitions() {
        // A partition orthogonal to the reference.
        let r = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let c = Clustering::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        assert!(adjusted_rand_index(&c, &r).abs() < 0.2);
    }

    #[test]
    fn metrics_are_invariant_to_relabelling() {
        let r = vec![0, 0, 1, 1, 2, 2];
        let a = Clustering::new(vec![0, 0, 1, 1, 2, 2], 3);
        let b = Clustering::new(vec![2, 2, 0, 0, 1, 1], 3);
        assert_eq!(purity(&a, &r), purity(&b, &r));
        assert!((adjusted_rand_index(&a, &r) - adjusted_rand_index(&b, &r)).abs() < 1e-12);
        assert!(
            (normalized_mutual_information(&a, &r) - normalized_mutual_information(&b, &r)).abs()
                < 1e-12
        );
    }

    #[test]
    fn better_partition_scores_higher_on_all_metrics() {
        let r = vec![0, 0, 0, 1, 1, 1];
        let good = Clustering::new(vec![0, 0, 0, 1, 1, 1], 2);
        let bad = Clustering::new(vec![0, 0, 1, 1, 0, 1], 2);
        assert!(purity(&good, &r) > purity(&bad, &r));
        assert!(adjusted_rand_index(&good, &r) > adjusted_rand_index(&bad, &r));
        assert!(normalized_mutual_information(&good, &r) > normalized_mutual_information(&bad, &r));
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_lengths_panic() {
        let c = Clustering::single(3);
        let _ = purity(&c, &[0, 1]);
    }
}
