//! # ucpc-eval — the paper's cluster-validity criteria (Section 5.1)
//!
//! * [`fmeasure::f_measure`] — external criterion `F ∈ [0, 1]` against a
//!   reference classification, and [`fmeasure::theta`] — the paper's
//!   `Θ = F(C'') − F(C')` comparing uncertainty-aware vs uncertainty-blind
//!   clustering;
//! * [`quality::quality`] — internal criterion: normalized intra/inter
//!   expected distances and `Q = inter − intra ∈ [−1, 1]`.

#![warn(missing_docs)]

pub mod external;
pub mod fmeasure;
pub mod internal;
pub mod quality;

pub use external::{adjusted_rand_index, normalized_mutual_information, purity};
pub use fmeasure::{f_measure, theta};
pub use internal::{dunn_index, silhouette};
pub use quality::{quality, Quality};
