//! External cluster-validity criterion: the F-measure of Section 5.1.
//!
//! Given a reference classification `C̃ = {C̃_1, ..., C̃_k̃}` and a clustering
//! `C = {C_1, ..., C_k}`:
//!
//! `F(C, C̃) = (1/|D|) Σ_u |C̃_u| max_v F_uv`, with
//! `F_uv = 2 P_uv R_uv / (P_uv + R_uv)`,
//! `P_uv = |C_v ∩ C̃_u| / |C_v|`, `R_uv = |C_v ∩ C̃_u| / |C̃_u|`.
//!
//! `F` ranges in `[0, 1]`, higher is better. `Θ = F(C'') − F(C')` compares the
//! uncertainty-aware clustering against the perturbed-deterministic one.

use ucpc_core::framework::Clustering;

/// The paper's F-measure between a clustering and a reference classification
/// (given as one class label per object).
pub fn f_measure(clustering: &Clustering, reference: &[usize]) -> f64 {
    assert_eq!(
        clustering.len(),
        reference.len(),
        "clustering and reference must cover the same objects"
    );
    let n = reference.len();
    if n == 0 {
        return 0.0;
    }
    let k = clustering.k();
    let k_ref = reference.iter().copied().max().map_or(0, |m| m + 1);

    // Contingency table: overlap[u][v] = |C_v ∩ C̃_u|.
    let mut overlap = vec![vec![0usize; k]; k_ref];
    let mut class_size = vec![0usize; k_ref];
    let mut cluster_size = vec![0usize; k];
    for (i, &u) in reference.iter().enumerate() {
        let v = clustering.label(i);
        overlap[u][v] += 1;
        class_size[u] += 1;
        cluster_size[v] += 1;
    }

    let mut total = 0.0;
    for u in 0..k_ref {
        if class_size[u] == 0 {
            continue;
        }
        let mut best = 0.0f64;
        for v in 0..k {
            let ov = overlap[u][v];
            if ov == 0 || cluster_size[v] == 0 {
                continue;
            }
            let p = ov as f64 / cluster_size[v] as f64;
            let r = ov as f64 / class_size[u] as f64;
            let f = 2.0 * p * r / (p + r);
            best = best.max(f);
        }
        total += class_size[u] as f64 * best;
    }
    total / n as f64
}

/// The paper's `Θ(C', C'', C̃) = F(C'', C̃) − F(C', C̃)`: positive when
/// modelling uncertainty (Case 2) beats ignoring it (Case 1). Range `[-1, 1]`.
pub fn theta(case1: &Clustering, case2: &Clustering, reference: &[usize]) -> f64 {
    f_measure(case2, reference) - f_measure(case1, reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let reference = vec![0, 0, 1, 1, 2, 2];
        let c = Clustering::new(vec![2, 2, 0, 0, 1, 1], 3); // permuted labels
        assert!((f_measure(&c, &reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_scores_below_one_for_multiclass_data() {
        let reference = vec![0, 0, 0, 1, 1, 1];
        let c = Clustering::single(6);
        let f = f_measure(&c, &reference);
        // Each class: P = 0.5, R = 1 -> F_uv = 2/3.
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_fragmentsation_scores_low() {
        // Every object its own cluster: P = 1, R = 1/|class|.
        let reference = vec![0, 0, 0, 0];
        let c = Clustering::new(vec![0, 1, 2, 3], 4);
        let f = f_measure(&c, &reference);
        let want = 2.0 * 1.0 * 0.25 / 1.25;
        assert!((f - want).abs() < 1e-12);
    }

    #[test]
    fn f_measure_is_within_bounds() {
        let reference = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let c = Clustering::new(vec![0, 0, 1, 1, 2, 2, 0, 1], 3);
        let f = f_measure(&c, &reference);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn theta_sign_reflects_improvement() {
        let reference = vec![0, 0, 1, 1];
        let good = Clustering::new(vec![0, 0, 1, 1], 2);
        let bad = Clustering::new(vec![0, 1, 0, 1], 2);
        assert!(theta(&bad, &good, &reference) > 0.0);
        assert!(theta(&good, &bad, &reference) < 0.0);
        assert_eq!(theta(&good, &good, &reference), 0.0);
    }

    #[test]
    fn unbalanced_classes_are_weighted_by_size() {
        // One big class perfectly recovered, one small class destroyed:
        // the score should stay high because weighting is by |C̃_u|.
        let mut reference = vec![0; 9];
        reference.push(1);
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0]; // small class absorbed
        let c = Clustering::new(labels, 1);
        let f = f_measure(&c, &reference);
        assert!(f > 0.85, "size-weighted score unexpectedly low: {f}");
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn length_mismatch_panics() {
        let c = Clustering::single(3);
        let _ = f_measure(&c, &[0, 1]);
    }
}
