//! Additional internal validity criteria over uncertain objects: the
//! silhouette coefficient and the Dunn index, both computed on the pairwise
//! expected squared distance `ÊD` (Lemma 3 closed form).
//!
//! The paper's evaluation uses only `Q = inter − intra`; these are provided
//! for downstream users and as cross-checks in the integration tests (a
//! partition that wins on `Q` but loses badly on silhouette usually signals
//! an evaluation artifact).

use ucpc_core::framework::Clustering;
use ucpc_uncertain::distance::expected_sq_distance;
use ucpc_uncertain::UncertainObject;

/// Mean silhouette coefficient over all objects, using `ÊD` as the
/// dissimilarity. Range `[-1, 1]`, higher is better. Objects in singleton
/// clusters contribute 0 (the standard convention).
///
/// O(n²·m); subsample large datasets first.
pub fn silhouette(data: &[UncertainObject], clustering: &Clustering) -> f64 {
    assert_eq!(
        data.len(),
        clustering.len(),
        "clustering must cover the data"
    );
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let members = clustering.members();

    let mut total = 0.0;
    for i in 0..n {
        let own = clustering.label(i);
        if members[own].len() < 2 {
            continue; // silhouette of a singleton is 0
        }
        // a(i): mean ÊD to own cluster (excluding self).
        let a: f64 = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| expected_sq_distance(&data[i], &data[j]))
            .sum::<f64>()
            / (members[own].len() - 1) as f64;
        // b(i): smallest mean ÊD to another non-empty cluster.
        let mut b = f64::INFINITY;
        for (c, ms) in members.iter().enumerate() {
            if c == own || ms.is_empty() {
                continue;
            }
            let mean: f64 = ms
                .iter()
                .map(|&j| expected_sq_distance(&data[i], &data[j]))
                .sum::<f64>()
                / ms.len() as f64;
            b = b.min(mean);
        }
        if !b.is_finite() {
            continue; // single non-empty cluster: silhouette undefined -> 0
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// Dunn index: minimum between-cluster separation divided by maximum
/// within-cluster diameter, both under `ÊD`. Higher is better; degenerate
/// partitions (a single non-empty cluster) return 0.
///
/// Note `ÊD` is not a metric (`ÊD(o,o) = 2σ²(o) > 0`), so the "diameter" of
/// a cluster of high-variance objects is bounded below by their variances —
/// which is exactly the behaviour an uncertainty-aware index should have.
pub fn dunn_index(data: &[UncertainObject], clustering: &Clustering) -> f64 {
    assert_eq!(
        data.len(),
        clustering.len(),
        "clustering must cover the data"
    );
    let members: Vec<Vec<usize>> = clustering
        .members()
        .into_iter()
        .filter(|ms| !ms.is_empty())
        .collect();
    if members.len() < 2 {
        return 0.0;
    }

    let mut max_diameter = 0.0f64;
    for ms in &members {
        for (ai, &a) in ms.iter().enumerate() {
            for &b in &ms[ai + 1..] {
                max_diameter = max_diameter.max(expected_sq_distance(&data[a], &data[b]));
            }
        }
    }
    if max_diameter <= 0.0 {
        return f64::INFINITY; // all within-cluster distances zero, separated clusters
    }

    let mut min_separation = f64::INFINITY;
    for (ci, a_ms) in members.iter().enumerate() {
        for b_ms in &members[ci + 1..] {
            for &a in a_ms {
                for &b in b_ms {
                    min_separation = min_separation.min(expected_sq_distance(&data[a], &data[b]));
                }
            }
        }
    }
    min_separation / max_diameter
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs() -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 10.0] {
            for i in 0..4 {
                data.push(UncertainObject::new(vec![UnivariatePdf::normal(
                    c + i as f64 * 0.1,
                    0.1,
                )]));
            }
        }
        data
    }

    #[test]
    fn good_partition_has_high_silhouette_and_dunn() {
        let data = blobs();
        let good = Clustering::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let bad = Clustering::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        assert!(silhouette(&data, &good) > 0.8);
        assert!(silhouette(&data, &good) > silhouette(&data, &bad));
        assert!(dunn_index(&data, &good) > 1.0);
        assert!(dunn_index(&data, &good) > dunn_index(&data, &bad));
    }

    #[test]
    fn single_cluster_partitions_are_degenerate() {
        let data = blobs();
        let c = Clustering::single(8);
        assert_eq!(silhouette(&data, &c), 0.0);
        assert_eq!(dunn_index(&data, &c), 0.0);
    }

    #[test]
    fn all_singletons_silhouette_zero() {
        let data = blobs();
        let c = Clustering::new((0..8).collect(), 8);
        assert_eq!(silhouette(&data, &c), 0.0);
    }

    #[test]
    fn variance_lowers_dunn_through_the_diameter() {
        // Same means, higher object variance -> ÊD-diameter grows -> Dunn
        // shrinks: the index is uncertainty-aware.
        let tight = blobs();
        let loose: Vec<UncertainObject> = tight
            .iter()
            .map(|o| UncertainObject::new(vec![UnivariatePdf::normal(o.mu()[0], 2.0)]))
            .collect();
        let c = Clustering::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        assert!(dunn_index(&loose, &c) < dunn_index(&tight, &c));
    }

    #[test]
    fn silhouette_is_bounded() {
        let data = blobs();
        for labels in [vec![0, 0, 1, 1, 0, 0, 1, 1], vec![1, 0, 1, 0, 1, 0, 1, 0]] {
            let c = Clustering::new(labels, 2);
            let s = silhouette(&data, &c);
            assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
        }
    }
}
