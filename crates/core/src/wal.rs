//! Checksummed write-ahead log of serving mutations, and crash recovery.
//!
//! A process crash between snapshots loses every edit since the last
//! checkpoint. This module closes that hole with the classic database
//! discipline, built to the repo's exactness bar: **log before apply**,
//! recover by **replaying the logged suffix on top of the last snapshot**,
//! and prove the recovered engine *byte-identical* — labels, handles,
//! [`ClusterStats`](crate::objective::ClusterStats) bits, objective — to
//! the engine that never crashed (`tests/wal_recovery.rs` pins this at
//! every possible crash point).
//!
//! # Why replay is bit-exact
//!
//! Three facts, each already load-bearing elsewhere in the workspace,
//! compose into the recovery guarantee:
//!
//! 1. **Moments round-trip through their defining bits.** Every arrival is
//!    logged as its `(mu, mu_2)` vectors in raw little-endian IEEE-754 bits
//!    (exactly like `UCPCSNAP`). All [`Moments`] construction funnels
//!    through [`Moments::from_mu_mu2`], a pure function of those bits — so
//!    rebuilding the arrival at recovery reproduces its variance row and
//!    every scalar aggregate bit for bit.
//! 2. **Placement is a pure function of engine state and arrival bits.**
//!    The serving layer's batched commit is shadow-asserted bit-identical
//!    to the serial [`IncrementalUcpc::insert_moments`] scan at the same
//!    point of the edit sequence (see [`crate::serving`]). Replay *runs*
//!    the serial scan — on an engine whose state is bit-identical by
//!    induction — so it picks the same cluster and mutates the same bits,
//!    and even the issued [`ObjectHandle`]s coincide (same slot/generation
//!    discipline).
//! 3. **Cadence is logged, not re-derived.** Every stabilization the
//!    serving layer runs — explicit *or* cadence-triggered — writes its own
//!    [`WalRecord::Stabilize`] frame before running, so recovery never has
//!    to reconstruct the batching/cadence configuration: the log *is* the
//!    mutation sequence.
//!
//! # Format
//!
//! Integers are little-endian; `f64` is [`f64::to_bits`] little-endian.
//!
//! ```text
//! header   "UCPCWAL\0"  8 × u8
//!          version      u32    1
//!          m            u64    dimensions (validated against the engine)
//!          crc          u32    CRC-32 (IEEE) of the 20 bytes above
//! frame    len          u32    payload length in bytes
//!          payload      len × u8
//!          crc          u32    CRC-32 (IEEE) of len ‖ payload
//! payload  tag 1 Commit     mu m × f64, mu2 m × f64
//!          tag 2 Remove     slot u32, gen u32
//!          tag 3 Stabilize  passes u64
//! ```
//!
//! # Torn tails, corruption, and poisoning
//!
//! [`scan_wal`] walks frames until the first one that is torn (runs past
//! the end of the buffer) or fails its checksum, then stops: everything
//! before is the **valid prefix**, everything after is damage. [`recover`]
//! replays the valid prefix and reports the damage as a [`WalDamage`]
//! carrying the byte offset and frame index of the first damaged frame — a
//! crash mid-append is expected, not an error in the log's past.
//!
//! A *write* failure is different: after a failed or short append the tail
//! of the log is indeterminate, so any further append could sit after
//! garbage and be silently unreachable at recovery. [`WalWriter`] therefore
//! **poisons itself permanently** on the first I/O fault — every later
//! append returns [`WalError::Poisoned`] — preserving the invariant that a
//! mutation is applied *iff* its frame is durably readable.
//!
//! All I/O goes through the pluggable [`DurableIo`] trait; [`VecIo`] is the
//! in-memory implementation with byte-exact fault injection (ENOSPC at any
//! offset, short writes, failing fsync) and [`FileIo`] is the `std::fs`
//! one.

use crate::framework::ClusterError;
use crate::incremental::{IncrementalUcpc, ObjectHandle};
use crate::snapshot::SnapshotError;
use std::fmt;
use std::io::Write as _;
use ucpc_uncertain::Moments;

/// Magic prefix of a WAL byte stream.
pub const WAL_MAGIC: &[u8; 8] = b"UCPCWAL\0";
/// Current WAL format version; readers reject any other.
pub const WAL_VERSION: u32 = 1;
/// Size of the fixed WAL header (magic + version + m + crc).
pub const WAL_HEADER_LEN: usize = 8 + 4 + 8 + 4;

const TAG_COMMIT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_STABILIZE: u8 = 3;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — table built at compile time
// so the checksum needs no external crate and no runtime init.
// ---------------------------------------------------------------------------

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight table lookups
// retire eight input bytes per iteration. The WAL sits on the serving
// layer's commit path and checksums every moment row, so the ~8x over the
// byte-at-a-time loop is what keeps the `required_wal_overhead` gate
// comfortable.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every WAL frame and
/// every snapshot-v2 chunk.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends `vals` to `p` as LE IEEE-754 bit patterns — the format every
/// commit frame and snapshot row section specifies. On little-endian
/// targets the in-memory representation *is* that byte stream (`f64` has
/// no padding and `u8` has alignment 1), so the copy is one `memcpy`
/// instead of a per-element loop — this sits on the serving commit path.
pub(crate) fn extend_f64_bits(p: &mut Vec<u8>, vals: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), vals.len() * 8) };
        p.extend_from_slice(bytes);
    }
    #[cfg(target_endian = "big")]
    {
        for &v in vals {
            p.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// DurableIo — the pluggable byte sink
// ---------------------------------------------------------------------------

pub use crate::fault::IoFault;
use crate::fault::IoFaultPlan;

/// An append-only durable byte sink: the seam between the WAL / streaming
/// snapshot writers and the world, pluggable so tests can inject torn
/// tails, short writes, and ENOSPC at any byte offset.
///
/// Contract: [`DurableIo::write`] appends a *prefix* of `buf` and returns
/// how many bytes it accepted (a short count models a torn write);
/// [`DurableIo::sync`] makes everything accepted so far durable.
pub trait DurableIo: fmt::Debug {
    /// Appends a prefix of `buf`, returning the number of bytes accepted.
    fn write(&mut self, buf: &[u8]) -> Result<usize, IoFault>;

    /// Forces everything accepted so far to durable storage.
    fn sync(&mut self) -> Result<(), IoFault>;

    /// Appends all of `buf`, looping over short writes. A fault mid-loop
    /// leaves a torn tail in the sink — callers treat that as fatal for
    /// the stream (see [`WalWriter`] poisoning).
    fn write_all(&mut self, mut buf: &[u8]) -> Result<(), IoFault> {
        while !buf.is_empty() {
            let n = self.write(buf)?;
            if n == 0 {
                return Err(IoFault::WriteZero);
            }
            buf = buf.get(n..).unwrap_or(&[]);
        }
        Ok(())
    }
}

impl<T: DurableIo + ?Sized> DurableIo for Box<T> {
    fn write(&mut self, buf: &[u8]) -> Result<usize, IoFault> {
        (**self).write(buf)
    }
    fn sync(&mut self) -> Result<(), IoFault> {
        (**self).sync()
    }
}

/// In-memory [`DurableIo`] with byte-exact fault injection: an optional
/// capacity limit (ENOSPC at that exact offset), an optional maximum chunk
/// per `write` call (forces short writes), and optional sync failure.
/// The buffer keeps whatever was accepted before a fault — exactly the
/// torn tail a real device would leave.
#[derive(Debug, Clone, Default)]
pub struct VecIo {
    buf: Vec<u8>,
    plan: IoFaultPlan,
    syncs: u64,
}

impl VecIo {
    /// An unbounded, fault-free in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink injecting the faults of `plan` — the shared configuration
    /// surface of [`crate::fault`], so WAL and transport chaos tests
    /// describe faults the same way.
    pub fn with_faults(plan: IoFaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// A sink that accepts exactly `limit` bytes and then reports
    /// [`IoFault::NoSpace`] — ENOSPC at a chosen byte offset.
    pub fn limited(limit: usize) -> Self {
        Self::with_faults(IoFaultPlan::new().byte_limit(limit))
    }

    /// A sink that accepts at most `max_chunk` bytes per `write` call —
    /// every multi-byte append becomes a sequence of short writes.
    pub fn chunked(max_chunk: usize) -> Self {
        Self::with_faults(IoFaultPlan::new().short_writes(max_chunk))
    }

    /// Makes every subsequent [`DurableIo::sync`] fail.
    pub fn failing_syncs(mut self) -> Self {
        self.plan = self.plan.failing_syncs();
        self
    }

    /// Everything accepted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the sink, yielding the accepted bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of successful [`DurableIo::sync`] calls — lets tests pin the
    /// group-commit policy (one sync per flush, not per frame).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl DurableIo for VecIo {
    fn write(&mut self, buf: &[u8]) -> Result<usize, IoFault> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = self.plan.admit(self.buf.len(), buf.len())?;
        self.buf.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn sync(&mut self) -> Result<(), IoFault> {
        self.plan.check_sync(self.buf.len())?;
        self.syncs += 1;
        Ok(())
    }
}

/// An in-memory [`DurableIo`] writing through a shared handle: clones
/// observe the same buffer, so a harness can hand one clone to
/// [`WalWriter::create`] (even boxed behind `dyn DurableIo`) and keep
/// reading the accumulated log bytes through another — the seam the
/// crash-point differential tests cut at. An optional capacity limit
/// injects ENOSPC at that exact offset, leaving the torn tail readable.
#[derive(Debug, Clone, Default)]
pub struct SharedVecIo {
    buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
    plan: IoFaultPlan,
}

impl SharedVecIo {
    /// An empty shared sink that never faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty shared sink injecting the faults of `plan` — the same
    /// [`crate::fault::IoFaultPlan`] surface as [`VecIo::with_faults`],
    /// so the crash/recovery harnesses configure both sinks identically.
    pub fn with_faults(plan: IoFaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// An empty shared sink returning [`IoFault::NoSpace`] once `limit`
    /// bytes have been accepted.
    pub fn limited(limit: usize) -> Self {
        Self::with_faults(IoFaultPlan::new().byte_limit(limit))
    }

    /// A copy of everything accepted so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().expect("sink mutex poisoned").clone()
    }

    /// Truncates the shared buffer to `len` bytes (no-op when already
    /// shorter) — the crash-surgery hook recovery harnesses use to cut a
    /// torn tail, and checkpoint rotation uses to reset a shard log.
    pub fn truncate(&self, len: usize) {
        self.buf.lock().expect("sink mutex poisoned").truncate(len);
    }
}

impl DurableIo for SharedVecIo {
    fn write(&mut self, buf: &[u8]) -> Result<usize, IoFault> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut held = self.buf.lock().expect("sink mutex poisoned");
        let n = self.plan.admit(held.len(), buf.len())?;
        held.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn sync(&mut self) -> Result<(), IoFault> {
        let held = self.buf.lock().expect("sink mutex poisoned").len();
        self.plan.check_sync(held)
    }
}

/// [`DurableIo`] over a real file (`std::fs`): appends with
/// [`std::io::Write`], syncs with [`std::fs::File::sync_all`]. Errors lose
/// their OS detail crossing into the static [`IoFault`] — the offset is
/// what recovery needs.
#[derive(Debug)]
pub struct FileIo {
    file: std::fs::File,
    written: u64,
}

impl FileIo {
    /// Creates (truncating) the file at `path` as an append sink.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            file: std::fs::File::create(path)?,
            written: 0,
        })
    }
}

impl DurableIo for FileIo {
    fn write(&mut self, buf: &[u8]) -> Result<usize, IoFault> {
        match self.file.write(buf) {
            Ok(n) => {
                self.written += n as u64;
                Ok(n)
            }
            Err(e) if e.kind() == std::io::ErrorKind::StorageFull => {
                Err(IoFault::NoSpace { at: self.written })
            }
            Err(_) => Err(IoFault::Failed {
                at: self.written,
                what: "file write failed",
            }),
        }
    }

    fn sync(&mut self) -> Result<(), IoFault> {
        self.file.sync_all().map_err(|_| IoFault::Failed {
            at: self.written,
            what: "fsync failed",
        })
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Checked failure of the WAL layer — appending, scanning, or recovering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The buffer does not start with the `UCPCWAL\0` magic: not a WAL.
    BadMagic,
    /// The header is intact but declares a version this build does not
    /// read.
    UnsupportedVersion(u32),
    /// The log is damaged past `valid_bytes`: frames `0..frames` (the
    /// valid prefix, ending at byte `valid_bytes`) are intact and
    /// replayable; everything after is torn or corrupt. This is the
    /// salvage point — [`recover`] applies the prefix and surfaces this
    /// alongside, never silently.
    Corrupt {
        /// Byte offset of the end of the last intact frame (or header).
        valid_bytes: u64,
        /// Number of intact frames before the damage.
        frames: u64,
        /// What the scanner tripped on.
        reason: &'static str,
    },
    /// An append or sync faulted; the log tail is now indeterminate.
    Io(IoFault),
    /// The writer was poisoned by an earlier fault (the payload): once any
    /// append fails the tail is indeterminate, so no further mutation may
    /// be logged — and therefore none may be applied.
    Poisoned(IoFault),
    /// The WAL's dimensionality does not match the engine restored from
    /// the snapshot — the log belongs to a different stream.
    DimensionMismatch {
        /// Dimensionality of the snapshot engine.
        expected: usize,
        /// Dimensionality declared by the WAL header.
        found: usize,
    },
    /// The snapshot half of [`recover`] failed.
    Snapshot(SnapshotError),
    /// A checksummed, well-formed frame did not apply cleanly (e.g. a
    /// remove of a handle that was never live) — the log and snapshot
    /// disagree about history.
    Replay(ClusterError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "buffer does not start with the UCPCWAL magic"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "WAL format version {v} is not supported (expected {WAL_VERSION})"
                )
            }
            Self::Corrupt {
                valid_bytes,
                frames,
                reason,
            } => write!(
                f,
                "WAL damaged after {frames} intact frames ({valid_bytes} bytes): {reason}"
            ),
            Self::Io(fault) => write!(f, "WAL append faulted: {fault}"),
            Self::Poisoned(fault) => {
                write!(f, "WAL poisoned by an earlier fault: {fault}")
            }
            Self::DimensionMismatch { expected, found } => write!(
                f,
                "WAL logs {found}-dimensional arrivals, snapshot engine has {expected}"
            ),
            Self::Snapshot(e) => write!(f, "snapshot half of recovery failed: {e}"),
            Self::Replay(e) => write!(f, "WAL frame did not replay cleanly: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// When the WAL writer syncs its sink — the `UCPC_WAL_FSYNC` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalFsync {
    /// Never sync (the OS decides); fastest, weakest.
    Off,
    /// One sync per [`WalWriter::group_commit`] — the group-commit policy
    /// the serving layer invokes once per flush. The default.
    #[default]
    Flush,
    /// Sync after every frame; strongest, slowest.
    Every,
}

impl WalFsync {
    /// Parses one `UCPC_WAL_FSYNC` value (`off`, `flush`, `every`),
    /// anything else ⇒ `None` — pure, exposed for env-free unit tests.
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "off" | "0" => Some(Self::Off),
            "flush" => Some(Self::Flush),
            "every" => Some(Self::Every),
            _ => None,
        }
    }
}

/// Appends checksummed mutation frames to a [`DurableIo`] sink —
/// log-before-apply's logging half.
///
/// Permanently poisons itself on the first I/O fault (module docs): every
/// subsequent append or sync returns [`WalError::Poisoned`] with the
/// original fault, so a caller honouring log-before-apply stops mutating
/// exactly where the durable history stops.
#[derive(Debug)]
pub struct WalWriter<I: DurableIo> {
    io: I,
    fsync: WalFsync,
    frames: u64,
    bytes: u64,
    poison: Option<IoFault>,
    scratch: Vec<u8>,
}

impl<I: DurableIo> WalWriter<I> {
    /// Starts a log for `m`-dimensional arrivals on `io`, writing the
    /// checksummed header immediately.
    pub fn create(io: I, m: usize, fsync: WalFsync) -> Result<Self, WalError> {
        let mut w = Self {
            io,
            fsync,
            frames: 0,
            bytes: 0,
            poison: None,
            scratch: Vec::with_capacity(WAL_HEADER_LEN),
        };
        w.scratch.extend_from_slice(WAL_MAGIC);
        w.scratch.extend_from_slice(&WAL_VERSION.to_le_bytes());
        w.scratch.extend_from_slice(&(m as u64).to_le_bytes());
        let crc = crc32(&w.scratch);
        w.scratch.extend_from_slice(&crc.to_le_bytes());
        w.commit_scratch()?;
        if w.fsync == WalFsync::Every {
            w.sync_or_poison()?;
        }
        Ok(w)
    }

    /// The sink (e.g. to read back a [`VecIo`] buffer).
    pub fn io(&self) -> &I {
        &self.io
    }

    /// Consumes the writer, yielding the sink.
    pub fn into_io(self) -> I {
        self.io
    }

    /// Frames fully appended so far (the header is not a frame).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes fully appended so far, header included — the offset a healthy
    /// [`scan_wal`] will report as `valid_bytes`.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes
    }

    /// The fault that poisoned this writer, if any.
    pub fn poisoned(&self) -> Option<&IoFault> {
        self.poison.as_ref()
    }

    /// Logs a committed arrival as its raw moment bits.
    /// `mu` and `mu2` must have the header's dimensionality.
    pub fn log_commit(&mut self, mu: &[f64], mu2: &[f64]) -> Result<(), WalError> {
        debug_assert_eq!(mu.len(), mu2.len());
        self.append_frame(|p| {
            p.push(TAG_COMMIT);
            extend_f64_bits(p, mu);
            extend_f64_bits(p, mu2);
        })
    }

    /// Logs an (effective) removal by its generation-stamped handle.
    pub fn log_remove(&mut self, h: ObjectHandle) -> Result<(), WalError> {
        self.append_frame(|p| {
            p.push(TAG_REMOVE);
            p.extend_from_slice(&(h.slot() as u32).to_le_bytes());
            p.extend_from_slice(&h.generation().to_le_bytes());
        })
    }

    /// Logs a stabilization (explicit or cadence-triggered) about to run.
    pub fn log_stabilize(&mut self, passes: u64) -> Result<(), WalError> {
        self.append_frame(|p| {
            p.push(TAG_STABILIZE);
            p.extend_from_slice(&passes.to_le_bytes());
        })
    }

    /// Group commit: makes every frame logged so far durable with one sync
    /// (under [`WalFsync::Flush`]; a no-op under `Off`, already done under
    /// `Every`). The serving layer calls this once per flush.
    pub fn group_commit(&mut self) -> Result<(), WalError> {
        if let Some(fault) = &self.poison {
            return Err(WalError::Poisoned(fault.clone()));
        }
        if self.fsync == WalFsync::Flush {
            self.sync_or_poison()?;
        }
        Ok(())
    }

    fn append_frame(&mut self, build: impl FnOnce(&mut Vec<u8>)) -> Result<(), WalError> {
        if let Some(fault) = &self.poison {
            return Err(WalError::Poisoned(fault.clone()));
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; 4]);
        build(&mut self.scratch);
        let len = self.scratch.len() - 4;
        debug_assert!(u32::try_from(len).is_ok(), "frame payload exceeds u32");
        self.scratch[..4].copy_from_slice(&(len as u32).to_le_bytes());
        let crc = crc32(&self.scratch);
        self.scratch.extend_from_slice(&crc.to_le_bytes());
        self.commit_scratch()?;
        self.frames += 1;
        if self.fsync == WalFsync::Every {
            self.sync_or_poison()?;
        }
        Ok(())
    }

    /// Writes the assembled scratch buffer whole, poisoning on any fault.
    fn commit_scratch(&mut self) -> Result<(), WalError> {
        match self.io.write_all(&self.scratch) {
            Ok(()) => {
                self.bytes += self.scratch.len() as u64;
                Ok(())
            }
            Err(fault) => {
                self.poison = Some(fault.clone());
                Err(WalError::Io(fault))
            }
        }
    }

    fn sync_or_poison(&mut self) -> Result<(), WalError> {
        match self.io.sync() {
            Ok(()) => Ok(()),
            Err(fault) => {
                self.poison = Some(fault.clone());
                Err(WalError::Io(fault))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

/// One decoded WAL frame — the unit of replay.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An arrival committed into the engine, as its defining moment bits.
    Commit {
        /// Expected-value vector, bit-exact.
        mu: Vec<f64>,
        /// Second-order moment vector, bit-exact.
        mu2: Vec<f64>,
    },
    /// An effective removal (the handle was live when logged).
    Remove(ObjectHandle),
    /// A stabilization of up to `passes` relocation passes.
    Stabilize {
        /// Relocation passes requested.
        passes: u64,
    },
}

/// Where (and why) a WAL byte stream stops being intact — the damage
/// report of [`scan_wal`] and [`recover`].
///
/// Carries the *location* of the first damaged frame, not just a flag:
/// `offset` is the byte at which that frame starts (equivalently, the
/// end of the valid prefix) and `frame_index` is its zero-based index —
/// the coordinates an operator needs to inspect, truncate, or quarantine
/// the tail. Header damage reports `offset == 0` and `frame_index == 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDamage {
    /// Byte offset where the first damaged frame starts (0 when the
    /// header itself is damaged).
    pub offset: u64,
    /// Zero-based index of the first damaged frame (== the number of
    /// intact frames before it).
    pub frame_index: u64,
    /// What the scanner tripped on.
    pub reason: &'static str,
}

impl fmt::Display for WalDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame {} (byte offset {}) is damaged: {}",
            self.frame_index, self.offset, self.reason
        )
    }
}

impl From<WalDamage> for WalError {
    /// The equivalent checked error: frames `0..frame_index` (ending at
    /// byte `offset`) are intact, everything after is damage.
    fn from(d: WalDamage) -> Self {
        WalError::Corrupt {
            valid_bytes: d.offset,
            frames: d.frame_index,
            reason: d.reason,
        }
    }
}

/// Result of [`scan_wal`]: the intact prefix of a log, plus where (and
/// why) it stops being intact.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Dimensionality declared by the header, when the header was intact.
    pub m: Option<usize>,
    /// Decoded frames of the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past frame `i` — `frame_ends[i]` is the smallest
    /// prefix of the log that still contains frames `0..=i` whole. The
    /// crash-point harness cuts at exactly these offsets.
    pub frame_ends: Vec<u64>,
    /// Byte offset of the end of the valid prefix (header end if no frame
    /// is intact, `0` if the header itself is torn).
    pub valid_bytes: u64,
    /// The damage past `valid_bytes`, if any, with the byte offset and
    /// frame index of the first damaged frame. `None` means the log is
    /// clean to the end.
    pub damage: Option<WalDamage>,
}

/// Walks a WAL byte stream, decoding the longest valid prefix.
///
/// Hard errors ([`WalError::BadMagic`], [`WalError::UnsupportedVersion`])
/// mean the buffer is not a replayable log at all. Damage — a torn or
/// checksum-failing header or frame — is *not* an error here: the scan
/// stops at the salvage point and reports the damage in
/// [`WalScan::damage`], because a torn tail is exactly what a crash
/// mid-append leaves behind.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut scan = WalScan {
        m: None,
        records: Vec::new(),
        frame_ends: Vec::new(),
        valid_bytes: 0,
        damage: None,
    };
    if bytes.len() >= 8 && &bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    if bytes.len() < WAL_HEADER_LEN {
        scan.damage = Some(WalDamage {
            offset: 0,
            frame_index: 0,
            reason: "torn header",
        });
        return Ok(scan);
    }
    let stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if crc32(&bytes[..20]) != stored {
        scan.damage = Some(WalDamage {
            offset: 0,
            frame_index: 0,
            reason: "header checksum mismatch",
        });
        return Ok(scan);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }
    let m_raw = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let Ok(m) = usize::try_from(m_raw) else {
        return Err(WalError::Corrupt {
            valid_bytes: 0,
            frames: 0,
            reason: "header dimensionality overflows usize",
        });
    };
    scan.m = Some(m);
    scan.valid_bytes = WAL_HEADER_LEN as u64;

    let mut pos = WAL_HEADER_LEN;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(scan);
        }
        // The damaged frame starts exactly where the valid prefix ends,
        // and its index is the count of intact frames before it.
        let damage = |reason| {
            Some(WalDamage {
                offset: scan.valid_bytes,
                frame_index: scan.records.len() as u64,
                reason,
            })
        };
        if remaining < 4 {
            scan.damage = damage("torn frame length");
            return Ok(scan);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        // Torn check first: a frame that runs past the end is a crash
        // mid-append, however implausible its length field.
        let Some(frame_end) = pos
            .checked_add(4)
            .and_then(|p| p.checked_add(len))
            .and_then(|p| p.checked_add(4))
        else {
            scan.damage = damage("torn frame");
            return Ok(scan);
        };
        if frame_end > bytes.len() {
            scan.damage = damage("torn frame");
            return Ok(scan);
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored = u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().expect("crc"));
        if crc32(&bytes[pos..pos + 4 + len]) != stored {
            scan.damage = damage("frame checksum mismatch");
            return Ok(scan);
        }
        let Some(record) = decode_payload(payload, m) else {
            scan.damage = damage("malformed frame payload");
            return Ok(scan);
        };
        scan.records.push(record);
        scan.frame_ends.push(frame_end as u64);
        scan.valid_bytes = frame_end as u64;
        pos = frame_end;
    }
}

/// Decodes one checksummed frame payload; `None` if the tag or shape is
/// wrong (allocation is bounded by the payload slice — no hostile length
/// field reaches an allocator).
fn decode_payload(payload: &[u8], m: usize) -> Option<WalRecord> {
    let (&tag, body) = payload.split_first()?;
    match tag {
        TAG_COMMIT => {
            if body.len() != m.checked_mul(16)? {
                return None;
            }
            let f64_at = |i: usize| {
                f64::from_bits(u64::from_le_bytes(
                    body[i * 8..i * 8 + 8].try_into().expect("8 bytes"),
                ))
            };
            let mu = (0..m).map(f64_at).collect();
            let mu2 = (m..2 * m).map(f64_at).collect();
            Some(WalRecord::Commit { mu, mu2 })
        }
        TAG_REMOVE => {
            if body.len() != 8 {
                return None;
            }
            let slot = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
            let gen = u32::from_le_bytes(body[4..].try_into().expect("4 bytes"));
            Some(WalRecord::Remove(ObjectHandle::new(slot, gen)))
        }
        TAG_STABILIZE => {
            if body.len() != 8 {
                return None;
            }
            let passes = u64::from_le_bytes(body.try_into().expect("8 bytes"));
            Some(WalRecord::Stabilize { passes })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Outcome of [`recover`]: the rebuilt engine plus the salvage report.
#[derive(Debug)]
pub struct Recovery {
    /// The engine, bit-identical to the uninterrupted run at the point of
    /// the last intact frame.
    pub engine: IncrementalUcpc,
    /// WAL frames replayed on top of the snapshot.
    pub frames_applied: u64,
    /// Byte offset of the end of the valid WAL prefix.
    pub valid_bytes: u64,
    /// Damage found past the valid prefix — the byte offset and frame
    /// index of the first damaged frame — or `None` for a clean log.
    /// Recovery *applied* the valid prefix either way; the caller decides
    /// whether a torn tail is an expected crash artifact or cause for
    /// alarm.
    pub damage: Option<WalDamage>,
}

/// Replays one decoded WAL record on a live engine — the single replay
/// step [`recover`] folds, exposed so the crash-point harness can finish
/// an interrupted log suffix on a recovered engine.
///
/// A commit rebuilds the arrival via [`Moments::from_mu_mu2`] (bit-exact
/// from the logged bits) and inserts it through the serial scan — which
/// the serving layer's batched commit is shadow-asserted equal to — so
/// replay reproduces labels, handles, and statistics bits exactly.
pub fn apply_record(engine: &mut IncrementalUcpc, rec: &WalRecord) -> Result<(), ClusterError> {
    match rec {
        WalRecord::Commit { mu, mu2 } => engine
            .insert_moments(&Moments::from_mu_mu2(mu.clone(), mu2.clone()))
            .map(|_| ()),
        WalRecord::Remove(h) => engine.remove(*h),
        WalRecord::Stabilize { passes } => {
            engine.stabilize(usize::try_from(*passes).unwrap_or(usize::MAX));
            Ok(())
        }
    }
}

/// Rebuilds an engine from its last checkpoint plus the WAL written since:
/// restores the snapshot (v1 or v2), scans the log's valid prefix, and
/// replays every intact frame. See the module docs for the byte-identity
/// derivation and the salvage semantics.
///
/// An empty `wal` (crash before the log header was written) recovers to
/// exactly the snapshot. A torn or corrupt tail truncates replay at the
/// salvage point, reported in [`Recovery::damage`]. A log whose *intact*
/// frames do not apply cleanly — or whose dimensionality disagrees with
/// the snapshot — is a hard error: snapshot and log are not from the same
/// history.
pub fn recover(snapshot: &[u8], wal: &[u8]) -> Result<Recovery, WalError> {
    let mut engine = IncrementalUcpc::restore(snapshot).map_err(WalError::Snapshot)?;
    if wal.is_empty() {
        return Ok(Recovery {
            engine,
            frames_applied: 0,
            valid_bytes: 0,
            damage: None,
        });
    }
    let scan = scan_wal(wal)?;
    if let Some(m) = scan.m {
        if m != engine.m {
            return Err(WalError::DimensionMismatch {
                expected: engine.m,
                found: m,
            });
        }
    }
    for rec in &scan.records {
        apply_record(&mut engine, rec).map_err(WalError::Replay)?;
    }
    Ok(Recovery {
        engine,
        frames_applied: scan.records.len() as u64,
        valid_bytes: scan.valid_bytes,
        damage: scan.damage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::StreamBackend;
    use ucpc_uncertain::{UncertainObject, UnivariatePdf};

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::normal(c, 0.2),
            UnivariatePdf::uniform_centered(-c, 0.5),
        ])
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_then_frames_scan_back_exactly() {
        let mut w = WalWriter::create(VecIo::new(), 2, WalFsync::Flush).unwrap();
        w.log_commit(&[1.5, -2.0], &[3.0, 4.25]).unwrap();
        w.log_remove(ObjectHandle::new(7, 3)).unwrap();
        w.log_stabilize(4).unwrap();
        w.group_commit().unwrap();
        assert_eq!(w.frames(), 3);
        assert_eq!(w.io().syncs(), 1, "group commit syncs once per flush");
        let bytes = w.into_io().into_bytes();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.m, Some(2));
        assert_eq!(scan.damage, None);
        assert_eq!(scan.valid_bytes, bytes.len() as u64);
        assert_eq!(
            scan.records,
            vec![
                WalRecord::Commit {
                    mu: vec![1.5, -2.0],
                    mu2: vec![3.0, 4.25],
                },
                WalRecord::Remove(ObjectHandle::new(7, 3)),
                WalRecord::Stabilize { passes: 4 },
            ]
        );
        assert_eq!(scan.frame_ends.len(), 3);
        assert_eq!(*scan.frame_ends.last().unwrap(), bytes.len() as u64);
    }

    #[test]
    fn every_fsync_syncs_per_frame() {
        let mut w = WalWriter::create(VecIo::new(), 1, WalFsync::Every).unwrap();
        w.log_stabilize(1).unwrap();
        w.log_stabilize(1).unwrap();
        w.group_commit().unwrap();
        // Header + 2 frames, and group_commit adds nothing under Every.
        assert_eq!(w.io().syncs(), 3);
        let mut w = WalWriter::create(VecIo::new(), 1, WalFsync::Off).unwrap();
        w.log_stabilize(1).unwrap();
        w.group_commit().unwrap();
        assert_eq!(w.io().syncs(), 0);
    }

    #[test]
    fn torn_tail_salvages_to_the_last_intact_frame() {
        let mut w = WalWriter::create(VecIo::new(), 1, WalFsync::Off).unwrap();
        w.log_commit(&[1.0], &[2.0]).unwrap();
        w.log_commit(&[3.0], &[10.0]).unwrap();
        let bytes = w.into_io().into_bytes();
        let full = scan_wal(&bytes).unwrap();
        let first_end = full.frame_ends[0] as usize;
        // Cut mid-second-frame: every cut strictly between the two frame
        // boundaries salvages exactly one record.
        for cut in first_end + 1..bytes.len() {
            let scan = scan_wal(&bytes[..cut]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_bytes, first_end as u64);
            assert!(
                matches!(scan.damage, Some(WalDamage { frame_index: 1, .. })),
                "cut at {cut}: {:?}",
                scan.damage
            );
        }
    }

    #[test]
    fn bit_flips_never_pass_the_checksum() {
        let mut w = WalWriter::create(VecIo::new(), 1, WalFsync::Off).unwrap();
        w.log_commit(&[1.0], &[2.0]).unwrap();
        w.log_stabilize(2).unwrap();
        let bytes = w.into_io().into_bytes();
        let clean = scan_wal(&bytes).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match scan_wal(&flipped) {
                    Ok(scan) => assert!(
                        scan.records.len() < clean.records.len() || scan.damage.is_some(),
                        "flip {byte}:{bit} silently accepted"
                    ),
                    // Flips inside the magic / version land here.
                    Err(WalError::BadMagic | WalError::UnsupportedVersion(_)) => {}
                    Err(e) => panic!("flip {byte}:{bit}: unexpected {e:?}"),
                }
            }
        }
    }

    #[test]
    fn enospc_poisons_the_writer_permanently() {
        // Room for the header and one frame, then the wall.
        let mut probe = WalWriter::create(VecIo::new(), 1, WalFsync::Off).unwrap();
        probe.log_commit(&[1.0], &[2.0]).unwrap();
        let one_frame = probe.bytes_logged() as usize;

        for limit in WAL_HEADER_LEN..one_frame {
            let mut w = WalWriter::create(VecIo::limited(limit), 1, WalFsync::Off).unwrap();
            let err = w.log_commit(&[1.0], &[2.0]).unwrap_err();
            assert!(
                matches!(err, WalError::Io(IoFault::NoSpace { .. })),
                "{err:?}"
            );
            // Sticky: later appends fail without touching the sink.
            let tail = w.io().bytes().len();
            let err = w.log_stabilize(1).unwrap_err();
            assert!(matches!(err, WalError::Poisoned(_)), "{err:?}");
            assert_eq!(w.io().bytes().len(), tail, "poisoned append wrote bytes");
            let err = w.group_commit().unwrap_err();
            assert!(matches!(err, WalError::Poisoned(_)));
            // The torn sink still salvages to the header.
            let scan = scan_wal(w.io().bytes()).unwrap();
            assert_eq!(scan.records.len(), 0);
            assert_eq!(scan.valid_bytes, WAL_HEADER_LEN as u64);
        }
    }

    #[test]
    fn short_writes_are_transparent() {
        let mut chunked = WalWriter::create(VecIo::chunked(3), 2, WalFsync::Off).unwrap();
        let mut whole = WalWriter::create(VecIo::new(), 2, WalFsync::Off).unwrap();
        for w in [&mut chunked, &mut whole] {
            w.log_commit(&[1.0, 2.0], &[3.0, 8.0]).unwrap();
            w.log_remove(ObjectHandle::new(0, 1)).unwrap();
        }
        assert_eq!(chunked.io().bytes(), whole.io().bytes());
    }

    #[test]
    fn failing_sync_poisons_too() {
        let mut w = WalWriter::create(VecIo::new().failing_syncs(), 1, WalFsync::Flush).unwrap();
        w.log_stabilize(1).unwrap();
        let err = w.group_commit().unwrap_err();
        assert!(
            matches!(err, WalError::Io(IoFault::Failed { .. })),
            "{err:?}"
        );
        let err = w.log_stabilize(1).unwrap_err();
        assert!(matches!(err, WalError::Poisoned(_)), "{err:?}");
    }

    #[test]
    fn recover_replays_snapshot_plus_log() {
        let mut reference = IncrementalUcpc::with_backend(2, 2, StreamBackend::Slab).unwrap();
        let mut handles = Vec::new();
        for c in [0.0, 0.5, 8.0] {
            handles.push(reference.insert(&obj(c)).unwrap());
        }
        let checkpoint = reference.snapshot();
        // Post-checkpoint traffic, logged as it happens.
        let mut w = WalWriter::create(VecIo::new(), 2, WalFsync::Flush).unwrap();
        let arrivals = [obj(8.5), obj(0.25)];
        for a in &arrivals {
            let mo = a.moments();
            w.log_commit(mo.mu(), mo.mu2()).unwrap();
            reference.insert(a).unwrap();
        }
        w.log_remove(handles[1]).unwrap();
        reference.remove(handles[1]).unwrap();
        w.log_stabilize(3).unwrap();
        reference.stabilize(3);
        w.group_commit().unwrap();

        let rec = recover(&checkpoint, w.io().bytes()).unwrap();
        assert_eq!(rec.frames_applied, 4);
        assert_eq!(rec.damage, None);
        assert_eq!(rec.engine.live_labels(), reference.live_labels());
        assert_eq!(
            rec.engine.objective().to_bits(),
            reference.objective().to_bits()
        );
        assert_eq!(rec.engine.snapshot(), reference.snapshot());
    }

    #[test]
    fn recover_tolerates_an_empty_log_and_rejects_mismatches() {
        let mut e = IncrementalUcpc::new(2, 2).unwrap();
        e.insert(&obj(1.0)).unwrap();
        let snap = e.snapshot();
        let rec = recover(&snap, &[]).unwrap();
        assert_eq!(rec.frames_applied, 0);
        assert_eq!(rec.engine.snapshot(), snap);

        // Wrong dimensionality: the log is from a different stream.
        let w = WalWriter::create(VecIo::new(), 5, WalFsync::Off).unwrap();
        assert_eq!(
            recover(&snap, w.io().bytes()).unwrap_err(),
            WalError::DimensionMismatch {
                expected: 2,
                found: 5
            }
        );
        // Not a WAL at all.
        assert_eq!(
            recover(&snap, b"definitely not a log").unwrap_err(),
            WalError::BadMagic
        );
        // Corrupt snapshot half.
        assert!(matches!(
            recover(b"definitely not a snapshot", &[]).unwrap_err(),
            WalError::Snapshot(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn replay_of_a_never_live_handle_is_a_checked_error() {
        let mut e = IncrementalUcpc::new(2, 2).unwrap();
        e.insert(&obj(1.0)).unwrap();
        let snap = e.snapshot();
        let mut w = WalWriter::create(VecIo::new(), 2, WalFsync::Off).unwrap();
        w.log_remove(ObjectHandle::new(99, 7)).unwrap();
        let err = recover(&snap, w.io().bytes()).unwrap_err();
        assert!(matches!(err, WalError::Replay(_)), "{err:?}");
    }
}
