//! Batched assignment serving over [`IncrementalUcpc`] — the point-query
//! front door: "here is a new uncertain object; which cluster, with what
//! confidence?"
//!
//! # Shape
//!
//! [`ServingUcpc`] wraps a live [`IncrementalUcpc`] behind an ingest queue.
//! Requests — placement queries, commits, removals, stabilizations — are
//! *submitted* (admitted into the queue, arrival moments staged into a
//! preallocated scratch arena, a [`Ticket`] issued) and later *flushed* as
//! one micro-batch, either explicitly ([`ServingUcpc::flush`]) or through
//! [`ServingUcpc::poll`] when the batch-size or deadline trigger fires.
//! A flush runs the state machine admit → batch → price → apply → respond:
//!
//! 1. **price** — every staged arrival in the batch is priced against the
//!    flush-start cluster statistics in two arena passes: a cluster-major
//!    pass where one dispatched [`dot_block`] call per cluster loads that
//!    cluster's `mean_sum` row once and fills a row of the `k × B` cross
//!    matrix (inside, arrivals stream through the same fused [`dot3`]
//!    batching the relocation scan uses), then an arrival-major pass that
//!    evaluates each arrival's delta-`J` row through per-cluster hoisted
//!    pricers ([`AddPricer`]) and folds its top-k answer while the row is
//!    cache-hot — producing the full `B × k` delta matrix and every
//!    arrival's ranked answer in one batch;
//! 2. **apply** — requests are replayed in submission order: queries read
//!    their delta row, commits place the arrival through
//!    `IncrementalUcpc::commit_placed` (the exact serial mutation
//!    sequence), removals and stabilizations run on the live engine;
//! 3. **respond** — each request's answer ([`ServingResponse`]) is queued
//!    in submission order for [`ServingUcpc::pop_response`], with placement
//!    answers carrying the top-`k'` clusters by exact delta-`J` and the
//!    best/second-best margin.
//!
//! Backpressure is saturating and checked: a submit against a full queue
//! returns [`ServingError::QueueFull`] — it never blocks and never drops
//! silently — and the caller sheds or retries after a flush.
//!
//! # Why batched pricing is bit-identical to serial
//!
//! The correctness bar is the one every backend of the engine has met: a
//! committed batch of `B` arrivals must leave labels, `ClusterStats` and
//! the objective **byte-identical** to `B` serial
//! [`IncrementalUcpc::insert`] calls. That holds by construction:
//!
//! * **Deltas.** Serial placement scans fold
//!   `delta = stats[c].delta_j_add(v)` over ascending `c` (the pruned scan,
//!   [`best_insertion_bounded`], is shadow-asserted bit-identical to the
//!   full scan). `delta_j_add(v)` is a *pure function* of the bits of
//!   `stats[c]` and `v`, equal to `delta_j_add_with_cross(v, ⟨s_c, mu(v)⟩)`.
//!   The batch pricer computes exactly that cross term — [`dot_block`]
//!   yields per-arrival crosses contractually bit-identical to the single
//!   [`dot`]`(s_c, mu_i)` the serial kernel evaluates (the SIMD module's
//!   bit-identity contract), the hoisted [`AddPricer`] evaluates the same
//!   Corollary-1 expression in the same operation order (the hoisting
//!   moves only *when* the per-cluster divisions happen, not their
//!   values), and short rows below
//!   [`DISPATCH_THRESHOLD`] use the identical per-cluster `delta_j_add`
//!   calls — so every entry of the `B × k` matrix carries the very bits the
//!   serial scan would compute *against flush-start statistics*.
//! * **Staleness.** Applying the batch in submission order mutates
//!   statistics mid-batch, so a pre-priced delta is valid only while its
//!   cluster is untouched. Every mutation marks its clusters dirty for the
//!   remainder of the flush: a commit dirties the cluster it fed, a removal
//!   dirties the cluster it drained, a stabilization that relocated
//!   anything dirties all `k`. At apply time each arrival folds a *merged*
//!   row — the pre-priced delta for clean clusters (whose statistics are
//!   bitwise unchanged since flush start, so the delta is bitwise what
//!   serial would compute right now) and a live `delta_j_add` recompute for
//!   dirty ones — with the scan's exact strict-less, first-index-wins-ties
//!   semantics. The folded argmin therefore matches the serial scan bit for
//!   bit (debug builds shadow-assert this against a live full scan on every
//!   commit).
//! * **Storage.** The staged copy of an arrival is written and re-read
//!   **verbatim** — [`MomentArena::overwrite_row`] on admission,
//!   [`MomentStore::insert_view`] on commit copy every moment row and
//!   scalar aggregate bit for bit, deriving nothing — and
//!   `IncrementalUcpc::commit_placed` replays the serial insert's exact
//!   mutation sequence (tracked statistics update, verbatim store, label
//!   write, live count). Handles come from the same slot/generation
//!   discipline, so even the issued [`ObjectHandle`]s coincide.
//! * **Cadence.** Stabilization runs on a *commit counter*
//!   ([`ServingConfig::stabilize_every`]), firing immediately after every
//!   N-th commit — mid-batch when the batch spans the boundary — so the
//!   stabilization points in the edit sequence are independent of how
//!   arrivals were batched, and a serial replay reproduces them exactly.
//!
//! The differential harness (`tests/serving_differential.rs`) pins all of
//! this across batch sizes × storage backends × pruning × SIMD backends.
//!
//! # Durability
//!
//! With a write-ahead log attached ([`ServingUcpc::attach_wal`], or the
//! `UCPC_WAL=on` auto-attach), every mutation in a flush — commit,
//! effective removal, explicit *and cadence-triggered* stabilization — is
//! appended to the log **before** it is applied, and the flush ends with
//! one group-commit sync. The invariant is *applied iff logged*: a
//! mutation whose frame cannot be written answers
//! [`ServingResponse::Failed`] and leaves the engine untouched, and after
//! the first fault the writer stays poisoned (the file tail is
//! indeterminate, so later frames could be unreachable) until the caller
//! rotates logs. [`ServingUcpc::checkpoint_into`] is that rotation:
//! stream a chunked v2 snapshot, sync it, start a fresh log.
//! [`crate::wal::recover`]`(snapshot, wal)` then rebuilds an engine
//! byte-identical to the never-crashed run at every crash point — the
//! derivation lives in the [`crate::wal`] module docs, and
//! `tests/wal_recovery.rs` pins it at every frame boundary and mid-frame
//! cut.
//!
//! # Knobs
//!
//! [`ServingConfig::default`] honours `UCPC_BATCH` (micro-batch size),
//! `UCPC_STABILIZE` (stabilize after every N commits, `0`/`off` = never),
//! `UCPC_WAL` (`on` auto-attaches an in-memory write-ahead log) and
//! `UCPC_WAL_FSYNC` (`off`/`flush`/`every` sync policy), all read through
//! the shared warn-and-fall-back knob reader
//! ([`ucpc_uncertain::env::read_knob`]).
//!
//! [`best_insertion_bounded`]: crate::pruning::best_insertion_bounded
//! [`dot`]: ucpc_uncertain::simd::dot
//! [`dot3`]: ucpc_uncertain::simd::dot3
//! [`dot_block`]: ucpc_uncertain::simd::dot_block
//! [`AddPricer`]: crate::objective::AddPricer
//! [`DISPATCH_THRESHOLD`]: ucpc_uncertain::simd::DISPATCH_THRESHOLD
//! [`MomentArena::overwrite_row`]: ucpc_uncertain::MomentArena::overwrite_row
//! [`MomentStore::insert_view`]: crate::incremental::IncrementalUcpc

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::framework::ClusterError;
use crate::incremental::{IncrementalUcpc, ObjectHandle, StreamBackend};
use crate::objective::AddPricer;
use crate::wal::{DurableIo, VecIo, WalError, WalFsync, WalWriter};
use ucpc_uncertain::simd::{dot_block, DISPATCH_THRESHOLD};
use ucpc_uncertain::{MomentArena, Moments, UncertainObject};

/// The serving layer's write-ahead logger: a [`WalWriter`] over a boxed
/// sink, so the same field serves an in-memory [`VecIo`] (tests, the
/// `UCPC_WAL=on` auto-attach) and a [`FileIo`](crate::wal::FileIo).
pub type BoxedWal = WalWriter<Box<dyn DurableIo>>;

/// Time source for the deadline flush trigger — pluggable so the deadline
/// path gets exact tests instead of sleep-based ones.
pub trait Clock: std::fmt::Debug {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real time source: [`Instant::now`]. The default.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Monotonically increasing request identifier, issued at submission and
/// echoed with the request's [`ServingResponse`]. Responses come back in
/// ticket (= submission) order.
pub type Ticket = u64;

/// The most clusters a [`PlacementAnswer`] can rank. Answers are fixed-size
/// so steady-state serving allocates nothing per request.
pub const MAX_TOP_K: usize = 8;

/// Checked submission failure of [`ServingUcpc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// The ingest queue is at capacity: the request was *not* admitted
    /// (shed). Flush (or poll past a trigger) and resubmit — admission
    /// never blocks and never drops an admitted request.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The arrival's dimensionality does not match the engine's.
    DimensionMismatch {
        /// Engine dimensionality `m`.
        expected: usize,
        /// The arrival's dimensionality.
        found: usize,
    },
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "serving queue full ({capacity} pending requests)")
            }
            Self::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "arrival has {found} dimensions, engine expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Top-`k'` placement answer for one arrival: the `len` best clusters by
/// exact delta-`J` (ascending; ties keep the lower cluster index, matching
/// the placement scan), plus the exact confidence margin
/// `second_best − best` over **all** `k` clusters (`+∞` when `k == 1`:
/// there is no runner-up to close the gap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementAnswer {
    entries: [(usize, f64); MAX_TOP_K],
    len: u8,
    margin: f64,
}

impl PlacementAnswer {
    /// The ranked `(cluster, delta_J)` entries, best first.
    pub fn ranked(&self) -> &[(usize, f64)] {
        &self.entries[..self.len as usize]
    }

    /// The winning cluster and its exact objective increase — bit-identical
    /// to what the serial placement scan returns.
    pub fn best(&self) -> (usize, f64) {
        self.entries[0]
    }

    /// `delta_J(second_best) − delta_J(best)` over all `k` clusters —
    /// the exact confidence margin of the assignment. `+∞` when `k == 1`.
    pub fn margin(&self) -> f64 {
        self.margin
    }
}

/// One flushed request's answer, paired with its [`Ticket`] by
/// [`ServingUcpc::pop_response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServingResponse {
    /// A placement query: ranked clusters and margin; nothing committed.
    Placed(PlacementAnswer),
    /// A commit: the arrival was inserted into `answer.best().0` and is
    /// addressable by `handle`.
    Committed {
        /// Generation-stamped handle of the stored arrival.
        handle: ObjectHandle,
        /// The placement answer the commit acted on.
        answer: PlacementAnswer,
    },
    /// A removal: `Ok` if the handle was live, the engine's checked
    /// [`ClusterError::StaleHandle`] otherwise.
    Removed(Result<(), ClusterError>),
    /// An explicit stabilization: relocations applied.
    Stabilized {
        /// Relocations the pass(es) applied.
        relocations: usize,
    },
    /// The request's mutation could not be written to the attached
    /// write-ahead log, so it was **not applied** — log-before-apply means
    /// the engine only ever holds state the log can reproduce. After the
    /// first fault the writer is poisoned ([`WalError::Poisoned`]), so
    /// every later mutation fails the same way until the caller rotates
    /// the log ([`ServingUcpc::checkpoint_into`]) or detaches it.
    Failed {
        /// The logging failure.
        error: WalError,
    },
}

/// Configuration of a [`ServingUcpc`]. Plain data; fields are clamped to
/// sane bounds at [`ServingUcpc`] construction (`batch ≥ 1`,
/// `queue_capacity ≥ batch`, `1 ≤ top_k ≤ MAX_TOP_K`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingConfig {
    /// Micro-batch size: [`ServingUcpc::poll`] flushes once this many
    /// requests are pending. Env default: `UCPC_BATCH`, else 16.
    pub batch: usize,
    /// Pending-request capacity; a submit beyond it is shed with a checked
    /// [`ServingError::QueueFull`]. Default: `4 × batch`.
    pub queue_capacity: usize,
    /// Deadline trigger: [`ServingUcpc::poll`] flushes a non-empty queue
    /// whose *oldest* request has waited at least this long, so a trickle
    /// of arrivals is never stranded waiting for a full batch. `None`
    /// (default) disables the trigger — flushing is then size-driven or
    /// explicit.
    pub deadline: Option<Duration>,
    /// Stabilize cadence: run [`IncrementalUcpc::stabilize`] immediately
    /// after every N-th commit (counted across flushes, firing mid-batch
    /// when needed, so results are independent of batch size). `0` = never.
    /// Env default: `UCPC_STABILIZE`, else 0.
    pub stabilize_every: usize,
    /// Relocation passes per cadence-triggered stabilization.
    pub stabilize_passes: usize,
    /// Clusters ranked per [`PlacementAnswer`] (clamped to
    /// [`MAX_TOP_K`] and to `k`).
    pub top_k: usize,
    /// Whether construction auto-attaches a write-ahead log (an in-memory
    /// [`VecIo`] sink; attach a file-backed sink explicitly via
    /// [`ServingUcpc::attach_wal`] for real durability). Env default:
    /// `UCPC_WAL`, else off.
    pub wal: bool,
    /// Fsync policy for the attached log. Env default: `UCPC_WAL_FSYNC`,
    /// else [`WalFsync::Flush`] (one sync per flush — group commit).
    pub wal_fsync: WalFsync,
}

impl ServingConfig {
    /// Parses one `UCPC_BATCH` value: a positive integer, anything else ⇒
    /// `None` — pure, exposed for env-free unit tests.
    pub fn parse_batch(v: &str) -> Option<usize> {
        v.parse::<usize>().ok().filter(|&b| b > 0)
    }

    /// Parses one `UCPC_STABILIZE` value: a non-negative integer or
    /// `"off"` (= 0 = never), anything else ⇒ `None` — pure, exposed for
    /// env-free unit tests.
    pub fn parse_stabilize(v: &str) -> Option<usize> {
        match v {
            "off" => Some(0),
            _ => v.parse::<usize>().ok(),
        }
    }

    /// Parses one `UCPC_WAL` value (`on`/`1`/`off`/`0`), anything else ⇒
    /// `None` — pure, exposed for env-free unit tests.
    pub fn parse_wal(v: &str) -> Option<bool> {
        match v {
            "on" | "1" => Some(true),
            "off" | "0" => Some(false),
            _ => None,
        }
    }
}

impl Default for ServingConfig {
    /// Batch size from `UCPC_BATCH` (default 16), stabilize cadence from
    /// `UCPC_STABILIZE` (default 0 = never), write-ahead logging from
    /// `UCPC_WAL` (default off) with its fsync policy from
    /// `UCPC_WAL_FSYNC` (default `flush`), all through the shared
    /// warn-and-fall-back knob reader; queue capacity `4 × batch`, no
    /// deadline, 2 stabilize passes, full [`MAX_TOP_K`] ranking.
    fn default() -> Self {
        let batch =
            ucpc_uncertain::env::read_knob("UCPC_BATCH", "a positive integer", Self::parse_batch)
                .unwrap_or(16);
        let stabilize_every = ucpc_uncertain::env::read_knob(
            "UCPC_STABILIZE",
            "a non-negative integer or off",
            Self::parse_stabilize,
        )
        .unwrap_or(0);
        let wal =
            ucpc_uncertain::env::read_knob("UCPC_WAL", "on|off", Self::parse_wal).unwrap_or(false);
        let wal_fsync =
            ucpc_uncertain::env::read_knob("UCPC_WAL_FSYNC", "off|flush|every", WalFsync::parse)
                .unwrap_or_default();
        Self {
            batch,
            queue_capacity: batch * 4,
            deadline: None,
            stabilize_every,
            stabilize_passes: 2,
            top_k: MAX_TOP_K,
            wal,
            wal_fsync,
        }
    }
}

/// What one queued request does at apply time. Query/commit arrivals own
/// one staging row each until their flush answers them.
#[derive(Debug, Clone, Copy)]
enum ReqKind {
    Query { row: u32 },
    Commit { row: u32 },
    Remove(ObjectHandle),
    Stabilize { passes: usize },
}

#[derive(Debug, Clone, Copy)]
struct Request {
    ticket: Ticket,
    at: Instant,
    kind: ReqKind,
}

/// The batched assignment-serving front door over a live
/// [`IncrementalUcpc`] — see the [module docs](self) for the state machine
/// and the bit-identity derivation.
///
/// ```
/// use ucpc_core::serving::{ServingConfig, ServingResponse, ServingUcpc};
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let cfg = ServingConfig { batch: 2, ..ServingConfig::default() };
/// let mut serving = ServingUcpc::new(1, 2, cfg).unwrap();
/// let o = |c: f64| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);
///
/// let t0 = serving.submit_commit_object(&o(0.0)).unwrap();
/// let t1 = serving.submit_query_object(&o(9.0)).unwrap();
/// assert_eq!(serving.flush(), 2);
///
/// let (ticket, resp) = serving.pop_response().unwrap();
/// assert_eq!(ticket, t0);
/// assert!(matches!(resp, ServingResponse::Committed { .. }));
/// let (ticket, resp) = serving.pop_response().unwrap();
/// assert_eq!(ticket, t1);
/// let ServingResponse::Placed(answer) = resp else { unreachable!() };
/// assert_eq!(answer.ranked().len(), 2);
/// assert!(answer.margin() >= 0.0);
/// ```
#[derive(Debug)]
pub struct ServingUcpc {
    engine: IncrementalUcpc,
    cfg: ServingConfig,
    /// Scratch rows for queued arrivals: `queue_capacity` rows, written in
    /// place per admission ([`MomentArena::overwrite_row`], a verbatim
    /// copy), recycled through `free_rows` — no allocation per request.
    staging: MomentArena,
    free_rows: Vec<u32>,
    pending: VecDeque<Request>,
    responses: VecDeque<(Ticket, ServingResponse)>,
    /// Flush-scoped `B × k` delta matrix (row-major by arrival).
    deltas: Vec<f64>,
    /// Staging rows of the current flush's arrivals, in submission order.
    priced_rows: Vec<u32>,
    /// Flush-scoped per-arrival scalars `(Σvar, ‖mu‖², Σμ₂)`, staged once
    /// so the pricing loop reads no [`MomentView`] per (cluster, arrival).
    priced_scalars: Vec<(f64, f64, f64)>,
    /// Per-cluster cross-term scratch for [`dot_block`] (`B` entries).
    crosses: Vec<f64>,
    /// Flush-scoped per-cluster pricers ([`AddPricer`]) — the hoisted
    /// constants each cluster's delta evaluation shares across the batch.
    pricers: Vec<AddPricer>,
    /// Flush-scoped precomputed answers, one per priced arrival, folded in
    /// a single tight pass over the delta matrix while it is cache-hot.
    /// Valid for an arrival unless a mutation preceded it in the batch
    /// (`any_dirty`), in which case [`Self::answer_for`] re-folds merged.
    answers: Vec<PlacementAnswer>,
    /// Per-cluster dirty stamp: `dirty[c] == flush_seq` means cluster `c`
    /// mutated during the current flush and its pre-priced deltas are
    /// stale.
    dirty: Vec<u64>,
    /// Whether *any* cluster mutated during the current flush — lets
    /// [`Self::answer_for`] skip the per-cluster dirty merge entirely on
    /// flushes that committed nothing.
    any_dirty: bool,
    flush_seq: u64,
    next_ticket: Ticket,
    commits_since_stabilize: usize,
    /// Construction time, stamped on requests instead of a per-admission
    /// clock read whenever no deadline trigger is configured.
    epoch: Instant,
    /// Time source for deadline stamps ([`SystemClock`] by default;
    /// injectable via [`Self::set_clock`] so deadline tests are exact).
    clock: Box<dyn Clock>,
    /// The attached write-ahead log, if any: every mutation is logged
    /// here *before* it is applied, and [`Self::flush`] group-commits once
    /// at the end (module docs, "Durability").
    wal: Option<BoxedWal>,
}

impl ServingUcpc {
    /// A serving layer over a fresh engine of `m` dimensions and `k`
    /// clusters on the env-default storage backend.
    pub fn new(m: usize, k: usize, cfg: ServingConfig) -> Result<Self, ClusterError> {
        Ok(Self::over(IncrementalUcpc::new(m, k)?, cfg))
    }

    /// [`Self::new`] with an explicit storage backend.
    pub fn with_backend(
        m: usize,
        k: usize,
        backend: StreamBackend,
        cfg: ServingConfig,
    ) -> Result<Self, ClusterError> {
        Ok(Self::over(
            IncrementalUcpc::with_backend(m, k, backend)?,
            cfg,
        ))
    }

    /// Wraps an existing live engine (its current partition is served
    /// as-is). Config fields are clamped: `batch ≥ 1`,
    /// `queue_capacity ≥ batch`, `1 ≤ top_k ≤ MAX_TOP_K`. All queue-scoped
    /// buffers are preallocated here; steady-state serving allocates only
    /// what the engine itself would under serial edits.
    pub fn over(engine: IncrementalUcpc, mut cfg: ServingConfig) -> Self {
        cfg.batch = cfg.batch.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(cfg.batch);
        cfg.top_k = cfg.top_k.clamp(1, MAX_TOP_K);
        let cap = cfg.queue_capacity;
        let m = engine.m;
        let k = engine.k;
        let mut staging = MomentArena::with_capacity(cap, m);
        for _ in 0..cap {
            staging.push_row_with(m, |_| (0.0, 0.0));
        }
        let wal = cfg.wal.then(|| {
            WalWriter::create(
                Box::new(VecIo::new()) as Box<dyn DurableIo>,
                m,
                cfg.wal_fsync,
            )
            .expect("in-memory sink cannot fault")
        });
        Self {
            engine,
            staging,
            free_rows: (0..cap as u32).rev().collect(),
            pending: VecDeque::with_capacity(cap),
            responses: VecDeque::with_capacity(cap),
            deltas: Vec::with_capacity(cap * k),
            priced_rows: Vec::with_capacity(cap),
            priced_scalars: Vec::with_capacity(cap),
            crosses: Vec::with_capacity(cap),
            pricers: Vec::new(),
            answers: Vec::with_capacity(cap),
            dirty: vec![0; k],
            any_dirty: false,
            flush_seq: 0,
            next_ticket: 0,
            cfg,
            commits_since_stabilize: 0,
            epoch: Instant::now(),
            clock: Box::new(SystemClock),
            wal,
        }
    }

    /// Replaces the deadline-trigger time source (tests inject a manual
    /// clock here; production keeps the default [`SystemClock`]).
    pub fn set_clock(&mut self, clock: Box<dyn Clock>) {
        self.clock = clock;
    }

    /// [`Self::poll`] at the attached clock's current time.
    pub fn poll_now(&mut self) -> usize {
        let now = self.clock.now();
        self.poll(now)
    }

    /// Attaches a write-ahead log over `io`, writing its header now. Every
    /// subsequent mutation is logged before it is applied. Replaces (and
    /// drops) any previously attached log — rotate with
    /// [`Self::checkpoint_into`] instead to keep history contiguous.
    pub fn attach_wal<I: DurableIo + 'static>(&mut self, io: I) -> Result<(), WalError> {
        let writer = WalWriter::create(
            Box::new(io) as Box<dyn DurableIo>,
            self.engine.m,
            self.cfg.wal_fsync,
        )?;
        self.wal = Some(writer);
        Ok(())
    }

    /// Detaches and returns the write-ahead log, if one was attached.
    /// Subsequent mutations are no longer logged.
    pub fn detach_wal(&mut self) -> Option<BoxedWal> {
        self.wal.take()
    }

    /// The attached write-ahead log, if any — e.g. to check
    /// [`WalWriter::poisoned`] or read back a [`VecIo`] buffer.
    pub fn wal(&self) -> Option<&BoxedWal> {
        self.wal.as_ref()
    }

    /// Checkpoint + log-rotate, the durability maintenance step: streams a
    /// v2 snapshot of the **flushed** engine state into `snapshot_io`
    /// (chunked — never materializes the full state; see
    /// [`IncrementalUcpc::write_snapshot`]), syncs it, then starts a fresh
    /// write-ahead log on `wal_io` and returns the retired writer (whose
    /// sink holds exactly the frames the snapshot has absorbed). Pending
    /// (unflushed) requests are untouched — they will log to the new WAL
    /// when flushed. On any fault the engine, the old log, and the
    /// attachment state are all unchanged.
    pub fn checkpoint_into<S: DurableIo, W: DurableIo + 'static>(
        &mut self,
        snapshot_io: &mut S,
        wal_io: W,
    ) -> Result<Option<BoxedWal>, WalError> {
        self.engine
            .write_snapshot(snapshot_io)
            .map_err(WalError::Snapshot)?;
        snapshot_io.sync().map_err(WalError::Io)?;
        let fresh = WalWriter::create(
            Box::new(wal_io) as Box<dyn DurableIo>,
            self.engine.m,
            self.cfg.wal_fsync,
        )?;
        Ok(self.wal.replace(fresh))
    }

    /// The wrapped engine (read-only; flushed state only — pending requests
    /// are not yet reflected).
    pub fn engine(&self) -> &IncrementalUcpc {
        &self.engine
    }

    /// Unwraps the serving layer. Pending (unflushed) requests are
    /// discarded; flush first to apply them.
    pub fn into_engine(self) -> IncrementalUcpc {
        self.engine
    }

    /// The active configuration (after construction-time clamping).
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Requests admitted but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Answers flushed but not yet popped.
    pub fn response_len(&self) -> usize {
        self.responses.len()
    }

    fn admit(&mut self, mo: &Moments) -> Result<u32, ServingError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            return Err(ServingError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        if mo.dims() != self.engine.m {
            return Err(ServingError::DimensionMismatch {
                expected: self.engine.m,
                found: mo.dims(),
            });
        }
        let row = self
            .free_rows
            .pop()
            .expect("staging rows cover queue capacity");
        // Verbatim copy: the staged row carries exactly the arrival's bits.
        self.staging.overwrite_row(row as usize, mo);
        Ok(row)
    }

    fn enqueue(&mut self, kind: ReqKind) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        // `at` only feeds the deadline trigger; without one, a clock read
        // per admission is pure overhead — stamp the construction epoch.
        let at = if self.cfg.deadline.is_some() {
            self.clock.now()
        } else {
            self.epoch
        };
        self.pending.push_back(Request { ticket, at, kind });
        ticket
    }

    fn check_admission(&self) -> Result<(), ServingError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            return Err(ServingError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        Ok(())
    }

    /// Queues a placement query for an arrival given by its moments:
    /// answered at the next flush with a [`ServingResponse::Placed`],
    /// nothing committed. This is the allocation-free admission path.
    pub fn submit_query(&mut self, mo: &Moments) -> Result<Ticket, ServingError> {
        let row = self.admit(mo)?;
        Ok(self.enqueue(ReqKind::Query { row }))
    }

    /// [`Self::submit_query`] for a pdf-form arrival (its precomputed
    /// moments are staged; the pdfs never reach the engine).
    pub fn submit_query_object(&mut self, o: &UncertainObject) -> Result<Ticket, ServingError> {
        self.submit_query(o.moments())
    }

    /// Queues an arrival for placement *and insertion*: answered at the
    /// next flush with a [`ServingResponse::Committed`] carrying the stored
    /// object's handle. Committed state is byte-identical to a serial
    /// [`IncrementalUcpc::insert`] at the same point of the edit sequence
    /// (module docs).
    pub fn submit_commit(&mut self, mo: &Moments) -> Result<Ticket, ServingError> {
        let row = self.admit(mo)?;
        Ok(self.enqueue(ReqKind::Commit { row }))
    }

    /// [`Self::submit_commit`] for a pdf-form arrival.
    pub fn submit_commit_object(&mut self, o: &UncertainObject) -> Result<Ticket, ServingError> {
        self.submit_commit(o.moments())
    }

    /// Queues a removal of a committed object; answered at the next flush
    /// with [`ServingResponse::Removed`] (a stale handle is a checked
    /// in-band error there, not an admission failure).
    pub fn submit_remove(&mut self, h: ObjectHandle) -> Result<Ticket, ServingError> {
        self.check_admission()?;
        Ok(self.enqueue(ReqKind::Remove(h)))
    }

    /// Queues an explicit stabilization (up to `passes` relocation passes
    /// at its position in the request order); answered with
    /// [`ServingResponse::Stabilized`].
    pub fn submit_stabilize(&mut self, passes: usize) -> Result<Ticket, ServingError> {
        self.check_admission()?;
        Ok(self.enqueue(ReqKind::Stabilize { passes }))
    }

    /// Flushes now if a trigger fires: the batch-size trigger
    /// (`pending ≥ batch`) or the deadline trigger (the oldest pending
    /// request has waited `≥ deadline` as of `now`). Returns the number of
    /// responses produced (0 if no trigger fired). Callers drive this from
    /// their event loop; `now` is passed in so pacing is testable.
    pub fn poll(&mut self, now: Instant) -> usize {
        let Some(front) = self.pending.front() else {
            return 0;
        };
        let size_due = self.pending.len() >= self.cfg.batch;
        let deadline_due = self
            .cfg
            .deadline
            .is_some_and(|d| now.saturating_duration_since(front.at) >= d);
        if size_due || deadline_due {
            self.flush()
        } else {
            0
        }
    }

    /// Flushes every pending request as one micro-batch (price → apply →
    /// respond; module docs) regardless of triggers. Returns the number of
    /// responses produced.
    pub fn flush(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.flush_seq += 1;
        self.any_dirty = false;
        self.price_pending();
        let n = self.pending.len();
        let mut arrival = 0usize;
        for _ in 0..n {
            let req = self.pending.pop_front().expect("n pending requests");
            let response = match req.kind {
                ReqKind::Query { row } => {
                    let answer = self.answer_for(arrival, row);
                    arrival += 1;
                    self.free_rows.push(row);
                    ServingResponse::Placed(answer)
                }
                ReqKind::Commit { row } => {
                    let answer = self.answer_for(arrival, row);
                    arrival += 1;
                    // Log before apply: an arrival the WAL cannot hold is
                    // never committed — the engine only ever contains
                    // state the log can reproduce.
                    let logged = match &mut self.wal {
                        Some(w) => {
                            let v = self.staging.view(row as usize);
                            w.log_commit(v.mu, v.mu2)
                        }
                        None => Ok(()),
                    };
                    if let Err(error) = logged {
                        self.free_rows.push(row);
                        self.responses
                            .push_back((req.ticket, ServingResponse::Failed { error }));
                        continue;
                    }
                    let best = answer.best().0;
                    #[cfg(debug_assertions)]
                    {
                        // The merged fold must agree with a live full scan —
                        // the direct check of the dirty-stamp argument.
                        let v = self.staging.view(row as usize);
                        let shadow = crate::pruning::best_insertion(&self.engine.stats, &v)
                            .expect("k >= 1 clusters");
                        debug_assert_eq!(
                            (best, answer.best().1.to_bits()),
                            (shadow.0, shadow.1.to_bits()),
                            "merged batch fold diverged from the serial scan"
                        );
                    }
                    let handle = {
                        let v = self.staging.view(row as usize);
                        self.engine.commit_placed(&v, best)
                    };
                    self.dirty[best] = self.flush_seq;
                    self.any_dirty = true;
                    self.free_rows.push(row);
                    self.commits_since_stabilize += 1;
                    if self.cfg.stabilize_every != 0
                        && self.commits_since_stabilize >= self.cfg.stabilize_every
                    {
                        // The cadence stabilization is a mutation too: log
                        // it (so recovery replays it at the same point)
                        // before running it. If logging fails the pass is
                        // skipped and the counter stands — neither log nor
                        // engine saw it, so they still agree.
                        let logged = match &mut self.wal {
                            Some(w) => w.log_stabilize(self.cfg.stabilize_passes as u64),
                            None => Ok(()),
                        };
                        if logged.is_ok() {
                            self.commits_since_stabilize = 0;
                            if self.engine.stabilize(self.cfg.stabilize_passes) > 0 {
                                self.dirty.fill(self.flush_seq);
                                self.any_dirty = true;
                            }
                        }
                    }
                    ServingResponse::Committed { handle, answer }
                }
                ReqKind::Remove(h) => {
                    let cluster = self.engine.label_of(h);
                    // Only an *effective* remove reaches the log: replaying
                    // a stale-handle remove would be a false corruption at
                    // recovery, so it must never be a WAL frame.
                    if cluster.is_some() {
                        if let Some(w) = &mut self.wal {
                            if let Err(error) = w.log_remove(h) {
                                self.responses
                                    .push_back((req.ticket, ServingResponse::Failed { error }));
                                continue;
                            }
                        }
                    }
                    let result = self.engine.remove(h);
                    if result.is_ok() {
                        let c = cluster.expect("removed object had a label");
                        self.dirty[c] = self.flush_seq;
                        self.any_dirty = true;
                    }
                    ServingResponse::Removed(result)
                }
                ReqKind::Stabilize { passes } => {
                    let logged = match &mut self.wal {
                        Some(w) => w.log_stabilize(passes as u64),
                        None => Ok(()),
                    };
                    if let Err(error) = logged {
                        self.responses
                            .push_back((req.ticket, ServingResponse::Failed { error }));
                        continue;
                    }
                    let relocations = self.engine.stabilize(passes);
                    if relocations > 0 {
                        self.dirty.fill(self.flush_seq);
                        self.any_dirty = true;
                    }
                    ServingResponse::Stabilized { relocations }
                }
            };
            self.responses.push_back((req.ticket, response));
        }
        // Group commit: one sync makes the whole flush's frames durable
        // (under WalFsync::Flush). A failure poisons the writer — later
        // mutations come back ServingResponse::Failed — but this flush's
        // responses are already queued; durability-sensitive callers check
        // WalWriter::poisoned before trusting them.
        if let Some(w) = &mut self.wal {
            let _ = w.group_commit();
        }
        n
    }

    /// The oldest unread `(ticket, response)`, in submission order.
    pub fn pop_response(&mut self) -> Option<(Ticket, ServingResponse)> {
        self.responses.pop_front()
    }

    /// Phase 1 of a flush: the `B × k` delta matrix of every staged arrival
    /// against flush-start statistics, cluster-major with arrival-blocked
    /// [`dot3`] so each cluster's `mean_sum` row is loaded once per three
    /// arrivals. Every entry is bit-identical to
    /// `stats[c].delta_j_add(&arrival)` (module docs).
    fn price_pending(&mut self) {
        self.priced_rows.clear();
        self.priced_scalars.clear();
        for req in &self.pending {
            if let ReqKind::Query { row } | ReqKind::Commit { row } = req.kind {
                self.priced_rows.push(row);
                let v = self.staging.view(row as usize);
                self.priced_scalars
                    .push((v.sum_var, v.sum_mu_sq, v.sum_mu2));
            }
        }
        let b = self.priced_rows.len();
        let k = self.engine.k;
        self.deltas.clear();
        self.deltas.resize(b * k, 0.0);
        let top = self.cfg.top_k.min(k);
        let Self {
            engine,
            staging,
            priced_rows,
            priced_scalars,
            deltas,
            crosses,
            pricers,
            answers,
            ..
        } = self;
        let stats = &engine.stats;
        answers.clear();
        if staging.dims() >= DISPATCH_THRESHOLD {
            // Phase a — cluster-major cross terms: one dispatched
            // [`dot_block`] call per cluster prices every staged arrival
            // against that cluster's `mean_sum` row (loaded once), filling
            // one contiguous row of the `k × B` cross matrix. Each cross is
            // bit-identical to the `dot(s, mu)` that `delta_j_add` itself
            // issues (the `dot_block` contract). The per-cluster pricers
            // ([`AddPricer`]) are built here too, so the divisions inside
            // `delta_j_add_from_parts` are paid once per cluster per flush,
            // not once per (cluster, arrival) — same bits either way.
            crosses.clear();
            crosses.resize(k * b, 0.0);
            pricers.clear();
            pricers.extend(stats.iter().map(|s| s.add_pricer()));
            for (c, stat) in stats.iter().enumerate() {
                dot_block(
                    stat.mean_sum(),
                    staging.mu_flat(),
                    priced_rows,
                    &mut crosses[c * b..(c + 1) * b],
                );
            }
            // Phase b — arrival-major evaluation and fold: each arrival's
            // scalar aggregates load once (not once per cluster), its delta
            // row is written sequentially, and the answer folds immediately
            // while that row is register/L1-hot — the vectorized-executor
            // move applied end to end: batch the fold, not just the dots.
            // An answer stays valid until a mutation earlier in the batch
            // dirties statistics (`any_dirty`); those arrivals re-fold
            // merged in [`Self::answer_for`].
            for a in 0..b {
                let (sum_var, sum_mu_sq, sum_mu2) = priced_scalars[a];
                let row = &mut deltas[a * k..(a + 1) * k];
                for (c, pricer) in pricers.iter().enumerate() {
                    row[c] = pricer.price(sum_var, sum_mu_sq, sum_mu2, crosses[c * b + a]);
                }
                answers.push(fold_row(row, top));
            }
        } else {
            // Short rows never reach a SIMD backend (no loads to amortize):
            // per-cluster delta_j_add, the same regime as the serial scan.
            for a in 0..b {
                let v = staging.view(priced_rows[a] as usize);
                let row = &mut deltas[a * k..(a + 1) * k];
                for (c, stat) in stats.iter().enumerate() {
                    row[c] = stat.delta_j_add(&v);
                }
                answers.push(fold_row(row, top));
            }
        }
    }

    /// Phase 2 answer for the `arrival`-th priced arrival. On an untouched
    /// flush this is the precomputed fold; after any mutation it re-folds
    /// the merged row — pre-priced deltas for clean clusters, live
    /// `delta_j_add` for dirty ones — with identical semantics.
    fn answer_for(&self, arrival: usize, row: u32) -> PlacementAnswer {
        if !self.any_dirty {
            return self.answers[arrival];
        }
        let stats = &self.engine.stats;
        let k = stats.len();
        let top = self.cfg.top_k.min(k);
        let deltas = &self.deltas[arrival * k..arrival * k + k];
        let v = self.staging.view(row as usize);
        fold_with(k, top, |c| {
            if self.dirty[c] == self.flush_seq {
                stats[c].delta_j_add(&v)
            } else {
                deltas[c]
            }
        })
    }
}

/// [`fold_with`] over a contiguous pre-priced delta row.
fn fold_row(deltas: &[f64], top: usize) -> PlacementAnswer {
    fold_with(deltas.len(), top, |c| deltas[c])
}

/// Folds one arrival's `k` deltas into a [`PlacementAnswer`]: best/second
/// with the scan's exact strict-less, first-index-wins-ties `consider`
/// semantics, plus the top-`top` ranked insertion (ties keep the lower
/// cluster index). Pure in `delta_of` — the single fold implementation the
/// batch pass and the dirty-merged re-fold both instantiate.
fn fold_with(k: usize, top: usize, delta_of: impl FnMut(usize) -> f64) -> PlacementAnswer {
    // Monomorphize the insertion network on its width so the inner
    // compare-exchange chain fully unrolls into selects.
    match top.clamp(2, MAX_TOP_K) {
        2 => fold_net::<2>(k, top, delta_of),
        3 => fold_net::<3>(k, top, delta_of),
        4 => fold_net::<4>(k, top, delta_of),
        5 => fold_net::<5>(k, top, delta_of),
        6 => fold_net::<6>(k, top, delta_of),
        7 => fold_net::<7>(k, top, delta_of),
        _ => fold_net::<MAX_TOP_K>(k, top, delta_of),
    }
}

/// The fold proper, as a branchless insertion network of width `W`
/// (`W = max(top, 2)`, so the best/second margin falls out of slots 0/1).
///
/// Each cluster's delta ripples down the sorted slot array via
/// compare-exchange steps written select-style: real delta orderings are
/// adversarial for a branch predictor (the ranked-insertion formulation
/// measurably stalled on misses), while selects cost the same few cycles
/// regardless of order. Strict-less comparison keeps ties on the earlier
/// cluster index — an equal delta never displaces a seated one and seating
/// order is ascending `c` — which is exactly the placement scan's
/// first-index-wins-ties semantics.
fn fold_net<const W: usize>(
    k: usize,
    top: usize,
    mut delta_of: impl FnMut(usize) -> f64,
) -> PlacementAnswer {
    let mut d = [f64::INFINITY; W];
    let mut ci = [usize::MAX; W];
    for c in 0..k {
        let mut delta = delta_of(c);
        let mut cc = c;
        for i in 0..W {
            let take = delta < d[i];
            let next_d = if take { d[i] } else { delta };
            let next_c = if take { ci[i] } else { cc };
            d[i] = if take { delta } else { d[i] };
            ci[i] = if take { cc } else { ci[i] };
            delta = next_d;
            cc = next_c;
        }
    }
    let len = top.min(k);
    let mut entries = [(0usize, 0.0f64); MAX_TOP_K];
    for i in 0..len.min(W) {
        entries[i] = (ci[i], d[i]);
    }
    PlacementAnswer {
        entries,
        len: len as u8,
        margin: d[1] - d[0],
    }
}

#[cfg(test)]
impl ServingUcpc {
    /// Test hook: mutate the config after construction (unit tests only).
    fn config_mut_for_tests(&mut self) -> &mut ServingConfig {
        &mut self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::normal(c, 0.2),
            UnivariatePdf::uniform_centered(-c, 0.5),
        ])
    }

    fn cfg(batch: usize) -> ServingConfig {
        ServingConfig {
            batch,
            queue_capacity: batch * 2,
            deadline: None,
            stabilize_every: 0,
            stabilize_passes: 2,
            top_k: MAX_TOP_K,
            wal: false,
            wal_fsync: WalFsync::Flush,
        }
    }

    #[test]
    fn batch_knob_accepts_positive_integers_only() {
        assert_eq!(ServingConfig::parse_batch("64"), Some(64));
        assert_eq!(
            ServingConfig::parse_batch("0"),
            None,
            "empty batches never flush"
        );
        assert_eq!(ServingConfig::parse_batch("-1"), None);
        assert_eq!(ServingConfig::parse_batch("lots"), None);
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_BATCH",
            Some("lots"),
            "a positive integer",
            ServingConfig::parse_batch,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_BATCH=\"lots\""));
    }

    #[test]
    fn stabilize_knob_accepts_counts_and_off() {
        assert_eq!(ServingConfig::parse_stabilize("100"), Some(100));
        assert_eq!(ServingConfig::parse_stabilize("0"), Some(0));
        assert_eq!(ServingConfig::parse_stabilize("off"), Some(0));
        assert_eq!(ServingConfig::parse_stabilize("-3"), None);
        assert_eq!(ServingConfig::parse_stabilize("never"), None);
    }

    #[test]
    fn config_is_clamped_at_construction() {
        let serving = ServingUcpc::new(
            2,
            3,
            ServingConfig {
                batch: 0,
                queue_capacity: 0,
                deadline: None,
                stabilize_every: 0,
                stabilize_passes: 1,
                top_k: 100,
                wal: false,
                wal_fsync: WalFsync::Flush,
            },
        )
        .unwrap();
        assert_eq!(serving.config().batch, 1);
        assert_eq!(serving.config().queue_capacity, 1);
        assert_eq!(serving.config().top_k, MAX_TOP_K);
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let mut serving = ServingUcpc::new(2, 2, cfg(8)).unwrap();
        let t0 = serving.submit_commit_object(&obj(0.0)).unwrap();
        let t1 = serving.submit_query_object(&obj(5.0)).unwrap();
        let t2 = serving.submit_stabilize(1).unwrap();
        assert_eq!(serving.pending_len(), 3);
        assert_eq!(serving.flush(), 3);
        assert_eq!(serving.pending_len(), 0);
        let tickets: Vec<Ticket> = std::iter::from_fn(|| serving.pop_response())
            .map(|(t, _)| t)
            .collect();
        assert_eq!(tickets, vec![t0, t1, t2]);
    }

    #[test]
    fn poll_fires_on_batch_size_and_deadline() {
        let mut serving = ServingUcpc::new(
            2,
            2,
            ServingConfig {
                deadline: Some(Duration::from_millis(0)),
                ..cfg(2)
            },
        )
        .unwrap();
        // Deadline 0: any pending request is immediately due.
        serving.submit_query_object(&obj(1.0)).unwrap();
        assert_eq!(serving.poll(Instant::now()), 1);
        // No deadline: below batch size nothing fires, at batch size it does.
        serving.config_mut_for_tests().deadline = None;
        serving.submit_query_object(&obj(1.0)).unwrap();
        assert_eq!(serving.poll(Instant::now()), 0);
        serving.submit_query_object(&obj(2.0)).unwrap();
        assert_eq!(serving.poll(Instant::now()), 2);
        assert_eq!(serving.poll(Instant::now()), 0, "empty queue: no-op");
    }

    #[test]
    fn dimension_mismatch_is_checked_at_admission() {
        let mut serving = ServingUcpc::new(3, 2, cfg(4)).unwrap();
        let err = serving.submit_query_object(&obj(1.0)).unwrap_err();
        assert_eq!(
            err,
            ServingError::DimensionMismatch {
                expected: 3,
                found: 2
            }
        );
        assert_eq!(serving.pending_len(), 0, "rejected arrival holds nothing");
    }

    #[test]
    fn wal_knob_accepts_on_off_and_fsync_policies() {
        assert_eq!(ServingConfig::parse_wal("on"), Some(true));
        assert_eq!(ServingConfig::parse_wal("1"), Some(true));
        assert_eq!(ServingConfig::parse_wal("off"), Some(false));
        assert_eq!(ServingConfig::parse_wal("0"), Some(false));
        assert_eq!(ServingConfig::parse_wal("yes"), None);
        assert_eq!(WalFsync::parse("off"), Some(WalFsync::Off));
        assert_eq!(WalFsync::parse("flush"), Some(WalFsync::Flush));
        assert_eq!(WalFsync::parse("every"), Some(WalFsync::Every));
        assert_eq!(WalFsync::parse("always"), None);
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_WAL",
            Some("yes"),
            "on|off",
            ServingConfig::parse_wal,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_WAL=\"yes\""));
    }

    /// Manual clock for exact deadline tests: no sleeping, no flakiness.
    #[derive(Debug, Clone)]
    struct FakeClock(std::rc::Rc<std::cell::Cell<Instant>>);

    impl Clock for FakeClock {
        fn now(&self) -> Instant {
            self.0.get()
        }
    }

    #[test]
    fn deadline_trigger_is_exact_under_an_injected_clock() {
        let start = Instant::now();
        let hand = std::rc::Rc::new(std::cell::Cell::new(start));
        let mut serving = ServingUcpc::new(
            2,
            2,
            ServingConfig {
                deadline: Some(Duration::from_secs(5)),
                ..cfg(100)
            },
        )
        .unwrap();
        serving.set_clock(Box::new(FakeClock(hand.clone())));
        serving.submit_query_object(&obj(1.0)).unwrap();
        // One tick short of the deadline: nothing fires.
        hand.set(start + Duration::from_secs(5) - Duration::from_nanos(1));
        assert_eq!(serving.poll_now(), 0);
        // Exactly at the deadline: the flush fires.
        hand.set(start + Duration::from_secs(5));
        assert_eq!(serving.poll_now(), 1);
        // The stamp comes from the injected clock too: a request admitted
        // at a later hand position is due exactly 5s after *that*.
        let t1 = start + Duration::from_secs(100);
        hand.set(t1);
        serving.submit_query_object(&obj(2.0)).unwrap();
        hand.set(t1 + Duration::from_secs(4));
        assert_eq!(serving.poll_now(), 0);
        hand.set(t1 + Duration::from_secs(5));
        assert_eq!(serving.poll_now(), 1);
    }

    #[test]
    fn wal_on_changes_no_bits_and_logs_every_mutation() {
        let mut logged = ServingUcpc::new(
            2,
            2,
            ServingConfig {
                wal: true,
                ..cfg(8)
            },
        )
        .unwrap();
        let mut plain = ServingUcpc::new(2, 2, cfg(8)).unwrap();
        let mut handles = Vec::new();
        for s in [&mut logged, &mut plain] {
            for c in [0.0, 0.5, 8.0, 8.5] {
                s.submit_commit_object(&obj(c)).unwrap();
            }
            s.flush();
            let mut hs = Vec::new();
            while let Some((_, r)) = s.pop_response() {
                if let ServingResponse::Committed { handle, .. } = r {
                    hs.push(handle);
                }
            }
            handles.push(hs);
        }
        assert_eq!(handles[0], handles[1], "logging must not perturb handles");
        assert_eq!(
            logged.engine().objective().to_bits(),
            plain.engine().objective().to_bits()
        );
        assert_eq!(logged.wal().unwrap().frames(), 4);
        assert!(plain.wal().is_none());
    }

    #[test]
    fn enospc_mid_flush_fails_checked_and_skips_the_apply() {
        let mut serving = ServingUcpc::new(2, 2, cfg(8)).unwrap();
        // Header + one commit frame, then the wall: the second commit's
        // frame cannot fit.
        let header_and_one = crate::wal::WAL_HEADER_LEN + 4 + 1 + 2 * 2 * 8 + 4;
        serving.attach_wal(VecIo::limited(header_and_one)).unwrap();
        serving.submit_commit_object(&obj(0.0)).unwrap();
        serving.submit_commit_object(&obj(8.0)).unwrap();
        serving.submit_stabilize(1).unwrap();
        serving.flush();
        let (_, first) = serving.pop_response().unwrap();
        assert!(matches!(first, ServingResponse::Committed { .. }));
        let (_, second) = serving.pop_response().unwrap();
        assert!(
            matches!(
                second,
                ServingResponse::Failed {
                    error: WalError::Io(_)
                }
            ),
            "{second:?}"
        );
        // Poisoned: the stabilize after it fails too, and the engine holds
        // exactly the one logged commit.
        let (_, third) = serving.pop_response().unwrap();
        assert!(
            matches!(
                third,
                ServingResponse::Failed {
                    error: WalError::Poisoned(_)
                }
            ),
            "{third:?}"
        );
        assert_eq!(serving.engine().len(), 1, "unlogged commit must not apply");
        assert!(serving.wal().unwrap().poisoned().is_some());
    }

    #[test]
    fn checkpoint_rotates_the_log_and_recovers_bitwise() {
        let mut serving = ServingUcpc::new(
            2,
            2,
            ServingConfig {
                wal: true,
                ..cfg(8)
            },
        )
        .unwrap();
        for c in [0.0, 0.5, 8.0] {
            serving.submit_commit_object(&obj(c)).unwrap();
        }
        serving.flush();
        let mut snap_io = VecIo::new();
        let fresh_log = crate::wal::SharedVecIo::new();
        let retired = serving
            .checkpoint_into(&mut snap_io, fresh_log.clone())
            .unwrap()
            .expect("a log was attached");
        assert_eq!(
            retired.frames(),
            3,
            "retired log holds pre-checkpoint frames"
        );
        assert_eq!(snap_io.syncs(), 1, "checkpoint syncs the snapshot");
        // Post-checkpoint traffic lands in the fresh log only.
        serving.submit_commit_object(&obj(8.5)).unwrap();
        serving.flush();
        assert_eq!(serving.wal().unwrap().frames(), 1);
        // Crash now: snapshot + rotated WAL rebuild the exact engine.
        let rec = crate::wal::recover(snap_io.bytes(), &fresh_log.bytes()).unwrap();
        assert_eq!(rec.frames_applied, 1);
        assert!(rec.damage.is_none());
        assert_eq!(
            rec.engine.snapshot(),
            serving.engine().snapshot(),
            "recovered state is bit-identical to the live engine"
        );
    }

    #[test]
    fn commit_matches_direct_insert() {
        let mut serving = ServingUcpc::new(2, 2, cfg(4)).unwrap();
        let mut direct = IncrementalUcpc::new(2, 2).unwrap();
        for c in [0.0, 0.5, 8.0, 8.5] {
            serving.submit_commit_object(&obj(c)).unwrap();
            direct.insert(&obj(c)).unwrap();
        }
        serving.flush();
        assert_eq!(
            serving.engine().objective().to_bits(),
            direct.objective().to_bits()
        );
        assert_eq!(serving.engine().live_labels(), direct.live_labels());
    }
}
