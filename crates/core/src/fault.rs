//! Shared fault-injection plumbing for the durability and transport
//! chaos suites.
//!
//! Before this module, each fault surface grew its own knobs: [`VecIo`]
//! carried fail-after-N-bytes / short-write / failing-sync fields,
//! [`SharedVecIo`] carried a subset, and the sharded transport was about
//! to grow a third set. Now every injector configures faults the same
//! way:
//!
//! * [`IoFaultPlan`] — the *deterministic* byte-counted faults of a
//!   [`DurableIo`] sink: ENOSPC at an exact byte offset, a maximum
//!   accepted chunk per `write` call (forces short writes), and failing
//!   `sync`. Consumed by [`VecIo::with_faults`] and
//!   [`SharedVecIo::with_faults`].
//! * [`ChaosPlan`] — the *seeded probabilistic* faults of the sharded
//!   transport ([`crate::sharded::ChaosTransport`]): per-message drop /
//!   duplicate / reorder probabilities and a bounded delivery delay,
//!   drawn from a [`Dice`] so every schedule is reproducible from its
//!   seed.
//! * [`Dice`] — the seeded roller behind every probabilistic injector.
//! * [`ManualClock`] — a hand-advanced [`Clock`] so retry-with-backoff
//!   timers (and the serving deadline trigger) get exact tests instead
//!   of sleep-based ones.
//!
//! [`VecIo`]: crate::wal::VecIo
//! [`SharedVecIo`]: crate::wal::SharedVecIo
//! [`DurableIo`]: crate::wal::DurableIo
//! [`VecIo::with_faults`]: crate::wal::VecIo::with_faults
//! [`SharedVecIo::with_faults`]: crate::wal::SharedVecIo::with_faults
//! [`Clock`]: crate::serving::Clock

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A checked I/O fault from a [`crate::wal::DurableIo`] sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFault {
    /// The device is out of space; `at` is the byte offset where the
    /// append hit the wall.
    NoSpace {
        /// Byte offset of the failed append.
        at: u64,
    },
    /// The write or sync failed outright.
    Failed {
        /// Byte offset at the time of the failure.
        at: u64,
        /// What failed.
        what: &'static str,
    },
    /// The sink accepted zero bytes without reporting an error.
    WriteZero,
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSpace { at } => write!(f, "out of space at byte offset {at}"),
            Self::Failed { at, what } => write!(f, "{what} at byte offset {at}"),
            Self::WriteZero => write!(f, "sink accepted zero bytes"),
        }
    }
}

impl std::error::Error for IoFault {}

/// Deterministic fault schedule of an in-memory [`crate::wal::DurableIo`]
/// sink — the one configuration surface behind [`crate::wal::VecIo`] and
/// [`crate::wal::SharedVecIo`].
///
/// The default plan injects nothing. Builders compose:
///
/// ```
/// use ucpc_core::fault::IoFaultPlan;
/// use ucpc_core::wal::VecIo;
///
/// let io = VecIo::with_faults(IoFaultPlan::new().byte_limit(64).failing_syncs());
/// # let _ = io;
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Accept exactly this many bytes, then report [`IoFault::NoSpace`]
    /// at that offset (ENOSPC with a byte-exact torn tail).
    pub byte_limit: Option<usize>,
    /// Accept at most this many bytes per `write` call, turning every
    /// multi-byte append into a sequence of short writes.
    pub max_chunk: Option<usize>,
    /// Make every `sync` call report [`IoFault::Failed`].
    pub fail_syncs: bool,
}

impl IoFaultPlan {
    /// A plan injecting no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail with ENOSPC once `limit` bytes have been accepted.
    pub fn byte_limit(mut self, limit: usize) -> Self {
        self.byte_limit = Some(limit);
        self
    }

    /// Accept at most `max_chunk` bytes per `write` call (clamped to at
    /// least 1 so progress is still possible).
    pub fn short_writes(mut self, max_chunk: usize) -> Self {
        self.max_chunk = Some(max_chunk.max(1));
        self
    }

    /// Make every subsequent `sync` fail.
    pub fn failing_syncs(mut self) -> Self {
        self.fail_syncs = true;
        self
    }

    /// How many bytes of `wanted` a sink holding `held` bytes accepts
    /// under this plan, or the fault the append trips on. Shared by both
    /// in-memory sinks so their torn-tail semantics are identical.
    pub fn admit(&self, held: usize, wanted: usize) -> Result<usize, IoFault> {
        let room = match self.byte_limit {
            Some(limit) => limit.saturating_sub(held),
            None => usize::MAX,
        };
        if room == 0 {
            return Err(IoFault::NoSpace { at: held as u64 });
        }
        Ok(wanted.min(room).min(self.max_chunk.unwrap_or(usize::MAX)))
    }

    /// The outcome of a `sync` on a sink holding `held` bytes.
    pub fn check_sync(&self, held: usize) -> Result<(), IoFault> {
        if self.fail_syncs {
            return Err(IoFault::Failed {
                at: held as u64,
                what: "injected sync failure",
            });
        }
        Ok(())
    }
}

/// The seeded roller behind every probabilistic injector: a thin wrapper
/// over [`StdRng`] whose draws are reproducible from the seed, so a
/// failing chaos schedule is re-runnable bit-for-bit.
#[derive(Debug, Clone)]
pub struct Dice {
    rng: StdRng,
}

impl Dice {
    /// A roller with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`). `p <= 0` never
    /// consumes a draw, so disabled fault channels do not perturb the
    /// schedule of enabled ones.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen_bool(p)
    }

    /// A uniform draw from `0..n` (`0` when `n == 0`).
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.rng.gen_range(0..n)
    }
}

/// Seeded fault schedule of a chaos transport: per-message drop,
/// duplicate and reorder probabilities plus a bounded delivery delay.
/// All probabilities are per *send*; a duplicated message rolls its
/// delay and reorder independently per copy. The default plan is clean
/// (every channel zero) — chaos is always opted into explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed of the [`Dice`] driving every draw.
    pub seed: u64,
    /// Probability a sent message is silently dropped.
    pub drop: f64,
    /// Probability a sent message is delivered twice.
    pub duplicate: f64,
    /// Probability a delivery is re-keyed to land out of order relative
    /// to same-tick traffic.
    pub reorder: f64,
    /// Maximum delivery delay in transport ticks (0 = always immediate).
    /// Delays are *bounded*: every non-dropped message is deliverable at
    /// most `max_delay` ticks after its send.
    pub max_delay: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_delay: 0,
        }
    }
}

impl ChaosPlan {
    /// A clean plan (no faults) under `seed`.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A drop-heavy schedule.
    pub fn drops(seed: u64, p: f64) -> Self {
        Self {
            seed,
            drop: p,
            ..Self::default()
        }
    }

    /// A duplicate-heavy schedule.
    pub fn duplicates(seed: u64, p: f64) -> Self {
        Self {
            seed,
            duplicate: p,
            ..Self::default()
        }
    }

    /// A reorder + bounded-delay schedule.
    pub fn reorders(seed: u64, p: f64, max_delay: u64) -> Self {
        Self {
            seed,
            reorder: p,
            max_delay,
            ..Self::default()
        }
    }

    /// Every fault channel at once — the schedule the differential chaos
    /// harness leans on.
    pub fn mixed(seed: u64) -> Self {
        Self {
            seed,
            drop: 0.15,
            duplicate: 0.15,
            reorder: 0.3,
            max_delay: 3,
        }
    }

    /// Re-seeds this plan from the `UCPC_CHAOS_SEED` environment knob
    /// (non-negative integer), through the shared warn-and-fall-back
    /// reader — an unset or invalid value keeps the plan's own seed. CI's
    /// chaos job sweeps this knob to vary fault schedules without
    /// touching the test code.
    pub fn seed_from_env(mut self) -> Self {
        if let Some(seed) =
            ucpc_uncertain::env::read_knob("UCPC_CHAOS_SEED", "non-negative integer", |v| {
                v.parse::<u64>().ok()
            })
        {
            self.seed = seed;
        }
        self
    }
}

/// A hand-advanced [`crate::serving::Clock`]: `now` starts at an
/// arbitrary base instant and moves only through [`ManualClock::advance`].
/// Clones share the same time, so a harness can hand one clone to a
/// retry state machine and keep advancing through another.
#[derive(Debug, Clone)]
pub struct ManualClock {
    base: Instant,
    offset: Rc<Cell<Duration>>,
}

impl ManualClock {
    /// A clock at its base instant.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            offset: Rc::new(Cell::new(Duration::ZERO)),
        }
    }

    /// Moves the shared time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.offset.set(self.offset.get() + d);
    }

    /// The shared elapsed offset since the base instant.
    pub fn elapsed(&self) -> Duration {
        self.offset.get()
    }
}

impl crate::serving::Clock for ManualClock {
    fn now(&self) -> Instant {
        self.base + self.offset.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::Clock as _;

    #[test]
    fn io_plan_admits_through_limit_chunk_and_sync_knobs() {
        let plan = IoFaultPlan::new().byte_limit(10).short_writes(4);
        assert_eq!(plan.admit(0, 100), Ok(4));
        assert_eq!(plan.admit(8, 100), Ok(2));
        assert_eq!(plan.admit(10, 1), Err(IoFault::NoSpace { at: 10 }));
        assert_eq!(plan.check_sync(3), Ok(()));
        let failing = IoFaultPlan::new().failing_syncs();
        assert!(matches!(
            failing.check_sync(7),
            Err(IoFault::Failed { at: 7, .. })
        ));
    }

    #[test]
    fn dice_is_reproducible_and_respects_edges() {
        let mut a = Dice::new(42);
        let mut b = Dice::new(42);
        for _ in 0..64 {
            assert_eq!(a.chance(0.5), b.chance(0.5));
            assert_eq!(a.pick(7), b.pick(7));
        }
        let mut d = Dice::new(1);
        assert!(!d.chance(0.0));
        assert!(d.chance(1.0));
        assert_eq!(d.pick(0), 0);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let clock = ManualClock::new();
        let observer = clock.clone();
        let t0 = observer.now();
        clock.advance(Duration::from_millis(250));
        assert_eq!(observer.now() - t0, Duration::from_millis(250));
    }
}
