//! Work-stealing shard scheduler shared by the parallel drivers.
//!
//! The propose phase of [`crate::parallel::ParallelUcpc`] and the restart
//! loop of [`crate::restarts::BestOfRestarts`] both reduce to the same
//! shape: a fixed list of independent work items (arena shards, restart
//! indices) to be drained by a small pool of workers. Fixed even chunking —
//! the PR 2 layout, one contiguous `n/threads` block per worker — balances
//! perfectly only when every item costs the same; with candidate pruning the
//! per-object cost is wildly skewed (a tier-0 skip is one cache line, a full
//! scan is `k` fused dot products), so a worker whose block happens to hold
//! the converged region finishes early and idles while another grinds
//! through the active region.
//!
//! [`WorkPool`] fixes that with the classic deque discipline: every worker
//! owns a contiguous run of items and drains it **front to back**; when its
//! run is empty it scans the other workers' runs **back to front** and
//! steals the items they have not reached yet. Ownership is transferred by
//! `Option::take` under a per-item mutex, so each item is executed exactly
//! once no matter how many thieves race for it; the mutex doubles as the
//! happens-before edge for the item payload. Claims use `try_lock` — a
//! locked slot is by definition being claimed by someone else, so a thief
//! just moves on. The scan is O(items) per claim, which is irrelevant at
//! the coarse granularity the shard sizing below produces (tens of items).
//!
//! Item order is load-balancing only: the parallel drivers index their
//! results by object/restart, so *which* worker executes an item — and in
//! what order items complete — can never change an outcome. The scheduler
//! determinism tests pin that end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a driver's `threads` field to a concrete worker count: an
/// explicit non-zero value wins; `0` defers to the `UCPC_THREADS`
/// environment knob (read through the shared warn-and-fall-back reader,
/// [`ucpc_uncertain::env::read_knob`] — a set but invalid or zero value
/// warns on stderr), and an unset or invalid knob falls back to
/// [`std::thread::available_parallelism`]. Every parallel entry point
/// (`ParallelUcpc::run*`, `BestOfRestarts::run`) routes through here so the
/// resolution exists exactly once.
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Some(t) =
        ucpc_uncertain::env::read_knob("UCPC_THREADS", "a positive integer", parse_threads)
    {
        return t;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses one `UCPC_THREADS` value: a positive integer, anything else ⇒
/// `None` — the pure worker behind [`resolve_threads`]'s knob read,
/// exposed for env-free unit tests.
pub fn parse_threads(v: &str) -> Option<usize> {
    v.parse::<usize>().ok().filter(|&t| t > 0)
}

/// Picks the steal backend's shard size (in arena rows) for a propose phase
/// over `n` objects of `m` dimensions drained by `threads` workers.
///
/// Two pressures, resolved by taking the smaller:
///
/// * **cache residency** — a shard's `mu` rows (the memory a propose scan
///   streams per object) should fit comfortably in one core's L2, so a
///   stolen shard does not evict the thief's working set: `L2_TARGET /
///   (8·m)` rows;
/// * **balance granularity** — there must be enough shards for stealing to
///   matter: at least `BALANCE_SHARDS_PER_WORKER` (4) per worker when `n`
///   permits.
///
/// A floor of `MIN_SHARD_ROWS` (16) keeps the per-shard claim overhead
/// negligible on tiny inputs (where the whole dataset is one shard and the
/// scheduler degenerates to a sequential scan).
pub fn steal_shard_rows(n: usize, m: usize, threads: usize) -> usize {
    /// Target bytes of `mu`-row data per shard (half a typical 512 KiB L2,
    /// leaving room for the cluster statistics and prune-cache lines the
    /// scan also touches).
    const L2_TARGET_BYTES: usize = 256 * 1024;
    /// Minimum shards per worker before cache residency is allowed to win.
    const BALANCE_SHARDS_PER_WORKER: usize = 4;
    /// Smallest shard worth scheduling.
    const MIN_SHARD_ROWS: usize = 16;

    let l2_rows = L2_TARGET_BYTES / (8 * m.max(1));
    let balance_rows = n.div_ceil(BALANCE_SHARDS_PER_WORKER * threads.max(1));
    l2_rows.min(balance_rows).max(MIN_SHARD_ROWS)
}

/// A fixed set of work items drained by a pool of workers with
/// back-to-front stealing (see the module docs). `T` is the item payload —
/// an arena shard with its prune-cache window, or a restart index.
#[derive(Debug)]
pub struct WorkPool<T> {
    /// One slot per item; `None` once claimed.
    slots: Vec<Mutex<Option<T>>>,
    /// Worker `w` owns the contiguous item range `bounds[w]..bounds[w+1]`.
    bounds: Vec<usize>,
    /// Items claimed from a run the claiming worker does not own.
    steals: AtomicUsize,
}

impl<T> WorkPool<T> {
    /// Builds a pool over `items`, split into `workers` contiguous runs of
    /// near-equal length (trailing runs may be empty when there are more
    /// workers than items).
    pub fn new(items: Vec<T>, workers: usize) -> Self {
        let workers = workers.max(1);
        let n = items.len();
        let per = n.div_ceil(workers.min(n.max(1)));
        let bounds: Vec<usize> = (0..=workers).map(|w| (w * per).min(n)).collect();
        Self {
            slots: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            bounds,
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of workers the pool was split for.
    pub fn workers(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of items (claimed or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool was built over zero items.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Claims the next item for `worker`: the front of its own run first,
    /// then — stealing — the *back* of the other workers' runs, starting
    /// from the next worker over. Returns `None` when every item has been
    /// claimed. Each item is returned exactly once across all workers.
    pub fn claim(&self, worker: usize) -> Option<T> {
        debug_assert!(worker < self.workers(), "worker {worker} out of range");
        let (lo, hi) = (self.bounds[worker], self.bounds[worker + 1]);
        for i in lo..hi {
            if let Some(item) = self.try_take(i) {
                return Some(item);
            }
        }
        let workers = self.workers();
        for delta in 1..workers {
            let victim = (worker + delta) % workers;
            let (vlo, vhi) = (self.bounds[victim], self.bounds[victim + 1]);
            for i in (vlo..vhi).rev() {
                if let Some(item) = self.try_take(i) {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
        }
        None
    }

    /// Claims the next item from `worker`'s own run only — the static
    /// assignment of the even-chunking reference backend, which must not
    /// steal by definition.
    pub fn claim_own(&self, worker: usize) -> Option<T> {
        debug_assert!(worker < self.workers(), "worker {worker} out of range");
        let (lo, hi) = (self.bounds[worker], self.bounds[worker + 1]);
        (lo..hi).find_map(|i| self.try_take(i))
    }

    /// Cross-run claims observed so far.
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    fn try_take(&self, i: usize) -> Option<T> {
        // A locked slot is mid-claim by another worker; skipping it is
        // correct either way (the item will be gone by the time the lock
        // frees).
        self.slots[i].try_lock().ok().and_then(|mut g| g.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn threads_knob_accepts_positive_integers_only_and_warns_otherwise() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("0"), None, "zero workers is meaningless");
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_THREADS",
            Some("0"),
            "a positive integer",
            parse_threads,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_THREADS=\"0\""));
    }

    #[test]
    fn every_item_is_claimed_exactly_once_single_worker() {
        let pool = WorkPool::new((0..10).collect(), 1);
        let mut seen = Vec::new();
        while let Some(i) = pool.claim(0) {
            seen.push(i);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(pool.steals(), 0);
    }

    #[test]
    fn thieves_drain_foreign_runs_from_the_back() {
        let pool = WorkPool::new((0..8).collect(), 2);
        // Worker 1 never runs; worker 0 drains its own run 0..4 front-first,
        // then steals 7, 6, 5, 4 from worker 1's run back-first.
        let order: Vec<usize> = std::iter::from_fn(|| pool.claim(0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 7, 6, 5, 4]);
        assert_eq!(pool.steals(), 4);
    }

    #[test]
    fn concurrent_workers_partition_the_items() {
        let pool = WorkPool::new((0..257).collect::<Vec<usize>>(), 4);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let pool = &pool;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(i) = pool.claim(w) {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..257).collect::<Vec<_>>());
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), 257);
    }

    #[test]
    fn more_workers_than_items_leaves_trailing_runs_empty() {
        let pool = WorkPool::new(vec![42], 8);
        assert_eq!(pool.workers(), 8);
        assert_eq!(pool.claim(7), Some(42));
        assert_eq!(pool.claim(0), None);
    }

    #[test]
    fn explicit_thread_count_wins_over_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn shard_rows_balance_and_cache_pressures() {
        // m=32: L2 target allows 1024 rows, but balance wants n/(4·8)=313.
        assert_eq!(steal_shard_rows(10_000, 32, 8), 313);
        // Huge m: cache residency wins, floored at the minimum.
        assert_eq!(steal_shard_rows(10_000, 100_000, 2), 16);
        // Tiny n: floor keeps a single shard.
        assert!(steal_shard_rows(10, 4, 8) >= 10);
    }
}
