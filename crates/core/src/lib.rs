//! # ucpc-core — the paper's primary contribution
//!
//! The U-centroid (Section 4.1), the closed-form cluster-compactness
//! objective it induces (Section 4.2, Theorem 3, Corollary 1), and the UCPC
//! local-search clustering algorithm (Section 4.3, Algorithm 1) from
//! *Uncertain Centroid based Partitional Clustering of Uncertain Data*
//! (Gullo & Tagarelli, VLDB 2012), plus the partitional-clustering framework
//! (partitions, initializers, the [`framework::UncertainClusterer`] trait)
//! shared with every baseline in `ucpc-baselines`.
//!
//! ## Architecture: three layers under the relocation loop
//!
//! The hot path of every driver in this crate ([`ucpc::Ucpc`],
//! [`parallel::ParallelUcpc`], [`incremental::IncrementalUcpc`],
//! [`restarts::BestOfRestarts`]) is Algorithm 1's candidate-relocation
//! scan, built from three layers:
//!
//! * **Moment arena** — object moments live in a flat
//!   [`ucpc_uncertain::MomentArena`] (contiguous rows + precomputed scalar
//!   columns); the arena module docs derive how Corollary 1 collapses each
//!   candidate evaluation to one fused dot product, which
//!   [`ucpc_uncertain::simd`] dispatches to an AVX2/NEON kernel at run time
//!   (env knob `UCPC_SIMD`).
//! * **Delta-`J` kernel** — [`objective::ClusterStats`] maintains
//!   per-cluster sufficient statistics and scalar aggregates so that
//!   [`objective::ClusterStats::delta_j_add`] /
//!   [`objective::ClusterStats::delta_j_remove`] price a relocation in
//!   O(m), and [`pruning::best_candidate`] batches candidate clusters in
//!   threes through the fused `dot3` pass.
//! * **Pruning tiers** — [`pruning`] caches each object's best/second-best
//!   deltas and bounds how much any cluster's delta can have drifted since
//!   (tier 0 globally in O(1), tier 1 per cluster in O(k), tier 2
//!   confirming a still-winning argmin with two dot products), skipping
//!   provably redundant scans *exactly*: pruned runs produce byte-identical
//!   labels (env knob `UCPC_PRUNING`, [`pruning::PruningConfig`]).
//!
//! Everything above those layers is orchestration: initialization
//! ([`init::Initializer`]), restarts, the incremental driver's
//! invalidation bookkeeping, and the shared [`framework`] types. The
//! parallel drivers ([`parallel::ParallelUcpc`]'s propose phase,
//! [`restarts::BestOfRestarts`]'s restart queue) share the work-stealing
//! [`scheduler::WorkPool`] and the `UCPC_THREADS` resolution helper
//! ([`scheduler::resolve_threads`]); [`parallel::SharedStats`] adds
//! per-cluster version counters so the propose phase runs snapshot-free
//! (env knob `UCPC_PARALLEL`). The streaming driver
//! ([`incremental::IncrementalUcpc`]) stores its live window in a
//! [`ucpc_uncertain::SlabArena`] (free-list row reuse, env knob
//! `UCPC_STREAMING`), routes placements through the dot3-batched
//! [`pruning::best_insertion`] scan, and performs edits through the
//! drift-tracked updates so pruning bounds survive them — only a cluster
//! passing through size < 2 surgically invalidates the entries rooted in
//! it, via the per-cluster version counters of [`pruning`].
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use ucpc_core::{Ucpc, framework::UncertainClusterer};
//! use ucpc_uncertain::{UncertainObject, UnivariatePdf};
//!
//! // Six uncertain points in two obvious groups.
//! let data: Vec<UncertainObject> = [0.0, 0.2, 0.4, 9.0, 9.2, 9.4]
//!     .iter()
//!     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
//!     .collect();
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let result = Ucpc::default().run(&data, 2, &mut rng).unwrap();
//! assert!(result.converged);
//! assert_eq!(result.clustering.label(0), result.clustering.label(1));
//! assert_ne!(result.clustering.label(0), result.clustering.label(5));
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod framework;
pub mod incremental;
pub mod init;
pub mod objective;
pub mod parallel;
pub mod pruning;
pub mod restarts;
pub mod scheduler;
pub mod serving;
pub mod sharded;
pub mod snapshot;
pub mod ucentroid;
pub mod ucpc;
pub mod wal;

pub use fault::{ChaosPlan, Dice, IoFaultPlan, ManualClock};

pub use framework::{ClusterError, Clustering, UncertainClusterer};
pub use init::Initializer;
pub use objective::ClusterStats;
pub use pruning::{PruneCounters, PruningConfig};
pub use serving::{
    Clock, PlacementAnswer, ServingConfig, ServingError, ServingResponse, ServingUcpc, SystemClock,
};
pub use sharded::{ChaosTransport, MpscTransport, ShardedUcpc, Transport};
pub use snapshot::SnapshotError;
pub use ucentroid::UCentroid;
pub use ucpc::{Ucpc, UcpcResult};
pub use wal::{
    apply_record, recover, scan_wal, DurableIo, IoFault, Recovery, SharedVecIo, VecIo, WalDamage,
    WalError, WalFsync, WalRecord, WalScan, WalWriter,
};
