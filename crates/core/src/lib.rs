//! # ucpc-core — the paper's primary contribution
//!
//! The U-centroid (Section 4.1), the closed-form cluster-compactness
//! objective it induces (Section 4.2, Theorem 3, Corollary 1), and the UCPC
//! local-search clustering algorithm (Section 4.3, Algorithm 1) from
//! *Uncertain Centroid based Partitional Clustering of Uncertain Data*
//! (Gullo & Tagarelli, VLDB 2012), plus the partitional-clustering framework
//! (partitions, initializers, the [`framework::UncertainClusterer`] trait)
//! shared with every baseline in `ucpc-baselines`.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use ucpc_core::{Ucpc, framework::UncertainClusterer};
//! use ucpc_uncertain::{UncertainObject, UnivariatePdf};
//!
//! // Six uncertain points in two obvious groups.
//! let data: Vec<UncertainObject> = [0.0, 0.2, 0.4, 9.0, 9.2, 9.4]
//!     .iter()
//!     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
//!     .collect();
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let result = Ucpc::default().run(&data, 2, &mut rng).unwrap();
//! assert!(result.converged);
//! assert_eq!(result.clustering.label(0), result.clustering.label(1));
//! assert_ne!(result.clustering.label(0), result.clustering.label(5));
//! ```

#![warn(missing_docs)]

pub mod framework;
pub mod incremental;
pub mod init;
pub mod objective;
pub mod parallel;
pub mod pruning;
pub mod restarts;
pub mod ucentroid;
pub mod ucpc;

pub use framework::{ClusterError, Clustering, UncertainClusterer};
pub use init::Initializer;
pub use objective::ClusterStats;
pub use pruning::{PruneCounters, PruningConfig};
pub use ucentroid::UCentroid;
pub use ucpc::{Ucpc, UcpcResult};
