//! Exact candidate pruning for the UCPC relocation loop: per-object
//! best/second-best delta-`J` caching plus per-cluster drift bounds.
//!
//! The relocation pass of Algorithm 1 evaluates, for every object `o`, the
//! objective change of moving it to each of the `k−1` other clusters. After
//! the first few passes most objects sit firmly inside their cluster and the
//! scan re-derives the same "no move" answer over and over. This module
//! skips those scans *exactly*: a pruned run applies the same relocations in
//! the same order as an unpruned run and produces byte-identical labels —
//! the bound machinery only ever proves that a scan's outcome cannot have
//! changed, it never approximates it. The idea transplants the
//! MinMax/cluster-shift bounding of the UK-means pruning literature (Ngai et
//! al. \[16\]\[17\], implemented for the sampled baseline in
//! `ucpc-baselines::pruning`) onto the closed-form delta-`J` kernel.
//!
//! # The drift bound
//!
//! Write a cluster's sufficient statistics as `n = |C|`, `s = Σ_{o∈C} mu(o)`,
//! `Ψ = Σ sigma²(o)`, `Φ = Σ Σ_j (mu_2)_j(o)` and `A = Ψ − ‖s‖²`. The
//! scalar-aggregate kernel (see [`ucpc_uncertain::arena`]) evaluates the two
//! delta directions as
//!
//! ```text
//! delta_add(C, o)    = −T(C) + (sigma²(o) − ‖mu(o)‖²)/(n+1) + phi(o)
//!                      − 2⟨s, mu(o)⟩/(n+1),          T(C) = A/(n(n+1)),
//! delta_remove(C, o) =  U(C) − (sigma²(o) + ‖mu(o)‖²)/(n−1) − phi(o)
//!                      + 2⟨s, mu(o)⟩/(n−1),          U(C) = A/(n(n−1)),
//! ```
//!
//! with `T(∅) = 0` and `delta_remove` special-cased to `−J(C)` for `n = 1`.
//! When the cluster changes from `C` to `C'` (any sequence of member
//! additions/removals), the triangle and Cauchy–Schwarz inequalities give
//!
//! ```text
//! |delta_add(C',o) − delta_add(C,o)|
//!     ≤ |T(C') − T(C)|                                  (constant)
//!     + |1/(n'+1) − 1/(n+1)| · q(o)                     (size-coupled)
//!     + 2‖s'/(n'+1) − s/(n+1)‖ · ‖mu(o)‖,               (mean-coupled)
//! ```
//!
//! where `q(o) = sigma²(o) + ‖mu(o)‖² ≥ |sigma²(o) − ‖mu(o)‖²|`, and the
//! analogous bound for `delta_remove` with `n±1` replaced by `n∓1`-style
//! denominators (`1/(n−1)`, valid whenever both sizes are ≥ 2). For a single
//! tracked transition `C → C ± x` the mean-coupled factor is not merely
//! bounded but *exact*, and O(1): with `d, d'` the direction's denominators,
//!
//! ```text
//! ‖s'/d' − s/d‖ = ‖(s ± mu(x)) d − s d'‖ / (d d')
//!               = ‖mu(x)·a − s‖ / (d d'),        a = ±d = ∓(d' − d)·…,
//! ```
//!
//! where the numerator collapses to `‖mu(x)·a − s‖` with `a = n+1` (add
//! direction) or `a = n−1` (remove direction) for either transition, and
//! expands through scalars that are already on hand:
//! `‖mu(x)·a − s‖² = a²·Σmu(x)² − 2a⟨s, mu(x)⟩ + S₂`, the cross term being
//! computed by the very `add_view`/`remove_view` pass that applies the
//! relocation. The exactness matters: the naive triangle split
//! `‖s‖·|1/d'−1/d| + ‖mu(x)‖/d'` loses the cancellation between `mu(x)` and
//! `s` (both roughly aligned with the cluster mean) and is an order of
//! magnitude looser on realistic data. Each [`ClusterStats`] accumulates
//! these three coefficients per direction ([`ClusterDrift`]); every term is
//! non-negative, so the accumulators are monotone and for any earlier
//! snapshot the difference `acc(now) − acc(snapshot)` bounds the total
//! drift of that cluster's delta over the whole intervening relocation
//! history (triangle inequality over the chain of transitions).
//!
//! # Soundness of the two skip tests
//!
//! A full scan of object `o` (current cluster `src`) computes
//! `d(c) = delta_remove(src, o) + delta_add(c, o)` for every candidate
//! `c ≠ src`, takes the minimum `d* = d(c*)` (first index wins ties), and
//! applies the move iff `d* < −tolerance`. After a full scan that applied no
//! move, the cache stores `best = d(c*)`, `c*`, and
//! `second = min_{c ∉ {src, c*}} d(c)`, together with a snapshot of every
//! cluster's drift accumulators. Let `D_add(o)` be the add-direction drift
//! bound maximised over candidates (per-coefficient maxima of
//! `acc − snapshot`, combined with `q(o)` and `‖mu(o)‖`), and `D_rem(o)` the
//! remove-direction bound of `src` alone. Then for the current statistics:
//!
//! Let `D_best(o)` be the add-direction drift bound of the cached best
//! cluster `c*` alone, `D_oth(o)` the per-coefficient maxima over the
//! remaining candidates, and `D_rem(o)` the remove-direction bound of `src`.
//!
//! * **Tier 1 (skip).** The current candidate deltas satisfy
//!   `d(c*) ≥ best − D_best − D_rem` and, for every other candidate,
//!   `d(c) ≥ second − D_oth − D_rem` (the cached `second` is the minimum
//!   over exactly those clusters). If both right-hand sides are
//!   `≥ −tolerance`, the full scan would find `d* ≥ −tolerance` and apply
//!   nothing — the scan is skipped outright and the state is untouched,
//!   exactly as the unpruned pass would leave it. Splitting `c*` from the
//!   rest lets the (usually large) `second − best` margin absorb churn that
//!   is concentrated away from the object's own neighborhood.
//! * **Tier 2 (confirm argmin).** The remove term is common to every
//!   candidate, so the argmin is decided by the add terms alone. If
//!   `best + D_best < second − D_oth` (strictly), the cached `c*` is still
//!   the unique argmin; the pass recomputes the *exact* delta for `c*` only
//!   (two fused dot products instead of `k`) with the identical kernel
//!   calls an unpruned scan would issue for `c*`, and applies the identical
//!   decision — bit-for-bit, because the float operations are the same.
//!
//! A preliminary **tier 0** runs both tests with a single global
//! [`DriftTotals`] — the accumulators summed over all clusters, snapshotted
//! inline in the cache entry — which over-approximates every per-cluster
//! difference at O(1) cost and resolves almost all decisions in quiet
//! passes without touching the per-cluster snapshot row.
//!
//! # Surgical invalidation: per-cluster remove-direction versions
//!
//! Any transition that takes a cluster through size `< 2` is flagged by the
//! tracked updates ([`ClusterStats::add_view_tracked`]) because the
//! remove-direction coefficients are not defined there — that cluster's
//! remove-direction accumulators silently miss the transition's drift and
//! can no longer be trusted as watermarks. Crucially, the *add*-direction
//! coefficients are accumulated unconditionally (they are defined down to
//! an emptying or just-born cluster), so a small transition taints exactly
//! one thing: the flagged cluster's remove-direction history. And
//! [`PruneShard::decide`] consumes remove-direction drift for exactly one
//! cluster — the object's own `src` (the removal gain common to all
//! candidates); every other cluster enters only through its add-direction
//! accumulators. A cached bound is therefore unsound after a small
//! transition **iff** its `src` is the flagged cluster.
//!
//! The drivers exploit this with per-cluster *remove-direction version
//! counters*: [`apply_tracked_relocation`] bumps `versions[c]` only when
//! cluster `c`'s half of the relocation was small, and `decide` rejects an
//! entry only when `versions[src]` moved past the value snapshotted at
//! store time. Entries whose `src` sits elsewhere ride straight through —
//! their bounds simply widen by the (always-sound) add-direction drift.
//! The same argument covers streaming edits: `IncrementalUcpc`'s slab
//! backend performs inserts/removals through the *tracked* updates, so an
//! edit is just one more transition the accumulators already bound, and
//! only a small edit bumps the touched cluster's version — no cached bound
//! elsewhere is disturbed. (The pre-slab object backend keeps the seed
//! semantics: untracked edits plus a global epoch bump on every edit.)
//!
//! A global *epoch* remains as the coarse kill-switch (entries record the
//! epoch they were written in): `IncrementalUcpc::set_pruning` bumps it,
//! the reference streaming backend bumps it per edit, and `BestOfRestarts`
//! resets the cache between restarts.
//!
//! The accumulators and bounds are themselves computed in floating point, so
//! every test inflates the drift by [`slack`] — a safety margin proportional
//! to the magnitude of the cluster aggregates (the source of cancellation
//! noise in a delta evaluation) and of the object's scalars. The margin is
//! orders of magnitude above the ~`ε·magnitude` rounding noise of the kernel
//! while staying orders of magnitude below any decision margin the data can
//! sustain, and the exactness suite (`tests/pruning_exactness.rs`) plus the
//! shadow-scan property test validate the end-to-end guarantee.

use crate::objective::{ClusterDrift, ClusterStats};
use ucpc_uncertain::arena::MomentView;

/// Whether the relocation loops use the drift-bound candidate pruning.
///
/// The default honours the `UCPC_PRUNING` environment variable (`bounds` or
/// `off`, unset ⇒ `Off`) so the whole test suite can be re-run against the
/// pruned path without code changes — the CI pruning matrix relies on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruningConfig {
    /// Reference behaviour: every object scans all `k−1` candidates.
    Off,
    /// Best/second-best caching with drift bounds; exactly equivalent to
    /// [`PruningConfig::Off`] by the argument in the module docs.
    Bounds,
}

impl PruningConfig {
    /// Parses one knob value (`"bounds"`/`"on"`/`"1"` ⇒ [`Self::Bounds`],
    /// `"off"`/`"0"` ⇒ [`Self::Off]`, anything else ⇒ `None`) — the pure
    /// worker behind [`Self::from_env`], exposed for env-free unit tests.
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "bounds" | "on" | "1" => Some(Self::Bounds),
            "off" | "0" => Some(Self::Off),
            _ => None,
        }
    }

    /// Reads the `UCPC_PRUNING` environment knob through the shared
    /// warn-and-fall-back reader ([`ucpc_uncertain::env::read_knob`]): a set
    /// but invalid value warns on stderr and yields `None` (callers fall
    /// back to their default), instead of failing silently.
    pub fn from_env() -> Option<Self> {
        ucpc_uncertain::env::read_knob("UCPC_PRUNING", "bounds|on|1|off|0", Self::parse)
    }

    /// Whether pruning is active.
    pub fn is_enabled(self) -> bool {
        matches!(self, Self::Bounds)
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self::from_env().unwrap_or(Self::Off)
    }
}

/// Skip/scan counters of one pruned run; all zeros when pruning is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Tier-1 outcomes: the whole candidate scan was proven redundant.
    pub skips: usize,
    /// Tier-2 outcomes: the cached argmin was confirmed and only its exact
    /// delta was recomputed (two dot products instead of `k`).
    pub confirms: usize,
    /// Objects that ran the full `k−1` candidate scan.
    pub full_scans: usize,
    /// Placement-scan candidates whose exact delta was priced (dot product
    /// evaluated) by [`best_insertion_bounded`].
    pub placement_priced: usize,
    /// Placement-scan candidates discarded by the Cauchy–Schwarz lower
    /// bound without pricing.
    pub placement_bypassed: usize,
}

impl PruneCounters {
    /// Total relocation decisions taken.
    pub fn decisions(&self) -> usize {
        self.skips + self.confirms + self.full_scans
    }

    /// Fraction of decisions that avoided the full candidate scan.
    pub fn skip_rate(&self) -> f64 {
        let d = self.decisions();
        if d == 0 {
            0.0
        } else {
            (self.skips + self.confirms) as f64 / d as f64
        }
    }

    /// Fraction of placement candidates discarded without pricing.
    pub fn placement_bypass_rate(&self) -> f64 {
        let total = self.placement_priced + self.placement_bypassed;
        if total == 0 {
            0.0
        } else {
            self.placement_bypassed as f64 / total as f64
        }
    }

    /// Accumulates another run's counters (used by restarts and benches).
    pub fn merge(&mut self, other: PruneCounters) {
        self.skips += other.skips;
        self.confirms += other.confirms;
        self.full_scans += other.full_scans;
        self.placement_priced += other.placement_priced;
        self.placement_bypassed += other.placement_bypassed;
    }
}

/// What the bounds allow for one object's relocation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneDecision {
    /// No usable cache entry, or the bounds are too loose: run the full
    /// candidate scan (and refresh the cache).
    FullScan,
    /// Tier 1: the cached best cannot have dropped below `−tolerance`; the
    /// scan would apply nothing. Skip it.
    Skip,
    /// Tier 2: the cached argmin provably still wins; recompute its exact
    /// delta only.
    ConfirmBest(usize),
}

/// Number of drift coefficients snapshotted per cluster (two directions ×
/// three coefficients).
const SNAP_STRIDE: usize = 6;

/// Driver-maintained global drift totals: the six coefficient accumulators
/// summed over *all* clusters, updated on every tracked relocation. Each is
/// an upper bound on the corresponding per-cluster accumulator (every
/// increment is non-negative), so the O(1) tier-0 test can diff two copies
/// of this struct instead of walking the per-cluster snapshot row; the O(k)
/// per-cluster walk remains as a tighter fallback for semi-active passes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriftTotals {
    add_const: f64,
    add_size: f64,
    add_mean: f64,
    rem_const: f64,
    rem_size: f64,
    rem_mean: f64,
}

impl DriftTotals {
    /// Folds one cluster's accumulator movement (`before` → `after`, as
    /// returned by [`ClusterStats::drift`] around a tracked relocation) into
    /// the totals.
    pub fn absorb(&mut self, before: ClusterDrift, after: ClusterDrift) {
        self.add_const += after.add_const - before.add_const;
        self.add_size += after.add_size - before.add_size;
        self.add_mean += after.add_mean - before.add_mean;
        self.rem_const += after.rem_const - before.rem_const;
        self.rem_size += after.rem_size - before.rem_size;
        self.rem_mean += after.rem_mean - before.rem_mean;
    }

    /// The six accumulators in snapshot order — raw state for the snapshot
    /// codec.
    pub(crate) fn to_array(self) -> [f64; 6] {
        [
            self.add_const,
            self.add_size,
            self.add_mean,
            self.rem_const,
            self.rem_size,
            self.rem_mean,
        ]
    }

    /// Inverse of [`Self::to_array`] (snapshot restore; bit-verbatim).
    pub(crate) fn from_array(a: [f64; 6]) -> Self {
        Self {
            add_const: a[0],
            add_size: a[1],
            add_mean: a[2],
            rem_const: a[3],
            rem_size: a[4],
            rem_mean: a[5],
        }
    }
}

/// One object's cached scan outcome, including its snapshot of the global
/// [`DriftTotals`] (the O(1) watermark; the per-cluster watermark lives in
/// the shard's snapshot matrix).
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    valid: bool,
    /// Generation stamp of the slot's occupant at store time. Streaming
    /// drivers recycle slots; an entry written for a departed occupant must
    /// not serve its slot's next tenant, so `decide` rejects on mismatch.
    /// Batch drivers have no churn and pass a constant 0.
    gen: u32,
    epoch: u64,
    /// `versions[src]` at store time — the surgical-invalidation watermark:
    /// the entry dies iff `src`'s remove-direction version moves (see the
    /// module docs).
    src_version: u64,
    best_dst: usize,
    best: f64,
    second: f64,
    totals: DriftTotals,
}

impl CacheEntry {
    fn invalid() -> Self {
        Self {
            valid: false,
            gen: 0,
            epoch: 0,
            src_version: 0,
            best_dst: usize::MAX,
            best: f64::INFINITY,
            second: f64::INFINITY,
            totals: DriftTotals::default(),
        }
    }
}

/// The per-object pruning state: best/second-best cache rows plus a flat
/// `n × 6k` snapshot matrix of the per-cluster drift accumulators at cache
/// time (columns alongside the [`ucpc_uncertain::MomentArena`]'s moment
/// columns).
#[derive(Debug, Clone)]
pub struct PruneCache {
    k: usize,
    entries: Vec<CacheEntry>,
    snaps: Vec<f64>,
}

impl PruneCache {
    /// An all-invalid cache for `n` objects and `k` clusters.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            k,
            entries: vec![CacheEntry::invalid(); n],
            snaps: vec![0.0; n * k * SNAP_STRIDE],
        }
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache covers no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Invalidates every entry and re-shapes the cache for `n` objects and
    /// `k` clusters without reallocating when the shape already fits — the
    /// per-restart reset of `BestOfRestarts`.
    pub fn reset(&mut self, n: usize, k: usize) {
        self.k = k;
        self.entries.clear();
        self.entries.resize(n, CacheEntry::invalid());
        self.snaps.clear();
        self.snaps.resize(n * k * SNAP_STRIDE, 0.0);
    }

    /// Grows the cache to cover `n` objects (new entries invalid); keeps
    /// existing entries (used by `IncrementalUcpc`, whose slots are
    /// index-stable).
    pub fn grow(&mut self, n: usize) {
        if n > self.entries.len() {
            self.entries.resize(n, CacheEntry::invalid());
            self.snaps.resize(n * self.k * SNAP_STRIDE, 0.0);
        }
    }

    /// Invalidates one object's entry (after it relocates).
    pub fn invalidate(&mut self, i: usize) {
        self.entries[i].valid = false;
    }

    /// A shard covering the whole cache, for single-threaded drivers.
    pub fn view(&mut self) -> PruneShard<'_> {
        let k = self.k;
        PruneShard {
            base: 0,
            k,
            entries: &mut self.entries,
            snaps: &mut self.snaps,
        }
    }

    /// Splits the cache into consecutive shards of `chunk` objects (last one
    /// shorter), matching the shard layout of `ParallelUcpc`'s propose
    /// phase so each worker owns its objects' cache rows.
    pub fn shards(&mut self, chunk: usize) -> Vec<PruneShard<'_>> {
        assert!(chunk > 0, "shard size must be positive");
        let k = self.k;
        let mut shards = Vec::new();
        let mut base = 0usize;
        let mut entries: &mut [CacheEntry] = &mut self.entries;
        let mut snaps: &mut [f64] = &mut self.snaps;
        while !entries.is_empty() {
            let take = chunk.min(entries.len());
            let (e, e_rest) = entries.split_at_mut(take);
            let (s, s_rest) = snaps.split_at_mut(take * k * SNAP_STRIDE);
            shards.push(PruneShard {
                base,
                k,
                entries: e,
                snaps: s,
            });
            base += take;
            entries = e_rest;
            snaps = s_rest;
        }
        shards
    }
}

/// A mutable window over a contiguous range of objects' cache rows; the unit
/// handed to each propose-phase worker (its *per-shard drift snapshot* is
/// whatever frozen statistics slice the caller passes to [`Self::decide`] /
/// [`Self::store`]).
#[derive(Debug)]
pub struct PruneShard<'a> {
    base: usize,
    k: usize,
    entries: &'a mut [CacheEntry],
    snaps: &'a mut [f64],
}

/// Floating-point safety margin added on top of the accumulated drift: a
/// tiny multiple of the cluster-aggregate magnitude (`fp_scale`, the source
/// of cancellation noise inside a delta evaluation) plus one of the object's
/// own scalar magnitudes. See the module docs.
pub fn slack(fp_scale: f64, q: f64, r: f64) -> f64 {
    1e-12 * fp_scale + 1e-9 * (1.0 + q + r)
}

/// The per-pass aggregate-magnitude scale fed to [`slack`].
pub fn fp_scale(stats: &[ClusterStats]) -> f64 {
    stats
        .iter()
        .map(ClusterStats::magnitude)
        .fold(0.0f64, f64::max)
}

/// The reference `k−1` candidate scan: removal gain from `src` plus
/// `delta_j_add` against every other cluster, strict-less minimum (first
/// index wins ties). Every relocation driver routes its unpruned scans
/// through here so the tie-break semantics the pruning exactness guarantee
/// depends on exist in exactly one place.
///
/// Candidates are batched in threes through the fused
/// [`ucpc_uncertain::simd::dot3`] kernel, which loads the object's `mu` row
/// once per block instead of once per candidate; `dot3`'s components are
/// bit-identical to single `dot` calls and the deltas are consumed in
/// ascending cluster order, so batching changes wall-clock time and
/// nothing else.
pub fn best_candidate(
    stats: &[ClusterStats],
    src: usize,
    v: &MomentView<'_>,
) -> Option<(usize, f64)> {
    let removal_gain = stats[src].delta_j_remove(v);
    scan::<false>(stats, src, removal_gain, v).map(|(dst, delta, _)| (dst, delta))
}

/// The streaming *placement* scan: the cluster minimizing `delta_j_add`
/// over **all** `k` clusters (no source to leave, no removal gain) — what
/// `IncrementalUcpc::insert` runs per arriving object, O(k·m) by
/// Corollary 1. Shares the dot3-batched scan body of [`best_candidate`], so
/// placement gets the same SIMD batching as relocation and the deltas are
/// bit-identical to a per-cluster `delta_j_add` loop (strict-less minimum,
/// first index wins ties). `None` only for an empty cluster slice.
pub fn best_insertion(stats: &[ClusterStats], v: &MomentView<'_>) -> Option<(usize, f64)> {
    scan::<false>(stats, usize::MAX, 0.0, v).map(|(dst, delta, _)| (dst, delta))
}

/// The *bounded* placement scan: identical result to [`best_insertion`] —
/// same winner, bit-identical delta — but prices only the clusters the
/// Cauchy–Schwarz lower bound ([`ClusterStats::delta_j_add_lower_bound`])
/// cannot rule out. Clusters are visited in ascending order keeping the
/// exact running best; a cluster `c` is discarded without its dot product
/// when `L(c) − guard ≥ best_so_far`, where `guard` is the [`slack`] margin
/// covering the rounding noise of both sides.
///
/// **Exactness.** In exact arithmetic `L(c) ≤ delta(c)`, so a discarded
/// cluster satisfies `delta(c) ≥ L(c) ≥ best_so_far + guard > best_final`
/// (the running best only decreases): it can neither win nor tie the final
/// minimum, and since ties are broken by *first* index, dropping it cannot
/// change the argmin either. In floating point both `L(c)` and `delta(c)`
/// carry ~`ε·magnitude` rounding noise; `guard` is orders of magnitude
/// above it (same construction as the relocation-scan slack). Priced
/// candidates evaluate the identical [`ClusterStats::delta_j_add`] call an
/// unbounded scan would issue, so the returned `(argmin, delta)` is
/// bit-identical — asserted by a shadow full scan in debug builds of
/// `IncrementalUcpc::insert` and by `tests/pruning_exactness.rs`.
///
/// Allocation-free (plain loop): the call sits inside the streaming
/// insert path whose zero-allocation steady state is pinned by test.
/// `counters` tallies priced vs bypassed candidates.
pub fn best_insertion_bounded(
    stats: &[ClusterStats],
    v: &MomentView<'_>,
    scale: f64,
    counters: &mut PruneCounters,
) -> Option<(usize, f64)> {
    let q = v.sum_var + v.sum_mu_sq;
    let guard = slack(scale, q, v.norm_mu);
    let mut best: Option<(usize, f64)> = None;
    for (c, stat) in stats.iter().enumerate() {
        if let Some((_, bd)) = best {
            if stat.delta_j_add_lower_bound(v) - guard >= bd {
                counters.placement_bypassed += 1;
                continue;
            }
        }
        counters.placement_priced += 1;
        let delta = stat.delta_j_add(v);
        match best {
            Some((_, bd)) if delta >= bd => {}
            _ => best = Some((c, delta)),
        }
    }
    best
}

/// [`best_candidate`] with runner-up tracking: additionally returns the
/// minimum delta over the candidates other than the winner (`+∞` when k=2),
/// which is what a pruned full scan caches as the second-best margin. The
/// winner and its delta are bit-identical to [`best_candidate`]'s — both
/// are monomorphizations of one scan, so the comparison sequence deciding
/// `best` exists once.
pub fn best_candidate_with_second(
    stats: &[ClusterStats],
    src: usize,
    v: &MomentView<'_>,
) -> Option<(usize, f64, f64)> {
    let removal_gain = stats[src].delta_j_remove(v);
    scan::<true>(stats, src, removal_gain, v)
}

/// The shared scan body: offers `base + delta_j_add(c)` for every cluster
/// `c != skip` in ascending order (`skip = usize::MAX` ⇒ no exclusion, the
/// insertion-placement case; relocation scans pass `skip = src` and the
/// removal gain as `base`). `SECOND` compiles the runner-up tracking in or
/// out; the candidate deltas and the best-selection comparisons are the
/// same instructions either way. `second` is `+∞` when not tracked.
#[inline]
fn scan<const SECOND: bool>(
    stats: &[ClusterStats],
    skip: usize,
    base: f64,
    v: &MomentView<'_>,
) -> Option<(usize, f64, f64)> {
    /// Folds one candidate delta into the best/second state with the
    /// strict-less, first-index-wins-ties semantics the exactness guarantee
    /// pins. Candidates must be offered in ascending cluster order.
    #[inline(always)]
    fn consider<const SECOND: bool>(
        best: &mut Option<(usize, f64)>,
        second: &mut f64,
        dst: usize,
        delta: f64,
    ) {
        match *best {
            Some((_, bd)) if delta >= bd => {
                if SECOND && delta < *second {
                    *second = delta;
                }
            }
            Some((_, bd)) => {
                if SECOND {
                    *second = bd;
                }
                *best = Some((dst, delta));
            }
            None => *best = Some((dst, delta)),
        }
    }

    let mut best: Option<(usize, f64)> = None;
    let mut second = f64::INFINITY;
    if v.mu.len() < ucpc_uncertain::simd::DISPATCH_THRESHOLD {
        // Short rows never reach a SIMD backend, so there are no loads to
        // amortize — the batching bookkeeping would be pure overhead. The
        // per-candidate kernel calls are the same, so the deltas are
        // bit-identical to the batched path's.
        for (dst, stat) in stats.iter().enumerate() {
            if dst == skip {
                continue;
            }
            let delta = base + stat.delta_j_add(v);
            consider::<SECOND>(&mut best, &mut second, dst, delta);
        }
        return best.map(|(dst, delta)| (dst, delta, second));
    }
    // Batch candidates in threes: one fused dot3 pass computes the three
    // ⟨s_C, mu(o)⟩ cross terms while loading the object's mu row once.
    let mut pending = [0usize; 3];
    let mut filled = 0usize;
    for dst in 0..stats.len() {
        if dst == skip {
            continue;
        }
        pending[filled] = dst;
        filled += 1;
        if filled == 3 {
            let crosses = ucpc_uncertain::simd::dot3(
                v.mu,
                stats[pending[0]].mean_sum(),
                stats[pending[1]].mean_sum(),
                stats[pending[2]].mean_sum(),
            );
            for (&c, &cross) in pending.iter().zip(&crosses) {
                let delta = base + stats[c].delta_j_add_with_cross(v, cross);
                consider::<SECOND>(&mut best, &mut second, c, delta);
            }
            filled = 0;
        }
    }
    // Remainder (< 3 candidates) through the plain dispatched dot — by the
    // bit-identity contract this matches what a dot3 block would produce.
    for &dst in &pending[..filled] {
        let delta = base + stats[dst].delta_j_add(v);
        consider::<SECOND>(&mut best, &mut second, dst, delta);
    }
    best.map(|(dst, delta)| (dst, delta, second))
}

/// Applies one accepted relocation (remove `v` from `src`, add it to `dst`)
/// through the drift-tracked statistic updates, folding both clusters'
/// accumulator movement into the global `totals`. The statistic mutations
/// are bit-identical to the untracked `remove_view`/`add_view` pair.
///
/// When a half of the relocation is a small-size transition (that cluster's
/// remove-direction drift could not be soundly accumulated), the matching
/// per-cluster counter in `versions` is bumped — the surgical invalidation
/// of the module docs: only cache entries whose `src` is that specific
/// cluster go stale, instead of a global epoch killing every entry.
pub fn apply_tracked_relocation(
    stats: &mut [ClusterStats],
    src: usize,
    dst: usize,
    v: &MomentView<'_>,
    totals: &mut DriftTotals,
    versions: &mut [u64],
) {
    apply_tracked_remove(stats, src, v, totals, versions);
    apply_tracked_insert(stats, dst, v, totals, versions);
}

/// One tracked streaming *edit*: adds `v` to cluster `c` through the
/// drift-tracked update ([`ClusterStats::add_view_tracked`], bit-identical
/// statistics to the plain `add_view`), folds `c`'s accumulator movement
/// into `totals`, and bumps `versions[c]` iff the transition was small —
/// the insert half of the surgical-invalidation contract used by
/// `IncrementalUcpc`'s slab backend.
pub fn apply_tracked_insert(
    stats: &mut [ClusterStats],
    c: usize,
    v: &MomentView<'_>,
    totals: &mut DriftTotals,
    versions: &mut [u64],
) {
    let before = stats[c].drift();
    if stats[c].add_view_tracked(v) {
        versions[c] = versions[c].wrapping_add(1);
    }
    totals.absorb(before, stats[c].drift());
}

/// One tracked streaming removal: the [`apply_tracked_insert`] counterpart
/// through [`ClusterStats::remove_view_tracked`].
pub fn apply_tracked_remove(
    stats: &mut [ClusterStats],
    c: usize,
    v: &MomentView<'_>,
    totals: &mut DriftTotals,
    versions: &mut [u64],
) {
    let before = stats[c].drift();
    if stats[c].remove_view_tracked(v) {
        versions[c] = versions[c].wrapping_add(1);
    }
    totals.absorb(before, stats[c].drift());
}

impl PruneShard<'_> {
    fn idx(&self, i: usize) -> usize {
        debug_assert!(
            i >= self.base && i - self.base < self.entries.len(),
            "object {i} outside shard [{}, {})",
            self.base,
            self.base + self.entries.len()
        );
        i - self.base
    }

    /// Evaluates the bound tests for object `i` (cluster `src`, kernel view
    /// `v`) against the statistics in `stats`, the global drift totals,
    /// cache epoch `epoch`, and the per-cluster remove-direction `versions`
    /// (surgical invalidation: the entry is rejected iff `src`'s counter
    /// moved since store time — see the module docs). `gen` is the slot's
    /// current generation stamp: streaming drivers recycle slots, and an
    /// entry stored for a departed occupant must not serve the slot's next
    /// tenant (batch drivers pass 0, like they pass epoch 0). Purely
    /// read-only: callers act on the returned decision.
    ///
    /// Tier 0 diffs the global totals against the entry's inline snapshot —
    /// O(1), one cache line — and resolves the overwhelming majority of
    /// decisions in quiet passes. Only when that over-approximation is too
    /// loose does the O(k) per-cluster walk run (per-coefficient maxima over
    /// candidates instead of sums over all clusters).
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        i: usize,
        gen: u32,
        epoch: u64,
        stats: &[ClusterStats],
        totals: DriftTotals,
        versions: &[u64],
        src: usize,
        v: &MomentView<'_>,
        tolerance: f64,
        scale: f64,
    ) -> PruneDecision {
        let li = self.idx(i);
        let e = self.entries[li];
        if !e.valid
            || e.gen != gen
            || e.epoch != epoch
            || versions[src] != e.src_version
            || e.best_dst == src
            || e.best_dst >= stats.len()
        {
            return PruneDecision::FullScan;
        }
        let q = v.sum_var + v.sum_mu_sq;
        let r = v.norm_mu;
        let guard = slack(scale, q, r);

        // Tier 0: global-sum drift, O(1). The sums over all clusters bound
        // both the candidate-maximum add drift and the src remove drift.
        let g = e.totals;
        let add0 = (totals.add_const - g.add_const).max(0.0)
            + (totals.add_size - g.add_size).max(0.0) * q
            + 2.0 * (totals.add_mean - g.add_mean).max(0.0) * r;
        let rem0 = (totals.rem_const - g.rem_const).max(0.0)
            + (totals.rem_size - g.rem_size).max(0.0) * q
            + 2.0 * (totals.rem_mean - g.rem_mean).max(0.0) * r;
        if e.best - (add0 + rem0 + guard) >= -tolerance {
            return PruneDecision::Skip;
        }

        // Per-cluster refinement. The cached best's own add-direction drift
        // (`d_best`) is kept apart from the per-coefficient maxima over the
        // remaining candidates (`oth_*`): `e.second` is the cached minimum
        // over exactly those clusters, so their drift is charged against the
        // usually-larger second margin.
        let row = &self.snaps[li * self.k * SNAP_STRIDE..(li + 1) * self.k * SNAP_STRIDE];
        let mut oth_const = 0.0f64;
        let mut oth_size = 0.0f64;
        let mut oth_mean = 0.0f64;
        for (c, stat) in stats.iter().enumerate() {
            if c == src || c == e.best_dst {
                continue;
            }
            let d = stat.drift();
            let snap = &row[c * SNAP_STRIDE..(c + 1) * SNAP_STRIDE];
            oth_const = oth_const.max(d.add_const - snap[0]);
            oth_size = oth_size.max(d.add_size - snap[1]);
            oth_mean = oth_mean.max(d.add_mean - snap[2]);
        }
        let d_src = stats[src].drift();
        let snap_src = &row[src * SNAP_STRIDE..(src + 1) * SNAP_STRIDE];
        let rem = (d_src.rem_const - snap_src[3]).max(0.0)
            + (d_src.rem_size - snap_src[4]).max(0.0) * q
            + 2.0 * (d_src.rem_mean - snap_src[5]).max(0.0) * r;
        let d_bst = stats[e.best_dst].drift();
        let snap_bst = &row[e.best_dst * SNAP_STRIDE..(e.best_dst + 1) * SNAP_STRIDE];
        let best_drift = (d_bst.add_const - snap_bst[0]).max(0.0)
            + (d_bst.add_size - snap_bst[1]).max(0.0) * q
            + 2.0 * (d_bst.add_mean - snap_bst[2]).max(0.0) * r;
        let oth_drift = oth_const.max(0.0) + oth_size.max(0.0) * q + 2.0 * oth_mean.max(0.0) * r;

        // Tier 1: no candidate can have dropped below −tolerance.
        if e.best - (best_drift + rem + guard) >= -tolerance
            && e.second - (oth_drift + rem + guard) >= -tolerance
        {
            return PruneDecision::Skip;
        }
        // Tier 2: the cached argmin provably still wins (the remove term is
        // common to all candidates, so only add-direction drift matters).
        if e.best + best_drift + guard < e.second - oth_drift - guard {
            return PruneDecision::ConfirmBest(e.best_dst);
        }
        PruneDecision::FullScan
    }

    /// Records the outcome of a full scan that applied no move: the best and
    /// second-best candidate deltas plus snapshots of the global drift
    /// totals (inline), of `src`'s remove-direction version counter, and of
    /// every cluster's accumulators (the watermarks future [`Self::decide`]
    /// calls diff against).
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        &mut self,
        i: usize,
        gen: u32,
        epoch: u64,
        stats: &[ClusterStats],
        totals: DriftTotals,
        versions: &[u64],
        src: usize,
        best_dst: usize,
        best: f64,
        second: f64,
    ) {
        let li = self.idx(i);
        self.entries[li] = CacheEntry {
            valid: true,
            gen,
            epoch,
            src_version: versions[src],
            best_dst,
            best,
            second,
            totals,
        };
        let row = &mut self.snaps[li * self.k * SNAP_STRIDE..(li + 1) * self.k * SNAP_STRIDE];
        for (c, stat) in stats.iter().enumerate() {
            let ClusterDrift {
                add_const,
                add_size,
                add_mean,
                rem_const,
                rem_size,
                rem_mean,
            } = stat.drift();
            let snap = &mut row[c * SNAP_STRIDE..(c + 1) * SNAP_STRIDE];
            snap[0] = add_const;
            snap[1] = add_size;
            snap[2] = add_mean;
            snap[3] = rem_const;
            snap[4] = rem_size;
            snap[5] = rem_mean;
        }
    }

    /// Invalidates one object's entry (after it relocates).
    pub fn invalidate(&mut self, i: usize) {
        let li = self.idx(i);
        self.entries[li].valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::{MomentArena, UncertainObject, UnivariatePdf};

    #[test]
    fn pruning_knob_parses_all_spellings_and_warns_on_typos() {
        for on in ["bounds", "on", "1"] {
            assert_eq!(PruningConfig::parse(on), Some(PruningConfig::Bounds));
        }
        for off in ["off", "0"] {
            assert_eq!(PruningConfig::parse(off), Some(PruningConfig::Off));
        }
        assert_eq!(PruningConfig::parse("bonds"), None);
        // Routed through the shared reader, an invalid value must warn, not
        // silently fall back (env-free: feed the raw string directly).
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_PRUNING",
            Some("bonds"),
            "bounds|on|1|off|0",
            PruningConfig::parse,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_PRUNING=\"bonds\""));
    }

    fn objects(n: usize) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                UncertainObject::new(vec![
                    UnivariatePdf::normal(i as f64, 0.3),
                    UnivariatePdf::normal(-(i as f64) * 0.5, 0.2),
                ])
            })
            .collect()
    }

    fn stats_for(arena: &MomentArena, labels: &[usize], k: usize) -> Vec<ClusterStats> {
        let mut stats = vec![ClusterStats::empty(arena.dims()); k];
        for (i, &l) in labels.iter().enumerate() {
            stats[l].add_view(&arena.view(i));
        }
        stats
    }

    #[test]
    fn env_knob_parses() {
        assert!(PruningConfig::Bounds.is_enabled());
        assert!(!PruningConfig::Off.is_enabled());
    }

    #[test]
    fn fresh_cache_forces_full_scans() {
        let data = objects(6);
        let arena = MomentArena::from_objects(&data);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let stats = stats_for(&arena, &labels, 2);
        let mut cache = PruneCache::new(6, 2);
        let shard = cache.view();
        let v = arena.view(0);
        assert_eq!(
            shard.decide(
                0,
                0,
                0,
                &stats,
                DriftTotals::default(),
                &[0, 0],
                0,
                &v,
                1e-9,
                fp_scale(&stats)
            ),
            PruneDecision::FullScan
        );
    }

    #[test]
    fn unchanged_statistics_allow_skip_and_epoch_bump_invalidates() {
        let data = objects(6);
        let arena = MomentArena::from_objects(&data);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let stats = stats_for(&arena, &labels, 2);
        let scale = fp_scale(&stats);
        let totals = DriftTotals::default();
        let versions = [0u64, 0];
        let mut cache = PruneCache::new(6, 2);
        let mut shard = cache.view();
        let v = arena.view(0);
        // A converged object: its best candidate delta is comfortably
        // positive, so with zero drift tier 0 must fire.
        shard.store(0, 0, 0, &stats, totals, &versions, 0, 1, 5.0, f64::INFINITY);
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::Skip
        );
        // Same entry at a later epoch: stale, full scan.
        assert_eq!(
            shard.decide(0, 0, 1, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::FullScan
        );
        // Same entry under a later slot generation (the slot was recycled
        // to a new occupant): stale, full scan.
        assert_eq!(
            shard.decide(0, 1, 0, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::FullScan
        );
        // Same entry after the source cluster's remove-direction version
        // moved (a small transition touched it): surgically stale.
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &[1, 0], 0, &v, 1e-9, scale),
            PruneDecision::FullScan
        );
        // A bump of a *non-source* cluster's version leaves the entry
        // usable — its remove-direction history is never consulted here.
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &[0, 7], 0, &v, 1e-9, scale),
            PruneDecision::Skip
        );
    }

    #[test]
    fn negative_best_with_margin_confirms_argmin() {
        let data = objects(9);
        let arena = MomentArena::from_objects(&data);
        let labels = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let stats = stats_for(&arena, &labels, 3);
        let scale = fp_scale(&stats);
        let totals = DriftTotals::default();
        let versions = [0u64, 0, 0];
        let mut cache = PruneCache::new(9, 3);
        let mut shard = cache.view();
        let v = arena.view(0);
        // Cached best is improving (−2) and far from second (+7): tier 2.
        shard.store(0, 0, 0, &stats, totals, &versions, 0, 2, -2.0, 7.0);
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::ConfirmBest(2)
        );
        shard.invalidate(0);
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::FullScan
        );
    }

    #[test]
    fn accumulated_drift_widens_the_bound_until_rescan() {
        let data = objects(8);
        let arena = MomentArena::from_objects(&data);
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut stats = stats_for(&arena, &labels, 2);
        let mut totals = DriftTotals::default();
        let mut versions = [0u64, 0];
        let mut cache = PruneCache::new(8, 2);
        let mut shard = cache.view();
        let v = arena.view(0);
        // Barely-positive margin: sound to skip only while nothing moves.
        shard.store(
            0,
            0,
            0,
            &stats,
            totals,
            &versions,
            0,
            1,
            0.05,
            f64::INFINITY,
        );
        let scale = fp_scale(&stats);
        assert_eq!(
            shard.decide(0, 0, 0, &stats, totals, &versions, 0, &v, 1e-9, scale),
            PruneDecision::Skip
        );
        // Relocate object 7 from cluster 1 to cluster 0 (tracked): both
        // clusters drift and the tiny margin no longer proves a skip. With
        // k = 2 the argmin is trivially stable (there is only one
        // candidate), so the decision degrades to tier 2, which recomputes
        // the exact delta — never to an unsound skip.
        let v7 = arena.view(7);
        apply_tracked_relocation(&mut stats, 1, 0, &v7, &mut totals, &mut versions);
        assert_eq!(versions, [0, 0], "sizes stay >= 2: no version bump");
        assert_eq!(
            shard.decide(
                0,
                0,
                0,
                &stats,
                totals,
                &versions,
                0,
                &v,
                1e-9,
                fp_scale(&stats)
            ),
            PruneDecision::ConfirmBest(1)
        );
    }

    #[test]
    fn per_cluster_refinement_is_tighter_than_global_totals() {
        // Three clusters; the observed object's candidates are 1 and 2.
        // Drift concentrated in cluster 1 inflates the global sums, but the
        // per-cluster maxima only see cluster 1's share — both must agree
        // the entry is unusable only when cluster 1's own drift says so.
        let data = objects(12);
        let arena = MomentArena::from_objects(&data);
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        let mut stats = stats_for(&arena, &labels, 3);
        let mut totals = DriftTotals::default();
        let mut versions = [0u64, 0, 0];
        let mut cache = PruneCache::new(12, 3);
        let mut shard = cache.view();
        let v = arena.view(0);
        shard.store(0, 0, 0, &stats, totals, &versions, 0, 2, 0.4, f64::INFINITY);
        // Churn objects between clusters 1 and 2 (the candidate set):
        // eventually even the per-cluster bound must give up and rescan.
        let mut gave_up = false;
        for step in 0..50 {
            let (src, dst) = if step % 2 == 0 { (1, 2) } else { (2, 1) };
            let vx = arena.view(4 + (step % 4));
            apply_tracked_relocation(&mut stats, src, dst, &vx, &mut totals, &mut versions);
            assert_eq!(versions, [0, 0, 0]);
            match shard.decide(
                0,
                0,
                0,
                &stats,
                totals,
                &versions,
                0,
                &v,
                1e-9,
                fp_scale(&stats),
            ) {
                PruneDecision::Skip => {}
                _ => {
                    gave_up = true;
                    break;
                }
            }
        }
        assert!(gave_up, "accumulated candidate drift must force a rescan");
    }

    #[test]
    fn best_insertion_matches_scalar_placement_loop() {
        // Both the short-row (unbatched) and the dot3-batched regimes, odd
        // and even k, empty clusters included.
        for m in [2usize, 32] {
            let data: Vec<UncertainObject> = (0..14)
                .map(|i| {
                    UncertainObject::new(
                        (0..m)
                            .map(|j| {
                                UnivariatePdf::normal(
                                    (i * m + j) as f64 * 0.3 - 4.0,
                                    0.2 + j as f64 * 0.01,
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            let arena = MomentArena::from_objects(&data);
            for k in [1usize, 2, 4, 5] {
                let labels: Vec<usize> = (0..12).map(|i| i % k).collect();
                let stats = stats_for(&arena, &labels, k + 1); // last cluster empty
                for probe in 12..14 {
                    let v = arena.view(probe);
                    let (got_c, got_d) = best_insertion(&stats, &v).expect("non-empty stats");
                    let mut want_c = 0usize;
                    let mut want_d = f64::INFINITY;
                    for (c, stat) in stats.iter().enumerate() {
                        let d = stat.delta_j_add(&v);
                        if d < want_d {
                            want_d = d;
                            want_c = c;
                        }
                    }
                    assert_eq!(got_c, want_c, "m={m} k={k} probe={probe}");
                    assert_eq!(got_d.to_bits(), want_d.to_bits(), "m={m} k={k}");
                }
            }
        }
    }

    #[test]
    fn bounded_placement_matches_full_placement_bitwise() {
        // Well-separated clusters across both scan regimes (short rows and
        // dot3-batched rows): the bound must discard most candidates while
        // the winner and its delta stay bit-identical to the full scan.
        for m in [2usize, 32] {
            let data: Vec<UncertainObject> = (0..20)
                .map(|i| {
                    let center = (i % 5) as f64 * 100.0;
                    UncertainObject::new(
                        (0..m)
                            .map(|j| UnivariatePdf::normal(center + j as f64 * 0.1, 0.2))
                            .collect(),
                    )
                })
                .collect();
            let arena = MomentArena::from_objects(&data);
            let labels: Vec<usize> = (0..15).map(|i| i % 5).collect();
            let stats = stats_for(&arena, &labels, 5);
            let scale = fp_scale(&stats);
            let mut counters = PruneCounters::default();
            for probe in 15..20 {
                let v = arena.view(probe);
                let (full_c, full_d) = best_insertion(&stats, &v).unwrap();
                let (bnd_c, bnd_d) =
                    best_insertion_bounded(&stats, &v, scale, &mut counters).unwrap();
                assert_eq!(bnd_c, full_c, "m={m} probe={probe}");
                assert_eq!(bnd_d.to_bits(), full_d.to_bits(), "m={m} probe={probe}");
            }
            assert!(
                counters.placement_bypassed > 0,
                "separated clusters must let the bound discard candidates (m={m})"
            );
            assert_eq!(
                counters.placement_priced + counters.placement_bypassed,
                5 * 5,
                "every candidate is either priced or bypassed (m={m})"
            );
        }
    }

    #[test]
    fn tracked_edits_bump_versions_only_on_small_transitions() {
        let data = objects(8);
        let arena = MomentArena::from_objects(&data);
        let mut stats = vec![ClusterStats::empty(arena.dims()); 2];
        let mut totals = DriftTotals::default();
        let mut versions = [0u64, 0];
        // Growing cluster 0 from empty: sizes 0→1 and 1→2 are small.
        apply_tracked_insert(&mut stats, 0, &arena.view(0), &mut totals, &mut versions);
        apply_tracked_insert(&mut stats, 0, &arena.view(1), &mut totals, &mut versions);
        assert_eq!(versions, [2, 0]);
        // 2→3 and 3→4 are trackable: no bump anywhere.
        apply_tracked_insert(&mut stats, 0, &arena.view(2), &mut totals, &mut versions);
        apply_tracked_insert(&mut stats, 0, &arena.view(3), &mut totals, &mut versions);
        assert_eq!(versions, [2, 0]);
        // Removal 4→3 is trackable; 3→2 small? No: remove is small when the
        // post size drops below 2, i.e. pre-size n < 3. 4→3 and 3→2 keep
        // both sizes >= 2, 2→1 is small.
        apply_tracked_remove(&mut stats, 0, &arena.view(3), &mut totals, &mut versions);
        apply_tracked_remove(&mut stats, 0, &arena.view(2), &mut totals, &mut versions);
        assert_eq!(versions, [2, 0]);
        apply_tracked_remove(&mut stats, 0, &arena.view(1), &mut totals, &mut versions);
        assert_eq!(versions, [3, 0], "2→1 breaks the remove direction");
        // The untouched cluster's version never moved.
        assert_eq!(versions[1], 0);
    }

    #[test]
    fn shards_partition_the_cache() {
        let mut cache = PruneCache::new(10, 2);
        {
            let shards = cache.shards(4);
            assert_eq!(shards.len(), 3);
            assert_eq!(shards[0].entries.len(), 4);
            assert_eq!(shards[2].entries.len(), 2);
            assert_eq!(shards[1].base, 4);
        }
        cache.reset(3, 5);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.shards(8).len(), 1);
    }
}
