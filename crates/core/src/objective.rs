//! Cluster objective functions in closed form (Theorem 3, Corollary 1) and
//! the comparison identities of Propositions 2–3.
//!
//! [`ClusterStats`] holds the per-dimension sufficient statistics of a
//! cluster `C`:
//!
//! * `psi_j  = Σ_i (sigma^2)_j(o_i)`  (Theorem 3's `Ψ`),
//! * `phi_j  = Σ_i (mu_2)_j(o_i)`    (Theorem 3's `Φ`),
//! * `s_j    = Σ_i mu_j(o_i)`        (the *signed* mean sum; Theorem 3's
//!   `Υ_j` is `s_j^2`).
//!
//! Storing the raw sum instead of `Υ` itself is a deliberate deviation from
//! the literal text of Corollary 1, whose `sqrt(Υ)`-based update is undefined
//! for negative mean sums; the raw-sum updates are exact and branch-free and
//! produce identical `J` values (unit-tested).
//!
//! From these, every objective in the paper is O(m):
//!
//! * `J(C)    = Σ_j (psi_j/|C| + phi_j − s_j²/|C|)`          (Theorem 3),
//! * `J_UK(C) = Σ_j (phi_j − s_j²/|C|)`                       (Lemma 1),
//! * `J_MM(C) = J_UK(C)/|C|`                                  (Proposition 2),
//! * `Ĵ(C)    = 2 J_UK(C)`                                    (Proposition 3),
//!
//! and adding/removing one object is O(m) (Corollary 1), which is what gives
//! UCPC its `O(I k n m)` complexity (Proposition 5).
//!
//! # The scalar-aggregate delta-`J` kernel
//!
//! On top of the per-dimension vectors, [`ClusterStats`] incrementally
//! maintains the three scalar aggregates
//!
//! * `Ψ_tot = Σ_j psi_j`,
//! * `Φ_tot = Σ_j phi_j`,
//! * `S₂   = Σ_j s_j²`,
//!
//! which make every objective O(1) (`J = Ψ_tot/|C| + Φ_tot − S₂/|C|`) and
//! collapse each candidate relocation to closed-form scalars plus a single
//! fused dot product `⟨s, mu(o)⟩` over contiguous memory — see the
//! derivation in [`ucpc_uncertain::arena`]. The `delta_j_*` methods are this
//! kernel; the `*_after_add` / `*_after_remove` methods keep the original
//! three-sweep O(m) evaluation as the `naive` reference path that tests and
//! benches compare against.

use ucpc_uncertain::arena::{dot, MomentView};
use ucpc_uncertain::{Moments, UncertainObject};

/// Per-cluster sufficient statistics with O(m) add/remove, O(1) objective
/// evaluation, and the single-dot-product relocation kernel.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    psi: Vec<f64>,
    phi: Vec<f64>,
    mean_sum: Vec<f64>,
    size: usize,
    /// `Ψ_tot = Σ_j psi_j`, maintained incrementally.
    psi_tot: f64,
    /// `Φ_tot = Σ_j phi_j`, maintained incrementally.
    phi_tot: f64,
    /// `S₂ = Σ_j s_j²`, maintained incrementally via the kernel identity
    /// `Σ_j (s_j ± mu_j)² = S₂ ± 2⟨s, mu⟩ + Σ_j mu_j²`.
    s_sq_tot: f64,
    /// Monotone drift accumulators for the pruning bounds (see
    /// [`crate::pruning`]); grown only by [`Self::add_view_tracked`] /
    /// [`Self::remove_view_tracked`], so the plain relocation path pays
    /// nothing for them.
    drift: ClusterDrift,
}

/// Bookkeeping is invisible to equality: two statistics objects describing
/// the same cluster compare equal regardless of how many tracked relocations
/// each has witnessed.
impl PartialEq for ClusterStats {
    fn eq(&self, other: &Self) -> bool {
        self.psi == other.psi
            && self.phi == other.phi
            && self.mean_sum == other.mean_sum
            && self.size == other.size
            && self.psi_tot == other.psi_tot
            && self.phi_tot == other.phi_tot
            && self.s_sq_tot == other.s_sq_tot
    }
}

/// Per-cluster accumulated drift-bound coefficients: for each of the two
/// delta-`J` directions (add a candidate / remove a member), the running sums
/// of the constant, size-coupled and mean-coupled coefficients derived in
/// [`crate::pruning`]. All six sums are monotone non-decreasing within one
/// search, which lets per-object snapshots of them act as watermarks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterDrift {
    /// Add-direction constant term `Σ |T(C') − T(C)|`.
    pub add_const: f64,
    /// Add-direction coefficient of `q(o) = sigma²(o) + ‖mu(o)‖²`.
    pub add_size: f64,
    /// Add-direction coefficient of `2‖mu(o)‖`.
    pub add_mean: f64,
    /// Remove-direction constant term `Σ |U(C') − U(C)|`.
    pub rem_const: f64,
    /// Remove-direction coefficient of `q(o)`.
    pub rem_size: f64,
    /// Remove-direction coefficient of `2‖mu(o)‖`.
    pub rem_mean: f64,
}

/// `T(C) = (Ψ_tot − S₂) / (|C| (|C|+1))`, the cluster-only constant of the
/// add-direction delta (zero for an empty cluster).
fn t_term(size: usize, a: f64) -> f64 {
    if size == 0 {
        0.0
    } else {
        a / (size as f64 * (size + 1) as f64)
    }
}

/// `U(C) = (Ψ_tot − S₂) / (|C| (|C|−1))`, the cluster-only constant of the
/// remove-direction delta. Callers guarantee `size >= 2`.
fn u_term(size: usize, a: f64) -> f64 {
    a / (size as f64 * (size - 1) as f64)
}

/// `‖mu(o)·scale − s‖`, the un-normalized mean-sum displacement of a
/// tracked transition, expanded through the already-available scalars:
/// `scale²·Σmu² − 2·scale·⟨s, mu⟩ + ‖s‖²` (clamped against cancellation).
fn displacement(scale: f64, sum_mu_sq: f64, cross: f64, s_sq: f64) -> f64 {
    (scale * scale * sum_mu_sq - 2.0 * scale * cross + s_sq)
        .max(0.0)
        .sqrt()
}

impl ClusterStats {
    /// Empty cluster over `m` dimensions.
    pub fn empty(m: usize) -> Self {
        Self {
            psi: vec![0.0; m],
            phi: vec![0.0; m],
            mean_sum: vec![0.0; m],
            size: 0,
            psi_tot: 0.0,
            phi_tot: 0.0,
            s_sq_tot: 0.0,
            drift: ClusterDrift::default(),
        }
    }

    /// Builds statistics from a set of member objects.
    pub fn from_members<'a>(members: impl IntoIterator<Item = &'a UncertainObject>) -> Self {
        let mut iter = members.into_iter();
        let first = iter
            .next()
            .expect("from_members requires at least one object");
        let mut stats = Self::empty(first.dims());
        stats.add(first.moments());
        for o in iter {
            stats.add(o.moments());
        }
        stats
    }

    /// Number of dimensions `m`.
    pub fn dims(&self) -> usize {
        self.psi.len()
    }

    /// Cluster size `|C|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// `Ψ_j` values (sum of member variances per dimension).
    pub fn psi(&self) -> &[f64] {
        &self.psi
    }

    /// `Φ_j` values (sum of member second moments per dimension).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Signed mean sums `s_j = Σ_i mu_j(o_i)`; `Υ_j = s_j^2`.
    pub fn mean_sum(&self) -> &[f64] {
        &self.mean_sum
    }

    /// `Υ_j = (Σ_i mu_j(o_i))^2` as written in Theorem 3.
    pub fn upsilon(&self, j: usize) -> f64 {
        self.mean_sum[j] * self.mean_sum[j]
    }

    /// Adds one object (Corollary 1, `C+` direction). O(m).
    pub fn add(&mut self, o: &Moments) {
        self.add_view(&o.view());
    }

    /// Removes one member (Corollary 1, `C−` direction). O(m).
    ///
    /// The caller must only remove objects previously added; this is not
    /// checked beyond a size underflow panic.
    pub fn remove(&mut self, o: &Moments) {
        self.remove_view(&o.view());
    }

    /// Adds one object through a kernel view: one fused O(m) pass updates the
    /// per-dimension vectors and the `⟨s, mu⟩` cross term, then the scalar
    /// aggregates move by the view's precomputed scalars.
    pub fn add_view(&mut self, v: &MomentView<'_>) {
        self.add_view_impl(v);
    }

    /// [`Self::add_view`]'s body; returns the `⟨s_pre, mu(o)⟩` cross term
    /// the update already computes, which the drift-tracked wrapper reuses
    /// for the exact normalized-mean displacement.
    fn add_view_impl(&mut self, v: &MomentView<'_>) -> f64 {
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        // The ⟨s, mu(o)⟩ cross term goes through the dispatched SIMD kernel
        // — the same code path (and therefore the same bits) as the
        // scan-side `delta_j_*` evaluations and the drift-displacement
        // updates that reuse the returned value.
        let cross = dot(&self.mean_sum, v.mu);
        for j in 0..self.dims() {
            self.psi[j] += v.var[j];
            self.phi[j] += v.mu2[j];
            self.mean_sum[j] += v.mu[j];
        }
        self.psi_tot += v.sum_var;
        self.phi_tot += v.sum_mu2;
        self.s_sq_tot += 2.0 * cross + v.sum_mu_sq;
        self.size += 1;
        cross
    }

    /// Removes one member through a kernel view (see [`Self::add_view`]).
    pub fn remove_view(&mut self, v: &MomentView<'_>) {
        self.remove_view_impl(v);
    }

    /// [`Self::remove_view`]'s body; returns the `⟨s_post, mu(o)⟩` cross
    /// term (so `⟨s_pre, mu(o)⟩ = cross + Σ mu_j²`).
    fn remove_view_impl(&mut self, v: &MomentView<'_>) -> f64 {
        assert!(self.size > 0, "cannot remove from an empty cluster");
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        for j in 0..self.dims() {
            self.psi[j] -= v.var[j];
            self.phi[j] -= v.mu2[j];
            self.mean_sum[j] -= v.mu[j];
        }
        // ⟨s_post, mu(o)⟩ through the dispatched SIMD kernel, against the
        // already-updated mean sums.
        let cross = dot(&self.mean_sum, v.mu);
        self.psi_tot -= v.sum_var;
        self.phi_tot -= v.sum_mu2;
        // s' = s − mu, and Σ (s'_j)² = S₂ − 2⟨s', mu⟩ − Σ mu_j² with the
        // cross term taken against the *post-removal* mean sums.
        self.s_sq_tot -= 2.0 * cross + v.sum_mu_sq;
        self.size -= 1;
        if self.size == 0 {
            // Re-zero the aggregates so floating-point residue cannot leak
            // into a reused empty cluster.
            self.psi_tot = 0.0;
            self.phi_tot = 0.0;
            self.s_sq_tot = 0.0;
        }
        cross
    }

    /// One object's statistics as a standalone singleton aggregate — the
    /// unit the sharded layer ships as a `ClusterStats` delta. Merging a
    /// singleton into live statistics ([`Self::merge`]) performs exactly
    /// the arithmetic of [`Self::add_view`], so a replica applying shipped
    /// singletons in log order stays bit-identical to a node applying the
    /// views directly.
    pub fn from_view(v: &MomentView<'_>) -> Self {
        let mut s = Self::empty(v.dims());
        s.add_view(v);
        s
    }

    /// Merges another aggregate's contribution into this one — the
    /// commutative combine that makes `ClusterStats` distribute: a shard's
    /// contribution to a cluster is itself a `ClusterStats`, and the
    /// global statistics are the merge of the per-shard partials.
    ///
    /// Everything except `S₂` is a plain sum. `S₂ = Σ_j (Σ_i mu_j(o_i))²`
    /// mixes the partitions' mean sums, so the combine adds the cross
    /// term `2⟨s_self, s_other⟩` (through the dispatched SIMD kernel —
    /// the same code path as [`Self::add_view`], of which this is the
    /// generalization: merging [`Self::from_view`]'s singleton performs
    /// add_view's arithmetic operation for operation).
    ///
    /// The merge is commutative in the mathematical sense; like any
    /// floating-point reduction it is not *associative* at the bit level,
    /// which is why the sharded protocol fixes one global apply order (the
    /// replicated log) rather than merging opportunistically. Drift
    /// accumulators are bookkeeping outside the statistics proper and are
    /// left untouched.
    pub fn merge(&mut self, other: &ClusterStats) {
        debug_assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        // ⟨s_self, s_other⟩ against the pre-merge mean sums, mirroring
        // add_view's ⟨s_pre, mu(o)⟩.
        let cross = dot(&self.mean_sum, &other.mean_sum);
        for j in 0..self.dims() {
            self.psi[j] += other.psi[j];
            self.phi[j] += other.phi[j];
            self.mean_sum[j] += other.mean_sum[j];
        }
        self.psi_tot += other.psi_tot;
        self.phi_tot += other.phi_tot;
        self.s_sq_tot += 2.0 * cross + other.s_sq_tot;
        self.size += other.size;
    }

    /// Removes another aggregate's contribution — the inverse of
    /// [`Self::merge`], structured exactly like [`Self::remove_view`]
    /// (per-dimension subtraction first, cross term against the
    /// *post-removal* mean sums, re-zeroed scalar aggregates on reaching
    /// empty), so unmerging a [`Self::from_view`] singleton is
    /// bit-identical to `remove_view` of the same object.
    ///
    /// The caller must only unmerge contributions previously merged; this
    /// is not checked beyond a size underflow panic.
    pub fn unmerge(&mut self, other: &ClusterStats) {
        assert!(
            self.size >= other.size,
            "cannot unmerge a larger contribution"
        );
        debug_assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        for j in 0..self.dims() {
            self.psi[j] -= other.psi[j];
            self.phi[j] -= other.phi[j];
            self.mean_sum[j] -= other.mean_sum[j];
        }
        let cross = dot(&self.mean_sum, &other.mean_sum);
        self.psi_tot -= other.psi_tot;
        self.phi_tot -= other.phi_tot;
        self.s_sq_tot -= 2.0 * cross + other.s_sq_tot;
        self.size -= other.size;
        if self.size == 0 {
            // Same residue discipline as remove_view: a reused empty
            // cluster starts from exact zeros.
            self.psi_tot = 0.0;
            self.phi_tot = 0.0;
            self.s_sq_tot = 0.0;
        }
    }

    /// Adds one object like [`Self::add_view`] while accumulating the drift
    /// bounds of [`crate::pruning`]. Returns `true` when the transition is
    /// "small" (a cluster size below 2 before or after), in which case the
    /// remove-direction coefficients could not be soundly accumulated and
    /// the caller must invalidate the cache entries rooted in this cluster
    /// (bump its per-cluster version — the add-direction coefficients are
    /// accumulated unconditionally and stay sound, which is what makes the
    /// surgical invalidation of [`crate::pruning`] exact).
    pub fn add_view_tracked(&mut self, v: &MomentView<'_>) -> bool {
        let n = self.size;
        let a_pre = self.psi_tot - self.s_sq_tot;
        let s_sq_pre = self.s_sq_tot;
        // ⟨s_pre, mu(o)⟩, computed inside the update it piggybacks on.
        let cross = self.add_view_impl(v);
        let a_post = self.psi_tot - self.s_sq_tot;
        let w = |scale: f64| displacement(scale, v.sum_mu_sq, cross, s_sq_pre);

        // Add direction (denominators n+1 → n+2): the normalized mean moves
        // by exactly ‖mu(o)·(n+1) − s‖ / ((n+1)(n+2)).
        let inv_pre = 1.0 / (n + 1) as f64;
        let inv_post = 1.0 / (n + 2) as f64;
        self.drift.add_const += (t_term(n + 1, a_post) - t_term(n, a_pre)).abs();
        self.drift.add_size += inv_pre - inv_post;
        self.drift.add_mean += w((n + 1) as f64) * (inv_pre * inv_post);

        // Remove direction (denominators n−1 → n): needs both sizes >= 2.
        if n < 2 {
            return true;
        }
        let rinv_pre = 1.0 / (n - 1) as f64;
        let rinv_post = 1.0 / n as f64;
        self.drift.rem_const += (u_term(n + 1, a_post) - u_term(n, a_pre)).abs();
        self.drift.rem_size += rinv_pre - rinv_post;
        self.drift.rem_mean += w((n - 1) as f64) * (rinv_pre * rinv_post);
        false
    }

    /// Removes one member like [`Self::remove_view`] while accumulating the
    /// drift bounds of [`crate::pruning`]; same `true` ⇒ version-bump
    /// contract as [`Self::add_view_tracked`].
    pub fn remove_view_tracked(&mut self, v: &MomentView<'_>) -> bool {
        let n = self.size;
        let a_pre = self.psi_tot - self.s_sq_tot;
        let s_sq_pre = self.s_sq_tot;
        // remove_view's cross is ⟨s_post, mu(o)⟩; shift back to s_pre.
        let cross = self.remove_view_impl(v) + v.sum_mu_sq;
        let a_post = self.psi_tot - self.s_sq_tot;
        let w = |scale: f64| displacement(scale, v.sum_mu_sq, cross, s_sq_pre);

        // Add direction (denominators n+1 → n): exact displacement
        // ‖s − mu(o)·(n+1)‖ / (n(n+1)); valid down to emptying the cluster.
        let inv_pre = 1.0 / (n + 1) as f64;
        let inv_post = 1.0 / n as f64;
        self.drift.add_const += (t_term(n - 1, a_post) - t_term(n, a_pre)).abs();
        self.drift.add_size += inv_post - inv_pre;
        self.drift.add_mean += w((n + 1) as f64) * (inv_pre * inv_post);

        // Remove direction (denominators n−1 → n−2): needs both sizes >= 2.
        if n < 3 {
            return true;
        }
        let rinv_pre = 1.0 / (n - 1) as f64;
        let rinv_post = 1.0 / (n - 2) as f64;
        self.drift.rem_const += (u_term(n - 1, a_post) - u_term(n, a_pre)).abs();
        self.drift.rem_size += rinv_post - rinv_pre;
        self.drift.rem_mean += w((n - 1) as f64) * (rinv_pre * rinv_post);
        false
    }

    /// The accumulated drift-bound coefficients (see [`crate::pruning`]).
    pub fn drift(&self) -> ClusterDrift {
        self.drift
    }

    /// A magnitude scale for the cluster's aggregates, used to size the
    /// floating-point safety slack of the pruning bounds: cancellation noise
    /// in a delta-`J` evaluation is proportional to the largest aggregate
    /// the subtraction passes through.
    pub fn magnitude(&self) -> f64 {
        self.psi_tot.abs() + self.phi_tot.abs() + self.s_sq_tot.abs()
    }

    /// The UCPC objective `J(C)` of Theorem 3, in scalar-aggregate form:
    /// `Ψ_tot/|C| + Φ_tot − S₂/|C|`. O(1); zero for an empty cluster.
    pub fn j(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let inv = 1.0 / self.size as f64;
        self.psi_tot * inv + self.phi_tot - self.s_sq_tot * inv
    }

    /// `J(C)` recomputed by the original per-dimension sweep — the naive
    /// reference for the scalar-aggregate [`Self::j`].
    pub fn j_naive(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let inv = 1.0 / self.size as f64;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            acc += self.psi[j] * inv + self.phi[j] - self.mean_sum[j] * self.mean_sum[j] * inv;
        }
        acc
    }

    /// The UK-means objective `J_UK(C)` in Lemma 1's closed form, scalar
    /// aggregates: `Φ_tot − S₂/|C|`. O(1); zero for an empty cluster.
    pub fn j_uk(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.phi_tot - self.s_sq_tot / self.size as f64
    }

    /// `J_UK(C)` recomputed by the original per-dimension sweep — the naive
    /// reference for the scalar-aggregate [`Self::j_uk`].
    pub fn j_uk_naive(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let inv = 1.0 / self.size as f64;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            acc += self.phi[j] - self.mean_sum[j] * self.mean_sum[j] * inv;
        }
        acc
    }

    /// The MMVar objective `J_MM(C) = sigma^2(C_MM)`; by Proposition 2 this
    /// equals `J_UK(C)/|C|`. Zero for an empty cluster.
    pub fn j_mm(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.j_uk() / self.size as f64
    }

    /// The mixed objective `Ĵ(C)` of Eq. (12); by Proposition 3 it equals
    /// `2 J_UK(C)`.
    pub fn j_hat(&self) -> f64 {
        2.0 * self.j_uk()
    }

    /// Objective change `J(C ∪ {o}) − J(C)` evaluated by the
    /// scalar-aggregate kernel: one fused dot product `⟨s, mu(o)⟩` plus O(1)
    /// scalar algebra (see [`ucpc_uncertain::arena`] for the derivation; the
    /// dot product is dispatched to a SIMD backend by
    /// [`ucpc_uncertain::simd`]).
    ///
    /// ```
    /// use ucpc_core::ClusterStats;
    /// use ucpc_uncertain::{MomentArena, Moments};
    ///
    /// let arena = MomentArena::from_moments([
    ///     &Moments::from_mu_mu2(vec![0.0, 1.0], vec![0.5, 2.0]),
    ///     &Moments::from_mu_mu2(vec![1.0, 0.0], vec![1.5, 0.25]),
    ///     &Moments::from_mu_mu2(vec![5.0, 4.0], vec![26.0, 17.0]),
    /// ]);
    /// let mut c = ClusterStats::empty(2);
    /// c.add_view(&arena.view(0));
    /// c.add_view(&arena.view(1));
    ///
    /// // Corollary 1 in dot-product form: the objective change of adding
    /// // o_2 costs one fused ⟨s, mu(o_2)⟩ — no sweep over the cluster.
    /// let predicted = c.j() + c.delta_j_add(&arena.view(2));
    ///
    /// // It must equal J of the cluster rebuilt with o_2 from scratch.
    /// let mut full = c.clone();
    /// full.add_view(&arena.view(2));
    /// assert!((predicted - full.j()).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn delta_j_add(&self, v: &MomentView<'_>) -> f64 {
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        self.delta_j_add_with_cross(v, dot(&self.mean_sum, v.mu))
    }

    /// [`Self::delta_j_add`] with the `⟨s, mu(o)⟩` cross term supplied by
    /// the caller — the hook that lets a candidate scan batch several
    /// clusters' cross terms into one fused [`ucpc_uncertain::simd::dot3`]
    /// pass over the object's `mu` row. `cross` must be the dot product of
    /// [`Self::mean_sum`] with `v.mu` computed by the dispatched kernel;
    /// because `dot3`'s components are bit-identical to single `dot` calls,
    /// batched and unbatched scans produce identical deltas.
    #[inline]
    pub fn delta_j_add_with_cross(&self, v: &MomentView<'_>, cross: f64) -> f64 {
        self.delta_j_add_from_parts(v.sum_var, v.sum_mu_sq, v.sum_mu2, cross)
    }

    /// [`Self::delta_j_add_with_cross`] with the object reduced to the three
    /// scalars the formula actually reads (`Σvar`, `‖mu‖²`, `Σμ₂`) — the
    /// hook for batch pricing loops that stage those scalars once per
    /// arrival instead of materializing a [`MomentView`] per (cluster,
    /// arrival) pair. This *is* the Corollary-1 delta: every other add-side
    /// delta entry point delegates here, so all of them are bit-identical
    /// by construction.
    #[inline]
    pub fn delta_j_add_from_parts(
        &self,
        sum_var: f64,
        sum_mu_sq: f64,
        sum_mu2: f64,
        cross: f64,
    ) -> f64 {
        self.add_pricer().price(sum_var, sum_mu_sq, sum_mu2, cross)
    }

    /// The cluster's add-side pricing constants, hoisted for a batch loop:
    /// `1/(|C|+1)` and the base objective `J(C)` cost one division each and
    /// are identical for every arrival priced against the same statistics,
    /// so a `B × k` pricing pass pays them once per cluster instead of once
    /// per (cluster, arrival). [`Self::delta_j_add_from_parts`] delegates to
    /// [`AddPricer::price`], keeping every add-side delta bit-identical by
    /// construction.
    #[inline]
    pub fn add_pricer(&self) -> AddPricer {
        AddPricer {
            new_inv: 1.0 / (self.size + 1) as f64,
            psi_tot: self.psi_tot,
            s_sq_tot: self.s_sq_tot,
            phi_tot: self.phi_tot,
            j_base: self.j(),
        }
    }

    /// An exact lower bound on [`Self::delta_j_add`] that needs **no dot
    /// product**: [`Self::delta_j_add_with_cross`] is strictly decreasing in
    /// the cross term (its coefficient is `−2/(|C|+1)`), and Cauchy–Schwarz
    /// caps the cross term at `⟨s, mu(o)⟩ ≤ ‖s‖·‖mu(o)‖ = sqrt(S₂)·‖mu(o)‖`,
    /// so evaluating the delta at that cap bounds the true value from below.
    /// O(1) per cluster; the bounded placement scan
    /// ([`crate::pruning::best_insertion_bounded`]) uses it to discard
    /// clusters that provably cannot win the placement argmin, guarded by
    /// [`crate::pruning::slack`] against floating-point rounding.
    #[inline]
    pub fn delta_j_add_lower_bound(&self, v: &MomentView<'_>) -> f64 {
        let cross_max = self.s_sq_tot.max(0.0).sqrt() * v.norm_mu;
        self.delta_j_add_with_cross(v, cross_max)
    }

    /// The incrementally-maintained scalar aggregates
    /// `(Ψ_tot, Φ_tot, S₂)` — raw state for the snapshot codec.
    pub(crate) fn scalar_aggregates(&self) -> (f64, f64, f64) {
        (self.psi_tot, self.phi_tot, self.s_sq_tot)
    }

    /// Reassembles statistics from raw serialized state (snapshot restore).
    /// Nothing is re-derived: the parts are installed verbatim, so a value
    /// round-tripped through [`Self::scalar_aggregates`] and the public
    /// accessors is bit-identical to the original.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        psi: Vec<f64>,
        phi: Vec<f64>,
        mean_sum: Vec<f64>,
        size: usize,
        psi_tot: f64,
        phi_tot: f64,
        s_sq_tot: f64,
        drift: ClusterDrift,
    ) -> Self {
        debug_assert_eq!(psi.len(), phi.len());
        debug_assert_eq!(psi.len(), mean_sum.len());
        Self {
            psi,
            phi,
            mean_sum,
            size,
            psi_tot,
            phi_tot,
            s_sq_tot,
            drift,
        }
    }

    /// Objective change `J(C ∖ {o}) − J(C)` evaluated by the
    /// scalar-aggregate kernel. `o` must be a member; `−J(C)` when removing
    /// the last member.
    ///
    /// ```
    /// use ucpc_core::ClusterStats;
    /// use ucpc_uncertain::{MomentArena, Moments};
    ///
    /// let arena = MomentArena::from_moments([
    ///     &Moments::from_mu_mu2(vec![0.0], vec![1.0]),
    ///     &Moments::from_mu_mu2(vec![2.0], vec![4.5]),
    ///     &Moments::from_mu_mu2(vec![-1.0], vec![1.25]),
    /// ]);
    /// let mut c = ClusterStats::empty(1);
    /// for i in 0..3 {
    ///     c.add_view(&arena.view(i));
    /// }
    ///
    /// // One dot product predicts J(C ∖ {o_1}) − J(C) (Corollary 1) ...
    /// let predicted = c.j() + c.delta_j_remove(&arena.view(1));
    ///
    /// // ... matching the cluster rebuilt without o_1.
    /// let mut rest = ClusterStats::empty(1);
    /// rest.add_view(&arena.view(0));
    /// rest.add_view(&arena.view(2));
    /// assert!((predicted - rest.j()).abs() < 1e-12);
    ///
    /// // Removing the last member of a singleton is −J by definition.
    /// let mut single = ClusterStats::empty(1);
    /// single.add_view(&arena.view(0));
    /// assert_eq!(single.delta_j_remove(&arena.view(0)), -single.j());
    /// ```
    #[inline]
    pub fn delta_j_remove(&self, v: &MomentView<'_>) -> f64 {
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        assert!(self.size > 0, "cannot remove from an empty cluster");
        if self.size == 1 {
            return -self.j();
        }
        let cross = dot(&self.mean_sum, v.mu);
        let new_inv = 1.0 / (self.size - 1) as f64;
        let psi = self.psi_tot - v.sum_var;
        // ⟨s − mu, mu⟩ = ⟨s, mu⟩ − Σ mu², so against the pre-removal sums:
        // S₂' = S₂ − 2⟨s, mu⟩ + Σ mu².
        let s_sq = self.s_sq_tot - 2.0 * cross + v.sum_mu_sq;
        let j_new = (psi - s_sq) * new_inv + self.phi_tot - v.sum_mu2;
        j_new - self.j()
    }

    /// `J_UK(C ∪ {o}) − J_UK(C)` via the kernel (Lemma 1 analogue of
    /// [`Self::delta_j_add`]).
    #[inline]
    pub fn delta_j_uk_add(&self, v: &MomentView<'_>) -> f64 {
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        let cross = dot(&self.mean_sum, v.mu);
        let s_sq = self.s_sq_tot + 2.0 * cross + v.sum_mu_sq;
        let j_new = self.phi_tot + v.sum_mu2 - s_sq / (self.size + 1) as f64;
        j_new - self.j_uk()
    }

    /// `J_UK(C ∖ {o}) − J_UK(C)` via the kernel. `o` must be a member;
    /// `−J_UK(C)` when removing the last member.
    #[inline]
    pub fn delta_j_uk_remove(&self, v: &MomentView<'_>) -> f64 {
        debug_assert_eq!(v.dims(), self.dims(), "dimension mismatch");
        assert!(self.size > 0, "cannot remove from an empty cluster");
        if self.size == 1 {
            return -self.j_uk();
        }
        let cross = dot(&self.mean_sum, v.mu);
        let s_sq = self.s_sq_tot - 2.0 * cross + v.sum_mu_sq;
        let j_new = self.phi_tot - v.sum_mu2 - s_sq / (self.size - 1) as f64;
        j_new - self.j_uk()
    }

    /// `J_MM(C ∪ {o}) − J_MM(C)` via the kernel (Proposition 2:
    /// `J_MM = J_UK/|C|`).
    #[inline]
    pub fn delta_j_mm_add(&self, v: &MomentView<'_>) -> f64 {
        let new_size = (self.size + 1) as f64;
        (self.j_uk() + self.delta_j_uk_add(v)) / new_size - self.j_mm()
    }

    /// `J_MM(C ∖ {o}) − J_MM(C)` via the kernel. `−J_MM(C)` when removing
    /// the last member.
    #[inline]
    pub fn delta_j_mm_remove(&self, v: &MomentView<'_>) -> f64 {
        if self.size <= 1 {
            return -self.j_mm();
        }
        let new_size = (self.size - 1) as f64;
        (self.j_uk() + self.delta_j_uk_remove(v)) / new_size - self.j_mm()
    }

    /// `J` of the cluster with `o` added, computed by the original three
    /// per-dimension sweeps (Corollary 1, Eq. 15). Kept as the `naive`
    /// reference path for the kernel above; tests and the
    /// `relocation_kernel` bench compare the two.
    pub fn j_after_add(&self, o: &Moments) -> f64 {
        debug_assert_eq!(o.dims(), self.dims(), "dimension mismatch");
        let n = (self.size + 1) as f64;
        let inv = 1.0 / n;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let psi = self.psi[j] + o.variance()[j];
            let phi = self.phi[j] + o.mu2()[j];
            let s = self.mean_sum[j] + o.mu()[j];
            acc += psi * inv + phi - s * s * inv;
        }
        acc
    }

    /// `J` of the cluster with member `o` removed, computed in O(m) without
    /// mutating the statistics (Corollary 1, Eq. 16). Zero if the cluster
    /// would become empty.
    pub fn j_after_remove(&self, o: &Moments) -> f64 {
        debug_assert_eq!(o.dims(), self.dims(), "dimension mismatch");
        assert!(self.size > 0, "cannot remove from an empty cluster");
        if self.size == 1 {
            return 0.0;
        }
        let n = (self.size - 1) as f64;
        let inv = 1.0 / n;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let psi = self.psi[j] - o.variance()[j];
            let phi = self.phi[j] - o.mu2()[j];
            let s = self.mean_sum[j] - o.mu()[j];
            acc += psi * inv + phi - s * s * inv;
        }
        acc
    }

    /// `J_UK` of the cluster with `o` added, in O(m) (the UK-means analogue
    /// of Corollary 1; MMVar's local search divides it by the new size).
    pub fn j_uk_after_add(&self, o: &Moments) -> f64 {
        debug_assert_eq!(o.dims(), self.dims(), "dimension mismatch");
        let inv = 1.0 / (self.size + 1) as f64;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let phi = self.phi[j] + o.mu2()[j];
            let s = self.mean_sum[j] + o.mu()[j];
            acc += phi - s * s * inv;
        }
        acc
    }

    /// `J_UK` of the cluster with member `o` removed, in O(m). Zero if the
    /// cluster would become empty.
    pub fn j_uk_after_remove(&self, o: &Moments) -> f64 {
        debug_assert_eq!(o.dims(), self.dims(), "dimension mismatch");
        assert!(self.size > 0, "cannot remove from an empty cluster");
        if self.size == 1 {
            return 0.0;
        }
        let inv = 1.0 / (self.size - 1) as f64;
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let phi = self.phi[j] - o.mu2()[j];
            let s = self.mean_sum[j] - o.mu()[j];
            acc += phi - s * s * inv;
        }
        acc
    }

    /// `J_MM` of the cluster with `o` added, in O(m) (Proposition 2 form).
    pub fn j_mm_after_add(&self, o: &Moments) -> f64 {
        self.j_uk_after_add(o) / (self.size + 1) as f64
    }

    /// `J_MM` of the cluster with member `o` removed, in O(m). Zero if the
    /// cluster would become empty.
    pub fn j_mm_after_remove(&self, o: &Moments) -> f64 {
        if self.size <= 1 {
            return 0.0;
        }
        self.j_uk_after_remove(o) / (self.size - 1) as f64
    }

    /// The UK-means centroid (Eq. 7) — the average of member expected values;
    /// also `mu` of both the MMVar mixture centroid (Lemma 2) and the
    /// U-centroid (Lemma 5).
    pub fn centroid(&self) -> Vec<f64> {
        assert!(self.size > 0, "centroid of an empty cluster is undefined");
        let inv = 1.0 / self.size as f64;
        self.mean_sum.iter().map(|&s| s * inv).collect()
    }

    /// Moments of the MMVar mixture centroid `C_MM` (Lemma 2):
    /// `mu = (1/|C|) Σ mu(o)`, `mu_2 = (1/|C|) Σ mu_2(o)`.
    pub fn mixture_moments(&self) -> Moments {
        assert!(self.size > 0, "mixture of an empty cluster is undefined");
        let inv = 1.0 / self.size as f64;
        Moments::from_mu_mu2(
            self.mean_sum.iter().map(|&s| s * inv).collect(),
            self.phi.iter().map(|&p| p * inv).collect(),
        )
    }

    /// The U-centroid variance of Theorem 2, `(1/|C|^2) Σ_i sigma^2(o_i)`:
    /// the quantity Section 4.2.1 proves *insufficient* as a compactness
    /// criterion (kept for the ablation benchmarks).
    pub fn ucentroid_variance(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let total_psi: f64 = self.psi.iter().sum();
        total_psi / (self.size * self.size) as f64
    }
}

/// Per-cluster constants of the Corollary-1 add delta, captured once by
/// [`ClusterStats::add_pricer`] so a batch pricing loop pays the two
/// divisions (`1/(|C|+1)` and the one inside `J(C)`) per cluster rather
/// than per (cluster, arrival). [`AddPricer::price`] is *the*
/// implementation of the delta — [`ClusterStats::delta_j_add_from_parts`]
/// (and through it every add-side entry point) delegates here.
#[derive(Debug, Clone, Copy)]
pub struct AddPricer {
    new_inv: f64,
    psi_tot: f64,
    s_sq_tot: f64,
    phi_tot: f64,
    j_base: f64,
}

impl AddPricer {
    /// Objective change of adding an arrival reduced to its three scalars
    /// plus the `⟨s, mu⟩` cross term — operation-for-operation the
    /// Corollary-1 formula of [`ClusterStats::delta_j_add_from_parts`], so
    /// hoisted and unhoisted evaluation produce identical bits.
    #[inline]
    pub fn price(&self, sum_var: f64, sum_mu_sq: f64, sum_mu2: f64, cross: f64) -> f64 {
        let psi = self.psi_tot + sum_var;
        let s_sq = self.s_sq_tot + 2.0 * cross + sum_mu_sq;
        let j_new = (psi - s_sq) * self.new_inv + self.phi_tot + sum_mu2;
        j_new - self.j_base
    }
}

/// Total objective `Σ_C J(C)` of a candidate clustering described by
/// per-cluster statistics.
pub fn total_objective(stats: &[ClusterStats]) -> f64 {
    stats.iter().map(ClusterStats::j).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucentroid::UCentroid;
    use ucpc_uncertain::distance::expected_sq_distance_to_point;
    use ucpc_uncertain::{UncertainObject, UnivariatePdf};

    fn objects() -> Vec<UncertainObject> {
        vec![
            UncertainObject::new(vec![
                UnivariatePdf::normal(0.0, 1.0),
                UnivariatePdf::uniform_centered(2.0, 1.0),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::normal(3.0, 0.5),
                UnivariatePdf::uniform_centered(-1.0, 2.0),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::normal(-2.0, 2.0),
                UnivariatePdf::uniform_centered(0.5, 0.5),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::exponential_with_mean(1.0, 2.0),
                UnivariatePdf::normal(4.0, 0.25),
            ]),
        ]
    }

    /// Brute-force J(C) = Σ_o ÊD(o, U-centroid) via Lemma 3 on explicit
    /// U-centroid moments.
    fn j_bruteforce(members: &[&UncertainObject]) -> f64 {
        let c = UCentroid::from_cluster(members);
        members
            .iter()
            .map(|o| {
                ucpc_uncertain::distance::expected_sq_distance_from_moments(
                    o.mu(),
                    o.mu2(),
                    c.mu(),
                    c.mu2(),
                )
            })
            .sum()
    }

    #[test]
    fn theorem_3_closed_form_matches_direct_sum() {
        let objs = objects();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let stats = ClusterStats::from_members(objs.iter());
        assert!(
            (stats.j() - j_bruteforce(&refs)).abs() < 1e-9,
            "Theorem 3: stats J {} vs brute force {}",
            stats.j(),
            j_bruteforce(&refs)
        );
    }

    #[test]
    fn theorem_3_second_identity() {
        // J(C) = (1/|C|) Σ sigma^2(o_i) + J_UK(C).
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        let var_sum: f64 = objs.iter().map(|o| o.total_variance()).sum();
        let want = var_sum / objs.len() as f64 + stats.j_uk();
        assert!((stats.j() - want).abs() < 1e-9);
    }

    #[test]
    fn lemma_1_matches_direct_ukmeans_objective() {
        // J_UK(C) = Σ_o ED(o, centroid) with the Eq. (8) closed form.
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        let c = stats.centroid();
        let direct: f64 = objs
            .iter()
            .map(|o| expected_sq_distance_to_point(o, &c))
            .sum();
        assert!(
            (stats.j_uk() - direct).abs() < 1e-9,
            "Lemma 1: {} vs {}",
            stats.j_uk(),
            direct
        );
    }

    #[test]
    fn proposition_2_jmm_is_juk_over_size() {
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        assert!((stats.j_mm() - stats.j_uk() / objs.len() as f64).abs() < 1e-12);
        // And J_MM is literally the mixture centroid's variance (Eq. 11).
        let mix = stats.mixture_moments();
        assert!((stats.j_mm() - mix.total_variance()).abs() < 1e-9);
    }

    #[test]
    fn proposition_3_jhat_is_twice_juk() {
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        assert!((stats.j_hat() - 2.0 * stats.j_uk()).abs() < 1e-12);
        assert!(
            (stats.j_hat() - 2.0 * objs.len() as f64 * stats.j_mm()).abs() < 1e-9,
            "Proposition 3 chain: Ĵ = 2|C| J_MM"
        );
    }

    #[test]
    fn corollary_1_add_matches_rebuild() {
        let objs = objects();
        let stats = ClusterStats::from_members(objs[..3].iter());
        let predicted = stats.j_after_add(objs[3].moments());
        let rebuilt = ClusterStats::from_members(objs.iter()).j();
        assert!(
            (predicted - rebuilt).abs() < 1e-9,
            "Corollary 1 (add): {predicted} vs {rebuilt}"
        );
    }

    #[test]
    fn corollary_1_remove_matches_rebuild() {
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        let predicted = stats.j_after_remove(objs[1].moments());
        let rebuilt = ClusterStats::from_members(
            objs.iter()
                .enumerate()
                .filter(|&(i, _)| i != 1)
                .map(|(_, o)| o),
        )
        .j();
        assert!(
            (predicted - rebuilt).abs() < 1e-9,
            "Corollary 1 (remove): {predicted} vs {rebuilt}"
        );
    }

    #[test]
    fn incremental_juk_and_jmm_match_rebuild() {
        let objs = objects();
        let partial = ClusterStats::from_members(objs[..3].iter());
        let full = ClusterStats::from_members(objs.iter());
        assert!((partial.j_uk_after_add(objs[3].moments()) - full.j_uk()).abs() < 1e-9);
        assert!((partial.j_mm_after_add(objs[3].moments()) - full.j_mm()).abs() < 1e-9);
        assert!((full.j_uk_after_remove(objs[3].moments()) - partial.j_uk()).abs() < 1e-9);
        assert!((full.j_mm_after_remove(objs[3].moments()) - partial.j_mm()).abs() < 1e-9);
    }

    #[test]
    fn add_remove_round_trip_restores_stats() {
        let objs = objects();
        let mut stats = ClusterStats::from_members(objs[..2].iter());
        let before = stats.clone();
        stats.add(objs[2].moments());
        stats.remove(objs[2].moments());
        assert_eq!(stats.size(), before.size());
        for j in 0..stats.dims() {
            assert!((stats.psi()[j] - before.psi()[j]).abs() < 1e-9);
            assert!((stats.phi()[j] - before.phi()[j]).abs() < 1e-9);
            assert!((stats.mean_sum()[j] - before.mean_sum()[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_mean_sums_are_handled() {
        // The published Corollary-1 update uses sqrt(Υ), undefined for
        // negative sums; storing the raw sum must make this exact.
        let objs = [
            UncertainObject::new(vec![UnivariatePdf::normal(-5.0, 1.0)]),
            UncertainObject::new(vec![UnivariatePdf::normal(-3.0, 0.5)]),
        ];
        let stats = ClusterStats::from_members(objs.iter());
        assert!(stats.mean_sum()[0] < 0.0);
        let extra = UncertainObject::new(vec![UnivariatePdf::normal(-1.0, 0.2)]);
        let predicted = stats.j_after_add(extra.moments());
        let rebuilt = ClusterStats::from_members(objs.iter().chain(std::iter::once(&extra))).j();
        assert!((predicted - rebuilt).abs() < 1e-9);
    }

    #[test]
    fn singleton_and_empty_edge_cases() {
        let objs = objects();
        let mut stats = ClusterStats::empty(2);
        assert_eq!(stats.j(), 0.0);
        stats.add(objs[0].moments());
        // Singleton: J = sigma^2(o) + J_UK(singleton) = sigma^2 + sigma^2... no:
        // J_UK(singleton) = sigma^2(o) (distance of o to its own mean), and
        // (1/1) Σ sigma^2 = sigma^2, so J = 2 sigma^2(o).
        assert!((stats.j() - 2.0 * objs[0].total_variance()).abs() < 1e-9);
        assert_eq!(stats.j_after_remove(objs[0].moments()), 0.0);
    }

    #[test]
    fn ucentroid_variance_matches_theorem_2() {
        let objs = objects();
        let stats = ClusterStats::from_members(objs.iter());
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        assert!((stats.ucentroid_variance() - c.variance()).abs() < 1e-9);
    }

    #[test]
    fn proposition_1_scenario() {
        // Two clusters engineered per the Proposition-1 proof sketch: same
        // size, same Σ mu2, same Σ mu per dim, different Σ mu^2 -> equal J_UK
        // but different variance sums.
        // Cluster A: means {0, 2}; Cluster B: means {1, 1}. Equal mean sums.
        // Give both total mu2 = 6 per object pair by tuning variances.
        // Object mu2 = mu^2 + var.
        // Cluster A: means {0, 2}, mu2 {1, 5} -> Σ mu = 2, Σ mu2 = 6.
        // Cluster B: means {1, 1}, sds {sqrt(3), 1} -> mu2 {4, 2}: same sums.
        let a = [
            UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0)]),
            UncertainObject::new(vec![UnivariatePdf::normal(2.0, 1.0)]),
        ];
        let b = [
            UncertainObject::new(vec![UnivariatePdf::normal(1.0, 3.0_f64.sqrt())]),
            UncertainObject::new(vec![UnivariatePdf::normal(1.0, 1.0)]),
        ];
        let sa = ClusterStats::from_members(a.iter());
        let sb = ClusterStats::from_members(b.iter());
        assert!((sa.phi()[0] - sb.phi()[0]).abs() < 1e-12, "equal Σ mu2");
        assert!(
            (sa.mean_sum()[0] - sb.mean_sum()[0]).abs() < 1e-12,
            "equal Σ mu"
        );
        assert!(
            (sa.j_uk() - sb.j_uk()).abs() < 1e-12,
            "Proposition 1: equal J_UK"
        );
        let var_a: f64 = a.iter().map(|o| o.total_variance()).sum();
        let var_b: f64 = b.iter().map(|o| o.total_variance()).sum();
        assert!(
            (var_a - var_b).abs() > 0.5,
            "…despite different cluster variances ({var_a} vs {var_b})"
        );
        // And the UCPC objective *does* separate them (Theorem 3 uses Ψ).
        assert!(
            (sa.j() - sb.j()).abs() > 0.1,
            "J distinguishes the clusters"
        );
    }

    /// Asserts two aggregates are equal bit for bit (stricter than
    /// `PartialEq`, which treats `-0.0 == 0.0`).
    fn assert_bits(a: &ClusterStats, b: &ClusterStats) {
        assert_eq!(a.size, b.size);
        for j in 0..a.dims() {
            assert_eq!(a.psi[j].to_bits(), b.psi[j].to_bits(), "psi[{j}]");
            assert_eq!(a.phi[j].to_bits(), b.phi[j].to_bits(), "phi[{j}]");
            assert_eq!(
                a.mean_sum[j].to_bits(),
                b.mean_sum[j].to_bits(),
                "mean_sum[{j}]"
            );
        }
        assert_eq!(a.psi_tot.to_bits(), b.psi_tot.to_bits(), "psi_tot");
        assert_eq!(a.phi_tot.to_bits(), b.phi_tot.to_bits(), "phi_tot");
        assert_eq!(a.s_sq_tot.to_bits(), b.s_sq_tot.to_bits(), "s_sq_tot");
    }

    #[test]
    fn merging_singletons_in_order_is_bitwise_add_view() {
        let objs = objects();
        let arena = ucpc_uncertain::MomentArena::from_objects(&objs);
        let mut direct = ClusterStats::empty(arena.dims());
        let mut merged = ClusterStats::empty(arena.dims());
        for i in 0..arena.len() {
            let v = arena.view(i);
            direct.add_view(&v);
            merged.merge(&ClusterStats::from_view(&v));
            assert_bits(&direct, &merged);
        }
    }

    #[test]
    fn unmerging_a_singleton_is_bitwise_remove_view() {
        let objs = objects();
        let arena = ucpc_uncertain::MomentArena::from_objects(&objs);
        let mut direct = ClusterStats::empty(arena.dims());
        let mut unmerged = ClusterStats::empty(arena.dims());
        for i in 0..arena.len() {
            direct.add_view(&arena.view(i));
            unmerged.add_view(&arena.view(i));
        }
        // Remove down to empty in an arbitrary order; both paths must
        // agree at every step, including the re-zeroed empty state.
        for &i in &[2usize, 0, 3, 1] {
            let v = arena.view(i);
            direct.remove_view(&v);
            unmerged.unmerge(&ClusterStats::from_view(&v));
            assert_bits(&direct, &unmerged);
        }
        assert_eq!(direct.size, 0);
        assert_eq!(direct.s_sq_tot.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn shard_partials_merge_to_the_global_aggregate() {
        // Two shards each hold half the cluster; merging the partials
        // reproduces the global statistics mathematically (the bit-level
        // order sensitivity is exactly why the sharded protocol replays
        // one global log instead of merging opportunistically).
        let objs = objects();
        let global = ClusterStats::from_members(objs.iter());
        let mut shard0 = ClusterStats::from_members(objs[..2].iter());
        let shard1 = ClusterStats::from_members(objs[2..].iter());
        shard0.merge(&shard1);
        assert_eq!(shard0.size, global.size);
        assert!((shard0.j() - global.j()).abs() < 1e-9);
        assert!((shard0.s_sq_tot - global.s_sq_tot).abs() < 1e-9);
        // Commutativity: merging in the opposite order agrees too.
        let mut flipped = ClusterStats::from_members(objs[2..].iter());
        flipped.merge(&ClusterStats::from_members(objs[..2].iter()));
        assert!((flipped.j() - shard0.j()).abs() < 1e-12);
    }
}
