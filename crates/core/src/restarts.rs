//! Multi-restart wrapper: the standard practice for initialization-sensitive
//! local searches.
//!
//! UCPC (and every other partitional algorithm here) converges to a *local*
//! minimum that depends on the initial partition; the paper neutralizes this
//! by averaging scores over 50 runs. When a single best clustering is wanted
//! instead of an average, the usual remedy is restarting from several seeds
//! and keeping the lowest-objective result — which is what [`BestOfRestarts`]
//! does for any objective-reporting algorithm.
//!
//! Restarts are embarrassingly parallel, but their wall times are wildly
//! uneven (a lucky initialization converges in 3 passes, an unlucky one in
//! 30), so a static restart-per-thread split wastes the fast threads. The
//! runner therefore drains restart indices through the same work-claiming
//! [`WorkPool`] the propose-phase shard scheduler uses — restart-level work
//! stealing over one shared queue. Every restart's seed is drawn from the
//! caller's RNG *before* the pool starts and results are collected by
//! restart index, so the outcome (winner, objectives, labels) is
//! byte-identical to the sequential loop regardless of thread count or
//! claim order.

use crate::framework::{validate_input, ClusterError, Clustering};
use crate::pruning::{PruneCache, PruneCounters};
use crate::scheduler::{resolve_threads, WorkPool};
use crate::ucpc::{Ucpc, UcpcResult};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Mutex;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Restarts UCPC from `restarts` independent initializations and keeps the
/// result with the lowest objective.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_core::restarts::BestOfRestarts;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let data: Vec<UncertainObject> = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1]
///     .iter()
///     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.05)]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = BestOfRestarts { restarts: 6, ..Default::default() }
///     .run(&data, 3, &mut rng)
///     .unwrap();
/// // The winner is the minimum over all restart objectives.
/// let min = result.objectives.iter().copied().fold(f64::INFINITY, f64::min);
/// assert_eq!(result.best.objective, min);
/// ```
#[derive(Debug, Clone)]
pub struct BestOfRestarts {
    /// The configured UCPC instance to restart.
    pub algorithm: Ucpc,
    /// Number of independent restarts (must be at least 1).
    pub restarts: usize,
    /// Worker threads draining the restart queue (`0` = the `UCPC_THREADS`
    /// knob, falling back to available parallelism; see
    /// [`crate::scheduler::resolve_threads`]). The result is identical for
    /// every thread count.
    pub threads: usize,
}

impl Default for BestOfRestarts {
    fn default() -> Self {
        Self {
            algorithm: Ucpc::default(),
            restarts: 10,
            threads: 0,
        }
    }
}

/// Outcome of a multi-restart run.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// The best run's full result.
    pub best: UcpcResult,
    /// Objective of every restart, in run order.
    pub objectives: Vec<f64>,
    /// Index of the winning restart.
    pub winner: usize,
    /// Candidate-pruning counters summed over all restarts (all zero when
    /// the wrapped algorithm runs unpruned).
    pub pruning: PruneCounters,
    /// Restarts claimed by a worker that did not own them (zero on a
    /// single-threaded run).
    pub steals: usize,
}

impl BestOfRestarts {
    /// Runs all restarts (seeds drawn from `rng` up front, so the seed
    /// stream — and therefore every restart's outcome — is independent of
    /// the thread count) and returns the best.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<RestartResult, ClusterError> {
        assert!(self.restarts >= 1, "need at least one restart");
        validate_input(data, k)?;
        // One arena shared by every restart: the SoA moment matrices are
        // read-only during the search, so only the initial partition differs.
        // Each worker owns one prune cache; `run_on_arena_with_cache`
        // invalidates it at the start of every restart (the per-restart
        // best/second-best state would otherwise leak between searches), so
        // which worker executes a restart cannot affect its outcome.
        let arena = MomentArena::from_objects(data);
        let seeds: Vec<u64> = (0..self.restarts).map(|_| rng.next_u64()).collect();
        let threads = resolve_threads(self.threads).min(self.restarts);

        let mut steals = 0usize;
        let results: Vec<Result<UcpcResult, ClusterError>> = if threads <= 1 {
            let mut cache = PruneCache::new(arena.len(), k);
            seeds
                .iter()
                .map(|&seed| self.one_restart(data, &arena, k, seed, &mut cache))
                .collect()
        } else {
            // Restart-level work stealing: contiguous restart runs per
            // worker, drained front-first and stolen back-first (the same
            // pool discipline as the propose-phase shard scheduler).
            let pool = WorkPool::new((0..self.restarts).collect::<Vec<usize>>(), threads);
            let slots: Vec<Mutex<Option<Result<UcpcResult, ClusterError>>>> =
                (0..self.restarts).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for w in 0..threads {
                    let pool = &pool;
                    let slots = &slots;
                    let arena = &arena;
                    let seeds = &seeds;
                    scope.spawn(move || {
                        let mut cache = PruneCache::new(arena.len(), k);
                        while let Some(r) = pool.claim(w) {
                            let result = self.one_restart(data, arena, k, seeds[r], &mut cache);
                            *slots[r].lock().expect("result slot poisoned") = Some(result);
                        }
                    });
                }
            });
            steals = pool.steals();
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("every restart index was claimed exactly once")
                })
                .collect()
        };

        let mut best: Option<(usize, UcpcResult)> = None;
        let mut objectives = Vec::with_capacity(self.restarts);
        let mut pruning = PruneCounters::default();
        for (r, result) in results.into_iter().enumerate() {
            let result = result?;
            objectives.push(result.objective);
            pruning.merge(result.pruning);
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| result.objective < b.objective);
            if better {
                best = Some((r, result));
            }
        }
        let (winner, best) = best.expect("restarts >= 1");
        Ok(RestartResult {
            best,
            objectives,
            winner,
            pruning,
            steals,
        })
    }

    /// Executes one restart from its pre-drawn seed, reusing the worker's
    /// prune cache.
    fn one_restart(
        &self,
        data: &[UncertainObject],
        arena: &MomentArena,
        k: usize,
        seed: u64,
        cache: &mut PruneCache,
    ) -> Result<UcpcResult, ClusterError> {
        let mut run_rng = StdRng::seed_from_u64(seed);
        let labels = self.algorithm.init.initial_partition(data, k, &mut run_rng);
        self.algorithm
            .run_on_arena_with_cache(arena, k, labels, cache)
    }

    /// Convenience: just the winning partition.
    pub fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.best.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn tricky_data() -> Vec<UncertainObject> {
        // Four tight groups: with k=4 and random-partition init, single runs
        // regularly merge two groups; restarts should find the right split.
        let mut data = Vec::new();
        for c in [0.0, 4.0, 8.0, 12.0] {
            for i in 0..6 {
                data.push(UncertainObject::new(vec![UnivariatePdf::normal(
                    c + i as f64 * 0.05,
                    0.05,
                )]));
            }
        }
        data
    }

    #[test]
    fn best_restart_is_no_worse_than_any_single_run() {
        let data = tricky_data();
        let mut rng = StdRng::seed_from_u64(1);
        let r = BestOfRestarts {
            restarts: 8,
            ..Default::default()
        }
        .run(&data, 4, &mut rng)
        .unwrap();
        assert_eq!(r.objectives.len(), 8);
        let min = r.objectives.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((r.best.objective - min).abs() < 1e-12);
        assert!((r.objectives[r.winner] - min).abs() < 1e-12);
    }

    #[test]
    fn more_restarts_never_hurt() {
        let data = tricky_data();
        let obj = |restarts: usize| {
            let mut rng = StdRng::seed_from_u64(2);
            BestOfRestarts {
                restarts,
                ..Default::default()
            }
            .run(&data, 4, &mut rng)
            .unwrap()
            .best
            .objective
        };
        // Same seed stream: the first restart of both runs coincides, and
        // the 10-restart minimum can only be lower or equal.
        assert!(obj(10) <= obj(1) + 1e-12);
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let data = tricky_data();
        let run = |threads| {
            let mut rng = StdRng::seed_from_u64(5);
            BestOfRestarts {
                restarts: 8,
                threads,
                ..Default::default()
            }
            .run(&data, 4, &mut rng)
            .unwrap()
        };
        let seq = run(1);
        assert_eq!(seq.steals, 0);
        for threads in [2, 4, 8] {
            let par = run(threads);
            assert_eq!(seq.winner, par.winner, "{threads} threads");
            assert_eq!(
                seq.best.clustering.labels(),
                par.best.clustering.labels(),
                "{threads} threads"
            );
            // Bit-identical per-restart objectives: the seed stream is drawn
            // before the pool starts and every restart is self-contained.
            assert_eq!(seq.objectives, par.objectives, "{threads} threads");
        }
    }

    #[test]
    fn recovers_all_four_groups() {
        let data = tricky_data();
        let mut rng = StdRng::seed_from_u64(3);
        let c = BestOfRestarts {
            restarts: 12,
            ..Default::default()
        }
        .cluster(&data, 4, &mut rng)
        .unwrap();
        for g in 0..4 {
            let group: Vec<usize> = (0..6).map(|i| c.label(g * 6 + i)).collect();
            assert!(
                group.iter().all(|&l| l == group[0]),
                "group {g} split: {group:?}"
            );
        }
        assert_eq!(c.non_empty(), 4);
    }
}
