//! Multi-restart wrapper: the standard practice for initialization-sensitive
//! local searches.
//!
//! UCPC (and every other partitional algorithm here) converges to a *local*
//! minimum that depends on the initial partition; the paper neutralizes this
//! by averaging scores over 50 runs. When a single best clustering is wanted
//! instead of an average, the usual remedy is restarting from several seeds
//! and keeping the lowest-objective result — which is what [`BestOfRestarts`]
//! does for any objective-reporting algorithm.

use crate::framework::{validate_input, ClusterError, Clustering};
use crate::pruning::{PruneCache, PruneCounters};
use crate::ucpc::{Ucpc, UcpcResult};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Restarts UCPC from `restarts` independent initializations and keeps the
/// result with the lowest objective.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_core::restarts::BestOfRestarts;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let data: Vec<UncertainObject> = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1]
///     .iter()
///     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.05)]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = BestOfRestarts { restarts: 6, ..Default::default() }
///     .run(&data, 3, &mut rng)
///     .unwrap();
/// // The winner is the minimum over all restart objectives.
/// let min = result.objectives.iter().copied().fold(f64::INFINITY, f64::min);
/// assert_eq!(result.best.objective, min);
/// ```
#[derive(Debug, Clone)]
pub struct BestOfRestarts {
    /// The configured UCPC instance to restart.
    pub algorithm: Ucpc,
    /// Number of independent restarts (must be at least 1).
    pub restarts: usize,
}

impl Default for BestOfRestarts {
    fn default() -> Self {
        Self {
            algorithm: Ucpc::default(),
            restarts: 10,
        }
    }
}

/// Outcome of a multi-restart run.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// The best run's full result.
    pub best: UcpcResult,
    /// Objective of every restart, in run order.
    pub objectives: Vec<f64>,
    /// Index of the winning restart.
    pub winner: usize,
    /// Candidate-pruning counters summed over all restarts (all zero when
    /// the wrapped algorithm runs unpruned).
    pub pruning: PruneCounters,
}

impl BestOfRestarts {
    /// Runs all restarts (seeds drawn from `rng`) and returns the best.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<RestartResult, ClusterError> {
        assert!(self.restarts >= 1, "need at least one restart");
        validate_input(data, k)?;
        // One arena shared by every restart: the SoA moment matrices are
        // read-only during the search, so only the initial partition differs.
        // The prune cache is likewise allocated once; `run_on_arena_with_cache`
        // invalidates it at the start of every restart (the per-restart
        // best/second-best state would otherwise leak between searches).
        let arena = MomentArena::from_objects(data);
        let mut cache = PruneCache::new(arena.len(), k);
        let mut best: Option<(usize, UcpcResult)> = None;
        let mut objectives = Vec::with_capacity(self.restarts);
        let mut pruning = PruneCounters::default();
        for r in 0..self.restarts {
            let mut run_rng = StdRng::seed_from_u64(rng.next_u64());
            let labels = self.algorithm.init.initial_partition(data, k, &mut run_rng);
            let result = self
                .algorithm
                .run_on_arena_with_cache(&arena, k, labels, &mut cache)?;
            objectives.push(result.objective);
            pruning.merge(result.pruning);
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| result.objective < b.objective);
            if better {
                best = Some((r, result));
            }
        }
        let (winner, best) = best.expect("restarts >= 1");
        Ok(RestartResult {
            best,
            objectives,
            winner,
            pruning,
        })
    }

    /// Convenience: just the winning partition.
    pub fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.best.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn tricky_data() -> Vec<UncertainObject> {
        // Four tight groups: with k=4 and random-partition init, single runs
        // regularly merge two groups; restarts should find the right split.
        let mut data = Vec::new();
        for c in [0.0, 4.0, 8.0, 12.0] {
            for i in 0..6 {
                data.push(UncertainObject::new(vec![UnivariatePdf::normal(
                    c + i as f64 * 0.05,
                    0.05,
                )]));
            }
        }
        data
    }

    #[test]
    fn best_restart_is_no_worse_than_any_single_run() {
        let data = tricky_data();
        let mut rng = StdRng::seed_from_u64(1);
        let r = BestOfRestarts {
            restarts: 8,
            ..Default::default()
        }
        .run(&data, 4, &mut rng)
        .unwrap();
        assert_eq!(r.objectives.len(), 8);
        let min = r.objectives.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((r.best.objective - min).abs() < 1e-12);
        assert!((r.objectives[r.winner] - min).abs() < 1e-12);
    }

    #[test]
    fn more_restarts_never_hurt() {
        let data = tricky_data();
        let obj = |restarts: usize| {
            let mut rng = StdRng::seed_from_u64(2);
            BestOfRestarts {
                restarts,
                ..Default::default()
            }
            .run(&data, 4, &mut rng)
            .unwrap()
            .best
            .objective
        };
        // Same seed stream: the first restart of both runs coincides, and
        // the 10-restart minimum can only be lower or equal.
        assert!(obj(10) <= obj(1) + 1e-12);
    }

    #[test]
    fn recovers_all_four_groups() {
        let data = tricky_data();
        let mut rng = StdRng::seed_from_u64(3);
        let c = BestOfRestarts {
            restarts: 12,
            ..Default::default()
        }
        .cluster(&data, 4, &mut rng)
        .unwrap();
        for g in 0..4 {
            let group: Vec<usize> = (0..6).map(|i| c.label(g * 6 + i)).collect();
            assert!(
                group.iter().all(|&l| l == group[0]),
                "group {g} split: {group:?}"
            );
        }
        assert_eq!(c.non_empty(), 4);
    }
}
