//! The U-centroid (Section 4.1, Theorems 1 and 2, Lemma 5).
//!
//! The U-centroid of a cluster `C` is an uncertain object `𝒞 = (R, f)` whose
//! random variable ranges over every deterministic representation obtainable
//! by averaging one realization of each member of `C` (with the squared
//! Euclidean norm as the minimized distance, the argmin point is exactly the
//! arithmetic mean of the member realizations — Theorem 1's proof).
//!
//! Its pdf `f` is in general not analytically computable, but everything the
//! UCPC objective needs *is*:
//!
//! * its domain region is the member-wise average box (Theorem 1);
//! * its moments follow from Lemma 5:
//!   `mu(𝒞) = (1/|C|) Σ mu(o_i)`,
//!   `(mu_2)_j(𝒞) = (1/|C|^2) [Σ (mu_2)_j(o_i) + (Σ mu_j(o_i))^2 − Σ mu_j(o_i)^2]`;
//! * its variance collapses to `sigma^2(𝒞) = (1/|C|^2) Σ sigma^2(o_i)`
//!   (Theorem 2) — which is *why* minimizing the U-centroid's variance alone
//!   is not a sound compactness criterion (it ignores inter-object distances,
//!   cf. Figure 2 of the paper).
//!
//! [`UCentroid::sample`] draws realizations of the defining random variable
//! directly (average of one sample per member), which the test-suite uses to
//! validate the closed forms empirically.

use rand::Rng;
use ucpc_uncertain::{BoxRegion, Moments, UncertainObject};

/// The U-centroid of a cluster of uncertain objects.
#[derive(Debug, Clone, PartialEq)]
pub struct UCentroid {
    region: BoxRegion,
    moments: Moments,
    size: usize,
}

impl UCentroid {
    /// Builds the U-centroid of the cluster formed by `members`.
    ///
    /// Panics if `members` is empty or dimensionalities differ.
    pub fn from_cluster(members: &[&UncertainObject]) -> Self {
        assert!(
            !members.is_empty(),
            "U-centroid of an empty cluster is undefined"
        );
        let m = members[0].dims();
        let n = members.len() as f64;

        // Theorem 1: region is the member-wise average box.
        let regions: Vec<&BoxRegion> = members.iter().map(|o| o.region()).collect();
        let region = BoxRegion::average(&regions);

        // Lemma 5: closed-form moments.
        let mut sum_mu = vec![0.0; m];
        let mut sum_mu2 = vec![0.0; m];
        let mut sum_mu_sq = vec![0.0; m];
        for o in members {
            assert_eq!(o.dims(), m, "dimension mismatch");
            for j in 0..m {
                sum_mu[j] += o.mu()[j];
                sum_mu2[j] += o.mu2()[j];
                sum_mu_sq[j] += o.mu()[j] * o.mu()[j];
            }
        }
        let mut mu = vec![0.0; m];
        let mut mu2 = vec![0.0; m];
        for j in 0..m {
            // (mu_2)_j(C) = (1/n^2) [ Σ (mu2)_j + (Σ mu_j)^2 − Σ mu_j^2 ].
            mu2[j] = (sum_mu2[j] + sum_mu[j] * sum_mu[j] - sum_mu_sq[j]) / (n * n);
            mu[j] = sum_mu[j] / n;
        }

        Self {
            region,
            moments: Moments::from_mu_mu2(mu, mu2),
            size: members.len(),
        }
    }

    /// Cluster size `|C|`.
    pub fn cluster_size(&self) -> usize {
        self.size
    }

    /// Domain region `R` per Theorem 1.
    pub fn region(&self) -> &BoxRegion {
        &self.region
    }

    /// Moments per Lemma 5.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Expected value `mu(𝒞)` — equal to the UK-means centroid (Eq. 7).
    pub fn mu(&self) -> &[f64] {
        self.moments.mu()
    }

    /// Second-order moment vector.
    pub fn mu2(&self) -> &[f64] {
        self.moments.mu2()
    }

    /// Global variance `sigma^2(𝒞)`; equals `(1/|C|^2) Σ sigma^2(o_i)` by
    /// Theorem 2.
    pub fn variance(&self) -> f64 {
        self.moments.total_variance()
    }

    /// Draws one realization of the U-centroid's defining random variable:
    /// the average of one independent realization per member object.
    pub fn sample<R: Rng + ?Sized>(members: &[&UncertainObject], rng: &mut R) -> Vec<f64> {
        assert!(
            !members.is_empty(),
            "cannot sample an empty cluster's centroid"
        );
        let m = members[0].dims();
        let mut acc = vec![0.0; m];
        for o in members {
            let s = o.sample(rng);
            for j in 0..m {
                acc[j] += s[j];
            }
        }
        let inv = 1.0 / members.len() as f64;
        for v in &mut acc {
            *v *= inv;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn cluster() -> Vec<UncertainObject> {
        vec![
            UncertainObject::new(vec![
                UnivariatePdf::uniform_centered(0.0, 1.0),
                UnivariatePdf::normal(2.0, 0.5),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::uniform_centered(4.0, 2.0),
                UnivariatePdf::normal(-2.0, 1.0),
            ]),
            UncertainObject::new(vec![
                UnivariatePdf::uniform_centered(-1.0, 0.5),
                UnivariatePdf::normal(0.0, 0.1),
            ]),
        ]
    }

    #[test]
    fn mu_is_average_of_member_means() {
        let objs = cluster();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        assert!((c.mu()[0] - 1.0).abs() < 1e-12);
        assert!((c.mu()[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn theorem_2_variance_identity() {
        let objs = cluster();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        let want: f64 =
            objs.iter().map(|o| o.total_variance()).sum::<f64>() / (objs.len() * objs.len()) as f64;
        assert!(
            (c.variance() - want).abs() < 1e-12,
            "Theorem 2: sigma^2(C) = |C|^-2 sum sigma^2(o_i); got {} want {want}",
            c.variance()
        );
    }

    #[test]
    fn theorem_1_region_is_average_box() {
        let objs = cluster();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        // Dimension 0 supports: [-1,1], [2,6], [-1.5,-0.5] -> avg [-1/6, 13/6... ]
        let lo = (-1.0 + 2.0 + -1.5) / 3.0;
        let hi = (1.0 + 6.0 + -0.5) / 3.0;
        assert!((c.region().side(0).lo - lo).abs() < 1e-12);
        assert!((c.region().side(0).hi - hi).abs() < 1e-12);
    }

    #[test]
    fn sampled_realizations_match_lemma_5_moments() {
        let objs = cluster();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200_000;
        let m = 2;
        let mut mu = vec![0.0; m];
        let mut mu2 = vec![0.0; m];
        for _ in 0..n {
            let x = UCentroid::sample(&refs, &mut rng);
            for j in 0..m {
                mu[j] += x[j];
                mu2[j] += x[j] * x[j];
            }
        }
        for j in 0..m {
            mu[j] /= n as f64;
            mu2[j] /= n as f64;
            assert!(
                (mu[j] - c.mu()[j]).abs() < 5e-3,
                "dim {j}: empirical mu {} vs Lemma-5 mu {}",
                mu[j],
                c.mu()[j]
            );
            assert!(
                (mu2[j] - c.mu2()[j]).abs() < 2e-2,
                "dim {j}: empirical mu2 {} vs Lemma-5 mu2 {}",
                mu2[j],
                c.mu2()[j]
            );
        }
    }

    #[test]
    fn samples_fall_in_theorem_1_region_for_bounded_members() {
        // All-uniform members have bounded supports; the average of their
        // realizations must land in the average box.
        let objs: Vec<UncertainObject> = (0..4)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::uniform_centered(i as f64, 1.0)]))
            .collect();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let c = UCentroid::from_cluster(&refs);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5_000 {
            let x = UCentroid::sample(&refs, &mut rng);
            assert!(
                c.region().contains(&x),
                "realization {x:?} outside Theorem-1 region"
            );
        }
    }

    #[test]
    fn singleton_cluster_centroid_is_the_object() {
        let objs = cluster();
        let c = UCentroid::from_cluster(&[&objs[0]]);
        assert_eq!(c.mu(), objs[0].mu());
        for j in 0..2 {
            assert!((c.mu2()[j] - objs[0].mu2()[j]).abs() < 1e-12);
        }
        assert!((c.variance() - objs[0].total_variance()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        let _ = UCentroid::from_cluster(&[]);
    }
}
