//! Versioned binary snapshot/restore for the streaming engine.
//!
//! [`IncrementalUcpc::snapshot`] serializes the complete logical state of a
//! live clustering — storage backend and its moment rows, slot generations
//! and free-list, labels, per-cluster [`ClusterStats`] (including the drift
//! accumulators), the pruning configuration, and the invalidation
//! watermarks (`epoch`, per-cluster `versions`, global drift totals) — into
//! a self-describing byte buffer. [`IncrementalUcpc::restore`] reassembles
//! an engine that is **bit-identical** to the original: continuing the same
//! edit script on the restored engine produces byte-for-byte the labels,
//! statistics bits and objective of the uninterrupted run, across both
//! backends, pruning on/off and every SIMD backend
//! (`tests/snapshot_roundtrip.rs`).
//!
//! # Why the round-trip is exact
//!
//! Every number crosses the boundary as raw IEEE-754 bits
//! ([`f64::to_bits`] / [`f64::from_bits`], little-endian), never through
//! decimal formatting. Statistics are installed verbatim through
//! `ClusterStats::from_raw_parts` — nothing is re-derived from the rows.
//! Slab rows are rebuilt from their serialized `(mu, mu2)` pairs through
//! the same canonical per-dimension fold every insertion uses, which is
//! bit-identical to the original write (see [`ucpc_uncertain::slab`] for
//! the derivation). Freed rows are *not* serialized and restore as zeros:
//! a freed row is never read (the free-list guarantees the next occupant
//! overwrites it whole), so its residual bytes are not logical state — and
//! zeroing them makes `snapshot(restore(s)) == s` hold bytewise.
//!
//! The prune cache's *entries* are deliberately excluded: a restored cache
//! starts empty and entries regrow invalid, which is always sound (an
//! invalid entry forces the exact full scan). The invalidation watermarks
//! — `epoch`, `versions`, drift totals — *are* carried over, so bounds
//! cached after restore are validated against exactly the history the
//! original engine would have used.
//!
//! # Formats
//!
//! Two wire versions share the `UCPCSNAP` magic. **v1** is the original
//! single-buffer layout below; [`IncrementalUcpc::snapshot`] still writes
//! it and [`IncrementalUcpc::restore`] reads both. **v2**
//! ([`IncrementalUcpc::write_snapshot`] /
//! [`IncrementalUcpc::snapshot_v2`]) carries the *same logical fields* —
//! bit for bit, in the same order — but streams them as bounded,
//! individually CRC-32-checksummed chunks over a [`DurableIo`] sink, so a
//! checkpoint never materializes the full state in one buffer (the moment
//! rows, the dominant term, go out [`ROWS_PER_CHUNK`] rows at a time) and
//! any single flipped or torn byte is caught by the chunk checksum rather
//! than by downstream validation:
//!
//! ```text
//! magic    8 × u8   "UCPCSNAP"
//! version  u32      2
//! chunk    kind u8 | len u32 | payload len × u8 | crc u32 (over kind‖len‖payload)
//!   kind 1 META     backend u8, pruning u8, m u64, k u64, live u64,
//!                   epoch u64, n_slots u64, n_free u64, versions k × u64,
//!                   totals 6 × f64, stats k × {…}   (exactly the v1 fields)
//!   kind 2 SLOTS    per slot: flag u8, label u64 if live, gen u32
//!                   (≤ SLOTS_PER_CHUNK slots per chunk, ascending)
//!   kind 3 FREE     freed slots u32, LIFO order (≤ FREE_PER_CHUNK each)
//!   kind 4 ROWS     live rows { mu m × f64, mu2 m × f64 }, ascending slot
//!                   order (≤ ROWS_PER_CHUNK rows per chunk)
//!   kind 5 END      empty — a stream without it is truncated
//! ```
//!
//! Chunk boundaries are fixed constants, so the v2 bytes of a given engine
//! state are deterministic and `snapshot_v2(restore(s)) == s` holds
//! bytewise, exactly like v1. Restore clamps every length field against
//! the bytes actually remaining *before* allocating, so a hostile or
//! bit-flipped count fails fast as [`SnapshotError::Truncated`] instead of
//! reserving unbounded memory (`tests/snapshot_fuzz.rs` fuzzes both
//! versions with truncations and bit flips).
//!
//! # v1 format
//!
//! Integers are little-endian; `f64` is [`f64::to_bits`] little-endian.
//!
//! ```text
//! magic    8 × u8   "UCPCSNAP"
//! version  u32      1 (bumped on any layout change; readers reject others)
//! backend  u8       0 = Objects, 1 = Slab
//! pruning  u8       0 = Off, 1 = Bounds
//! m        u64      dimensions
//! k        u64      clusters
//! live     u64      live-object count (validated against the slot flags)
//! epoch    u64      prune-cache epoch
//! versions k × u64  per-cluster remove-direction versions
//! totals   6 × f64  global drift totals
//! stats    k × { size u64, psi m × f64, phi m × f64, mean_sum m × f64,
//!                psi_tot f64, phi_tot f64, s_sq_tot f64, drift 6 × f64 }
//! n_slots  u64      storage slots ever created (live-window high-water mark)
//! slots    n_slots × { live u8, label u64 if live }
//! gens     n_slots × u32
//! n_free   u64      free-list length (== n_slots − live)
//! free     n_free × u32   freed slots, LIFO order preserved
//! rows     live × { mu m × f64, mu2 m × f64 }   ascending slot order
//! ```

use crate::incremental::{IncrementalUcpc, MomentStore, StreamBackend};
use crate::objective::{ClusterDrift, ClusterStats};
use crate::pruning::{DriftTotals, PruneCache, PruneCounters, PruningConfig};
use crate::wal::{crc32, DurableIo, IoFault, VecIo};
use std::fmt;
use ucpc_uncertain::{MomentArena, Moments, SlabArena};

const MAGIC: &[u8; 8] = b"UCPCSNAP";
const VERSION: u32 = 1;
const VERSION_V2: u32 = 2;

const CHUNK_META: u8 = 1;
const CHUNK_SLOTS: u8 = 2;
const CHUNK_FREE: u8 = 3;
const CHUNK_ROWS: u8 = 4;
const CHUNK_END: u8 = 5;

/// Moment rows per v2 `ROWS` chunk — the writer's peak buffer is
/// `ROWS_PER_CHUNK × 16m` bytes regardless of how many objects are live.
pub const ROWS_PER_CHUNK: usize = 512;
/// Slot entries per v2 `SLOTS` chunk.
pub const SLOTS_PER_CHUNK: usize = 4096;
/// Free-list entries per v2 `FREE` chunk.
pub const FREE_PER_CHUNK: usize = 4096;

/// Errors from [`IncrementalUcpc::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `UCPCSNAP` magic.
    BadMagic,
    /// The buffer's format version is not one this build reads.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared state was complete.
    Truncated,
    /// The buffer decodes to an inconsistent state (bad tag, slot count,
    /// label range, free-list shape, or trailing bytes).
    Corrupt(&'static str),
    /// A v2 chunk failed its CRC-32 — a flipped or torn byte inside the
    /// named section.
    ChecksumMismatch(&'static str),
    /// The [`DurableIo`] sink faulted while streaming a v2 snapshot out.
    Io(IoFault),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "snapshot does not start with the UCPCSNAP magic"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot format version {v} is not supported (expected {VERSION} or {VERSION_V2})"
                )
            }
            Self::Truncated => write!(f, "snapshot buffer is truncated"),
            Self::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            Self::ChecksumMismatch(section) => {
                write!(f, "snapshot {section} chunk failed its checksum")
            }
            Self::Io(fault) => write!(f, "snapshot write faulted: {fault}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn f64s(&mut self, vs: &[f64]) {
        crate::wal::extend_f64_bits(&mut self.buf, vs);
    }

    /// Starts a v2 chunk: kind byte plus a length placeholder patched by
    /// [`Self::finish_chunk`]. The buffer is reused across chunks, so the
    /// writer's peak memory is one chunk, not the whole snapshot.
    fn begin_chunk(&mut self, kind: u8) {
        self.buf.clear();
        self.u8(kind);
        self.u32(0);
    }

    /// Patches the length, appends the CRC-32 over `kind ‖ len ‖ payload`,
    /// and streams the framed chunk to the sink.
    fn finish_chunk<I: DurableIo>(
        &mut self,
        io: &mut I,
        written: &mut u64,
    ) -> Result<(), SnapshotError> {
        let len = (self.buf.len() - 5) as u32;
        self.buf[1..5].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        io.write_all(&self.buf).map_err(SnapshotError::Io)?;
        *written += self.buf.len() as u64;
        Ok(())
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("count overflows usize"))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, SnapshotError> {
        // Clamp before allocating: a hostile count must fail as Truncated,
        // never reserve unbounded memory.
        self.ensure(n, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Pre-allocation clamp: `units` entries of at least `bytes_each`
    /// serialized bytes apiece must still fit in the unread input, else the
    /// buffer is truncated — checked *before* any `Vec::with_capacity` so a
    /// flipped length field can demand at most the input's own size.
    fn ensure(&self, units: usize, bytes_each: usize) -> Result<(), SnapshotError> {
        match units.checked_mul(bytes_each) {
            Some(total) if total <= self.remaining() => Ok(()),
            _ => Err(SnapshotError::Truncated),
        }
    }
}

fn write_drift(w: &mut Writer, d: ClusterDrift) {
    w.f64(d.add_const);
    w.f64(d.add_size);
    w.f64(d.add_mean);
    w.f64(d.rem_const);
    w.f64(d.rem_size);
    w.f64(d.rem_mean);
}

fn read_drift(r: &mut Reader<'_>) -> Result<ClusterDrift, SnapshotError> {
    Ok(ClusterDrift {
        add_const: r.f64()?,
        add_size: r.f64()?,
        add_mean: r.f64()?,
        rem_const: r.f64()?,
        rem_size: r.f64()?,
        rem_mean: r.f64()?,
    })
}

fn slot_gen(store: &MomentStore, slot: usize) -> u32 {
    match store {
        MomentStore::Objects { gens, .. } => gens[slot],
        MomentStore::Slab { slab } => slab.generation(slot),
    }
}

fn free_list(store: &MomentStore) -> &[u32] {
    match store {
        MomentStore::Objects { free, .. } => free,
        MomentStore::Slab { slab } => slab.free_slots(),
    }
}

fn row_of(store: &MomentStore, slot: usize) -> (&[f64], &[f64]) {
    match store {
        MomentStore::Objects { objects, .. } => {
            let mo = objects[slot].as_ref().expect("live slot has a row");
            (mo.mu(), mo.mu2())
        }
        MomentStore::Slab { slab } => {
            let v = slab.view(slot);
            (v.mu, v.mu2)
        }
    }
}

/// Decoded v2 `META` chunk — everything except the per-slot sections
/// (the backend tag lives on as the [`RowSink`] variant).
struct V2Meta {
    pruning: PruningConfig,
    m: usize,
    k: usize,
    live: usize,
    epoch: u64,
    n_slots: usize,
    n_free: usize,
    versions: Vec<u64>,
    totals: DriftTotals,
    stats: Vec<ClusterStats>,
}

/// Row storage being rebuilt during a v2 restore, fed one slot at a time
/// in ascending order (freed slots as zero rows, exactly like v1).
enum RowSink {
    Objects {
        objects: Vec<Option<Moments>>,
    },
    Slab {
        arena: MomentArena,
        occupied: Vec<bool>,
    },
}

impl RowSink {
    fn push_free(&mut self, m: usize) {
        match self {
            Self::Objects { objects } => objects.push(None),
            Self::Slab { arena, occupied } => {
                arena.push_row_with(m, |_| (0.0, 0.0));
                occupied.push(false);
            }
        }
    }

    fn push_live(&mut self, m: usize, mu: Vec<f64>, mu2: Vec<f64>) {
        match self {
            Self::Objects { objects } => objects.push(Some(Moments::from_mu_mu2(mu, mu2))),
            Self::Slab { arena, occupied } => {
                // The same canonical per-dimension fold the original
                // insertion used — bit-identical row reconstruction.
                arena.push_row_with(m, |d| (mu[d], mu2[d]));
                occupied.push(true);
            }
        }
    }
}

/// Accumulator of a v2 chunked restore: enforces chunk order
/// (META → SLOTS → FREE → ROWS → END), runs the same validations as the
/// v1 decoder, and clamps every count against the input size before
/// allocating.
struct V2State {
    input_len: usize,
    meta: Option<V2Meta>,
    labels: Vec<Option<usize>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    freed_seen: Vec<bool>,
    sink: Option<RowSink>,
    next_slot: usize,
    rows_seen: usize,
    free_begun: bool,
    rows_begun: bool,
}

impl V2State {
    fn new(input_len: usize) -> Self {
        Self {
            input_len,
            meta: None,
            labels: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            freed_seen: Vec::new(),
            sink: None,
            next_slot: 0,
            rows_seen: 0,
            free_begun: false,
            rows_begun: false,
        }
    }

    /// Clamp for counts whose entries live in *later* chunks: they must
    /// still fit in the whole input, else some chunk is missing — fail as
    /// Truncated before reserving anything.
    fn fits_input(&self, units: usize, bytes_each: usize) -> Result<(), SnapshotError> {
        match units.checked_mul(bytes_each) {
            Some(total) if total <= self.input_len => Ok(()),
            _ => Err(SnapshotError::Truncated),
        }
    }

    fn meta(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        if self.meta.is_some() {
            return Err(SnapshotError::Corrupt("duplicate META chunk"));
        }
        let backend = match r.u8()? {
            0 => StreamBackend::Objects,
            1 => StreamBackend::Slab,
            _ => return Err(SnapshotError::Corrupt("unknown backend tag")),
        };
        let pruning = match r.u8()? {
            0 => PruningConfig::Off,
            1 => PruningConfig::Bounds,
            _ => return Err(SnapshotError::Corrupt("unknown pruning tag")),
        };
        let m = r.usize()?;
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("k must be at least 1"));
        }
        let live = r.usize()?;
        let epoch = r.u64()?;
        let n_slots = r.usize()?;
        let n_free = r.usize()?;
        if n_slots
            .checked_sub(live)
            .is_none_or(|expected| n_free != expected)
        {
            return Err(SnapshotError::Corrupt("free-list length mismatch"));
        }
        r.ensure(k, 8)?;
        let mut versions = Vec::with_capacity(k);
        for _ in 0..k {
            versions.push(r.u64()?);
        }
        let totals_arr: [f64; 6] = r.f64s(6)?.try_into().expect("fixed-length read");
        let totals = DriftTotals::from_array(totals_arr);
        let mut stats = Vec::with_capacity(k);
        for _ in 0..k {
            let size = r.usize()?;
            let psi = r.f64s(m)?;
            let phi = r.f64s(m)?;
            let mean_sum = r.f64s(m)?;
            let psi_tot = r.f64()?;
            let phi_tot = r.f64()?;
            let s_sq_tot = r.f64()?;
            let drift = read_drift(r)?;
            stats.push(ClusterStats::from_raw_parts(
                psi, phi, mean_sum, size, psi_tot, phi_tot, s_sq_tot, drift,
            ));
        }
        // Entries owed by later chunks, clamped against the whole input.
        self.fits_input(n_slots, 5)?;
        self.fits_input(n_free, 4)?;
        self.fits_input(live.checked_mul(m).ok_or(SnapshotError::Truncated)?, 16)?;
        self.labels = Vec::with_capacity(n_slots);
        self.gens = Vec::with_capacity(n_slots);
        self.free = Vec::with_capacity(n_free);
        self.freed_seen = vec![false; n_slots];
        self.sink = Some(match backend {
            StreamBackend::Objects => RowSink::Objects {
                objects: Vec::with_capacity(n_slots),
            },
            StreamBackend::Slab => RowSink::Slab {
                arena: MomentArena::with_capacity(n_slots, m),
                occupied: Vec::with_capacity(n_slots),
            },
        });
        self.meta = Some(V2Meta {
            pruning,
            m,
            k,
            live,
            epoch,
            n_slots,
            n_free,
            versions,
            totals,
            stats,
        });
        Ok(())
    }

    fn slots(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let Some(meta) = &self.meta else {
            return Err(SnapshotError::Corrupt("chunk before META"));
        };
        let (n_slots, k) = (meta.n_slots, meta.k);
        if self.free_begun || self.rows_begun {
            return Err(SnapshotError::Corrupt("SLOTS chunk out of order"));
        }
        while r.remaining() > 0 {
            if self.labels.len() == n_slots {
                return Err(SnapshotError::Corrupt("too many slot entries"));
            }
            match r.u8()? {
                0 => self.labels.push(None),
                1 => {
                    let c = r.usize()?;
                    if c >= k {
                        return Err(SnapshotError::Corrupt("label out of range"));
                    }
                    self.labels.push(Some(c));
                }
                _ => return Err(SnapshotError::Corrupt("unknown slot flag")),
            }
            self.gens.push(r.u32()?);
        }
        Ok(())
    }

    fn free(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let Some(meta) = &self.meta else {
            return Err(SnapshotError::Corrupt("chunk before META"));
        };
        let (n_slots, n_free) = (meta.n_slots, meta.n_free);
        if self.labels.len() != n_slots || self.rows_begun {
            return Err(SnapshotError::Corrupt("FREE chunk out of order"));
        }
        self.free_begun = true;
        while r.remaining() > 0 {
            if self.free.len() == n_free {
                return Err(SnapshotError::Corrupt("too many free-list entries"));
            }
            let s = r.u32()?;
            let slot = s as usize;
            if slot >= n_slots || self.labels[slot].is_some() || self.freed_seen[slot] {
                return Err(SnapshotError::Corrupt("free-list entry invalid"));
            }
            self.freed_seen[slot] = true;
            self.free.push(s);
        }
        Ok(())
    }

    fn rows(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let Some(meta) = &self.meta else {
            return Err(SnapshotError::Corrupt("chunk before META"));
        };
        let (n_slots, n_free, live, m) = (meta.n_slots, meta.n_free, meta.live, meta.m);
        if self.labels.len() != n_slots || self.free.len() != n_free {
            return Err(SnapshotError::Corrupt("ROWS chunk out of order"));
        }
        self.rows_begun = true;
        let sink = self.sink.as_mut().expect("sink built with META");
        while r.remaining() > 0 {
            if self.rows_seen == live {
                return Err(SnapshotError::Corrupt("too many rows"));
            }
            let mu = r.f64s(m)?;
            let mu2 = r.f64s(m)?;
            // Zero-fill freed slots up to the next live one, like v1.
            while self.labels[self.next_slot].is_none() {
                sink.push_free(m);
                self.next_slot += 1;
            }
            sink.push_live(m, mu, mu2);
            self.next_slot += 1;
            self.rows_seen += 1;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<IncrementalUcpc, SnapshotError> {
        let Some(meta) = self.meta.take() else {
            return Err(SnapshotError::Corrupt("chunk before META"));
        };
        if self.labels.len() != meta.n_slots
            || self.free.len() != meta.n_free
            || self.rows_seen != meta.live
        {
            return Err(SnapshotError::Truncated);
        }
        let live_slots = self.labels.iter().filter(|l| l.is_some()).count();
        if live_slots != meta.live {
            return Err(SnapshotError::Corrupt(
                "live count does not match slot flags",
            ));
        }
        let mut sink = self.sink.take().expect("sink built with META");
        // Every live slot is behind the cursor (rows_seen == live ==
        // flagged-live count); zero-fill the freed tail.
        while self.next_slot < meta.n_slots {
            debug_assert!(self.labels[self.next_slot].is_none());
            sink.push_free(meta.m);
            self.next_slot += 1;
        }
        let store = match sink {
            RowSink::Objects { objects } => MomentStore::Objects {
                objects,
                free: self.free,
                gens: self.gens,
            },
            RowSink::Slab { arena, occupied } => MomentStore::Slab {
                slab: SlabArena::from_parts(arena, occupied, self.free, self.gens),
            },
        };
        Ok(IncrementalUcpc {
            m: meta.m,
            k: meta.k,
            stats: meta.stats,
            store,
            labels: self.labels,
            live: meta.live,
            pruning: meta.pruning,
            epoch: meta.epoch,
            versions: meta.versions,
            totals: meta.totals,
            cache: PruneCache::new(0, meta.k),
            counters: PruneCounters::default(),
        })
    }
}

impl IncrementalUcpc {
    /// Serializes the complete logical state into a versioned byte buffer.
    /// See the [module docs](crate::snapshot) for the format and the
    /// bit-identity argument.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: Vec::with_capacity(
                64 + self.k * (8 + (3 * self.m + 9) * 8)
                    + self.labels.len() * 13
                    + self.live * self.m * 16,
            ),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.u8(match self.backend() {
            StreamBackend::Objects => 0,
            StreamBackend::Slab => 1,
        });
        w.u8(match self.pruning {
            PruningConfig::Off => 0,
            PruningConfig::Bounds => 1,
        });
        w.u64(self.m as u64);
        w.u64(self.k as u64);
        w.u64(self.live as u64);
        w.u64(self.epoch);
        for &v in &self.versions {
            w.u64(v);
        }
        w.f64s(&self.totals.to_array());
        for s in &self.stats {
            w.u64(s.size() as u64);
            w.f64s(s.psi());
            w.f64s(s.phi());
            w.f64s(s.mean_sum());
            let (psi_tot, phi_tot, s_sq_tot) = s.scalar_aggregates();
            w.f64(psi_tot);
            w.f64(phi_tot);
            w.f64(s_sq_tot);
            write_drift(&mut w, s.drift());
        }
        let n_slots = self.labels.len();
        w.u64(n_slots as u64);
        for l in &self.labels {
            match l {
                Some(c) => {
                    w.u8(1);
                    w.u64(*c as u64);
                }
                None => w.u8(0),
            }
        }
        match &self.store {
            MomentStore::Objects {
                objects,
                free,
                gens,
            } => {
                for &g in gens {
                    w.u32(g);
                }
                w.u64(free.len() as u64);
                for &s in free {
                    w.u32(s);
                }
                for mo in objects.iter().flatten() {
                    w.f64s(mo.mu());
                    w.f64s(mo.mu2());
                }
            }
            MomentStore::Slab { slab } => {
                for slot in 0..n_slots {
                    w.u32(slab.generation(slot));
                }
                let free = slab.free_slots();
                w.u64(free.len() as u64);
                for &s in free {
                    w.u32(s);
                }
                for slot in 0..n_slots {
                    if slab.is_live(slot) {
                        let v = slab.view(slot);
                        w.f64s(v.mu);
                        w.f64s(v.mu2);
                    }
                }
            }
        }
        w.buf
    }

    /// Streams a **v2** snapshot — the same logical fields as
    /// [`Self::snapshot`], bit for bit, so the identity argument carries
    /// over unchanged — to `io` as bounded, checksummed chunks (module
    /// docs), returning the bytes written. Peak writer memory is one chunk
    /// (`ROWS_PER_CHUNK × 16m` bytes for the dominant row section)
    /// regardless of live-set size, which is what lets checkpoint +
    /// log-rotate run inside the serving loop without materializing the
    /// full state. The sink is *not* synced here — durability policy
    /// belongs to the caller (see `ServingUcpc::checkpoint_into`).
    pub fn write_snapshot<I: DurableIo>(&self, io: &mut I) -> Result<u64, SnapshotError> {
        let mut written = 0u64;
        let mut head = [0u8; 12];
        head[..8].copy_from_slice(MAGIC);
        head[8..].copy_from_slice(&VERSION_V2.to_le_bytes());
        io.write_all(&head).map_err(SnapshotError::Io)?;
        written += head.len() as u64;
        let n_slots = self.labels.len();
        let n_free = n_slots - self.live;
        let mut w = Writer {
            buf: Vec::with_capacity(4096),
        };

        w.begin_chunk(CHUNK_META);
        w.u8(match self.backend() {
            StreamBackend::Objects => 0,
            StreamBackend::Slab => 1,
        });
        w.u8(match self.pruning {
            PruningConfig::Off => 0,
            PruningConfig::Bounds => 1,
        });
        w.u64(self.m as u64);
        w.u64(self.k as u64);
        w.u64(self.live as u64);
        w.u64(self.epoch);
        w.u64(n_slots as u64);
        w.u64(n_free as u64);
        for &v in &self.versions {
            w.u64(v);
        }
        w.f64s(&self.totals.to_array());
        for s in &self.stats {
            w.u64(s.size() as u64);
            w.f64s(s.psi());
            w.f64s(s.phi());
            w.f64s(s.mean_sum());
            let (psi_tot, phi_tot, s_sq_tot) = s.scalar_aggregates();
            w.f64(psi_tot);
            w.f64(phi_tot);
            w.f64(s_sq_tot);
            write_drift(&mut w, s.drift());
        }
        w.finish_chunk(io, &mut written)?;

        for start in (0..n_slots).step_by(SLOTS_PER_CHUNK) {
            w.begin_chunk(CHUNK_SLOTS);
            for slot in start..(start + SLOTS_PER_CHUNK).min(n_slots) {
                match self.labels[slot] {
                    Some(c) => {
                        w.u8(1);
                        w.u64(c as u64);
                    }
                    None => w.u8(0),
                }
                w.u32(slot_gen(&self.store, slot));
            }
            w.finish_chunk(io, &mut written)?;
        }

        let free = free_list(&self.store);
        for group in free.chunks(FREE_PER_CHUNK) {
            w.begin_chunk(CHUNK_FREE);
            for &s in group {
                w.u32(s);
            }
            w.finish_chunk(io, &mut written)?;
        }

        let mut in_chunk = 0usize;
        for slot in 0..n_slots {
            if self.labels[slot].is_none() {
                continue;
            }
            if in_chunk == 0 {
                w.begin_chunk(CHUNK_ROWS);
            }
            let (mu, mu2) = row_of(&self.store, slot);
            w.f64s(mu);
            w.f64s(mu2);
            in_chunk += 1;
            if in_chunk == ROWS_PER_CHUNK {
                w.finish_chunk(io, &mut written)?;
                in_chunk = 0;
            }
        }
        if in_chunk > 0 {
            w.finish_chunk(io, &mut written)?;
        }

        w.begin_chunk(CHUNK_END);
        w.finish_chunk(io, &mut written)?;
        Ok(written)
    }

    /// [`Self::write_snapshot`] into a fresh in-memory buffer — the v2
    /// counterpart of [`Self::snapshot`], for callers that want the bytes
    /// rather than a stream.
    pub fn snapshot_v2(&self) -> Vec<u8> {
        let mut io = VecIo::new();
        self.write_snapshot(&mut io)
            .expect("in-memory sink cannot fault");
        io.into_bytes()
    }

    /// The v2 chunked decode; `bytes` is the whole buffer.
    fn restore_v2(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut v2 = V2State::new(bytes.len());
        let mut pos = 12usize;
        loop {
            if pos == bytes.len() {
                // No END chunk seen: the stream stopped mid-write.
                return Err(SnapshotError::Truncated);
            }
            let remaining = bytes.len() - pos;
            if remaining < 9 {
                return Err(SnapshotError::Truncated);
            }
            let kind = bytes[pos];
            let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap()) as usize;
            // Clamp against the input before touching the payload: a
            // hostile length is Truncated, never an allocation.
            if len > remaining - 9 {
                return Err(SnapshotError::Truncated);
            }
            let end = pos + 5 + len;
            let stored = u32::from_le_bytes(bytes[end..end + 4].try_into().unwrap());
            let section = match kind {
                CHUNK_META => "META",
                CHUNK_SLOTS => "SLOTS",
                CHUNK_FREE => "FREE",
                CHUNK_ROWS => "ROWS",
                CHUNK_END => "END",
                _ => return Err(SnapshotError::Corrupt("unknown chunk kind")),
            };
            if crc32(&bytes[pos..end]) != stored {
                return Err(SnapshotError::ChecksumMismatch(section));
            }
            let mut r = Reader {
                buf: &bytes[pos + 5..end],
                pos: 0,
            };
            match kind {
                CHUNK_META => v2.meta(&mut r)?,
                CHUNK_SLOTS => v2.slots(&mut r)?,
                CHUNK_FREE => v2.free(&mut r)?,
                CHUNK_ROWS => v2.rows(&mut r)?,
                _ => {
                    if r.remaining() != 0 {
                        return Err(SnapshotError::Corrupt("END chunk carries payload"));
                    }
                    if end + 4 != bytes.len() {
                        return Err(SnapshotError::Corrupt("trailing bytes"));
                    }
                    return v2.finish();
                }
            }
            if r.remaining() != 0 {
                return Err(SnapshotError::Corrupt("chunk carries trailing payload"));
            }
            pos = end + 4;
        }
    }
    /// [`Self::snapshot_v2`] / [`Self::write_snapshot`] (v2) buffer,
    /// bit-identical to the engine that produced it. The prune cache
    /// restarts empty (entries regrow invalid — always sound); the
    /// pruning counters restart at zero.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        match r.u32()? {
            VERSION => Self::restore_v1(r),
            VERSION_V2 => Self::restore_v2(bytes),
            other => Err(SnapshotError::UnsupportedVersion(other)),
        }
    }

    /// The v1 single-buffer decode; `r` is positioned just past the
    /// magic + version prefix.
    fn restore_v1(mut r: Reader<'_>) -> Result<Self, SnapshotError> {
        let bytes = r.buf;
        let backend = match r.u8()? {
            0 => StreamBackend::Objects,
            1 => StreamBackend::Slab,
            _ => return Err(SnapshotError::Corrupt("unknown backend tag")),
        };
        let pruning = match r.u8()? {
            0 => PruningConfig::Off,
            1 => PruningConfig::Bounds,
            _ => return Err(SnapshotError::Corrupt("unknown pruning tag")),
        };
        let m = r.usize()?;
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("k must be at least 1"));
        }
        let live = r.usize()?;
        let epoch = r.u64()?;
        r.ensure(k, 8)?;
        let mut versions = Vec::with_capacity(k);
        for _ in 0..k {
            versions.push(r.u64()?);
        }
        let totals_arr: [f64; 6] = r.f64s(6)?.try_into().expect("fixed-length read");
        let totals = DriftTotals::from_array(totals_arr);
        let mut stats = Vec::with_capacity(k);
        for _ in 0..k {
            let size = r.usize()?;
            let psi = r.f64s(m)?;
            let phi = r.f64s(m)?;
            let mean_sum = r.f64s(m)?;
            let psi_tot = r.f64()?;
            let phi_tot = r.f64()?;
            let s_sq_tot = r.f64()?;
            let drift = read_drift(&mut r)?;
            stats.push(ClusterStats::from_raw_parts(
                psi, phi, mean_sum, size, psi_tot, phi_tot, s_sq_tot, drift,
            ));
        }
        let n_slots = r.usize()?;
        // Each slot still owes ≥ 5 bytes (flag + generation).
        r.ensure(n_slots, 5)?;
        let mut labels: Vec<Option<usize>> = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            match r.u8()? {
                0 => labels.push(None),
                1 => {
                    let c = r.usize()?;
                    if c >= k {
                        return Err(SnapshotError::Corrupt("label out of range"));
                    }
                    labels.push(Some(c));
                }
                _ => return Err(SnapshotError::Corrupt("unknown slot flag")),
            }
        }
        let live_slots = labels.iter().filter(|l| l.is_some()).count();
        if live_slots != live {
            return Err(SnapshotError::Corrupt(
                "live count does not match slot flags",
            ));
        }
        let mut gens = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            gens.push(r.u32()?);
        }
        let n_free = r.usize()?;
        if n_free != n_slots - live {
            return Err(SnapshotError::Corrupt("free-list length mismatch"));
        }
        r.ensure(n_free, 4)?;
        let mut free = Vec::with_capacity(n_free);
        let mut freed_seen = vec![false; n_slots];
        for _ in 0..n_free {
            let s = r.u32()?;
            let slot = s as usize;
            if slot >= n_slots || labels[slot].is_some() || freed_seen[slot] {
                return Err(SnapshotError::Corrupt("free-list entry invalid"));
            }
            freed_seen[slot] = true;
            free.push(s);
        }
        let store = match backend {
            StreamBackend::Objects => {
                let mut objects: Vec<Option<Moments>> = Vec::with_capacity(n_slots);
                for l in &labels {
                    if l.is_some() {
                        let mu = r.f64s(m)?;
                        let mu2 = r.f64s(m)?;
                        objects.push(Some(Moments::from_mu_mu2(mu, mu2)));
                    } else {
                        objects.push(None);
                    }
                }
                MomentStore::Objects {
                    objects,
                    free,
                    gens,
                }
            }
            StreamBackend::Slab => {
                // Rows owe `live × 2m` f64s; clamp before the arena
                // reserves `n_slots` rows.
                r.ensure(live.checked_mul(m).ok_or(SnapshotError::Truncated)?, 16)?;
                let mut arena = MomentArena::with_capacity(n_slots, m);
                let mut occupied = Vec::with_capacity(n_slots);
                for l in &labels {
                    if l.is_some() {
                        let mu = r.f64s(m)?;
                        let mu2 = r.f64s(m)?;
                        // The same canonical per-dimension fold the original
                        // insertion used — bit-identical row reconstruction.
                        arena.push_row_with(m, |d| (mu[d], mu2[d]));
                        occupied.push(true);
                    } else {
                        // Freed rows are never read; zeros make the
                        // snapshot-of-restore byte-identical.
                        arena.push_row_with(m, |_| (0.0, 0.0));
                        occupied.push(false);
                    }
                }
                MomentStore::Slab {
                    slab: SlabArena::from_parts(arena, occupied, free, gens),
                }
            }
        };
        if r.pos != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            m,
            k,
            stats,
            store,
            labels,
            live,
            pruning,
            epoch,
            versions,
            totals,
            cache: PruneCache::new(0, k),
            counters: PruneCounters::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::{UncertainObject, UnivariatePdf};

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::normal(c, 0.2),
            UnivariatePdf::uniform_centered(c, 0.6),
        ])
    }

    fn churned(backend: StreamBackend) -> IncrementalUcpc {
        let mut inc = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
        inc.set_pruning(PruningConfig::Bounds);
        let mut live = Vec::new();
        for i in 0..12 {
            live.push(inc.insert(&obj((i % 4) as f64 * 3.0)).unwrap());
        }
        inc.stabilize(4);
        for _ in 0..5 {
            let victim = live.remove(1);
            inc.remove(victim).unwrap();
            live.push(inc.insert(&obj(1.5)).unwrap());
        }
        inc.stabilize(4);
        inc
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let inc = churned(backend);
            let bytes = inc.snapshot();
            let back = IncrementalUcpc::restore(&bytes).unwrap();
            assert_eq!(back.backend(), backend);
            assert_eq!(back.len(), inc.len());
            assert_eq!(back.live_labels(), inc.live_labels());
            assert_eq!(
                back.objective().to_bits(),
                inc.objective().to_bits(),
                "objective must round-trip bitwise ({backend:?})"
            );
            // Snapshotting the restored engine reproduces the exact bytes.
            assert_eq!(back.snapshot(), bytes, "snapshot(restore(s)) == s");
        }
    }

    #[test]
    fn v2_roundtrip_is_bit_identical_and_deterministic() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let inc = churned(backend);
            let v2 = inc.snapshot_v2();
            let back = IncrementalUcpc::restore(&v2).unwrap();
            assert_eq!(back.backend(), backend);
            assert_eq!(back.live_labels(), inc.live_labels());
            assert_eq!(
                back.objective().to_bits(),
                inc.objective().to_bits(),
                "objective must round-trip bitwise ({backend:?})"
            );
            // Chunk boundaries are fixed constants: the v2 bytes of the
            // restored engine reproduce the original v2 bytes exactly.
            assert_eq!(back.snapshot_v2(), v2, "snapshot_v2(restore(s)) == s");
            // And both versions restore to the same engine.
            assert_eq!(back.snapshot(), inc.snapshot(), "v1 view agrees");
        }
    }

    #[test]
    fn v2_streams_rows_in_bounded_chunks() {
        // Enough live objects to force several ROWS chunks.
        let mut inc = IncrementalUcpc::with_backend(2, 3, StreamBackend::Slab).unwrap();
        for i in 0..(2 * ROWS_PER_CHUNK + 17) {
            inc.insert(&obj((i % 5) as f64)).unwrap();
        }
        let v2 = inc.snapshot_v2();
        let back = IncrementalUcpc::restore(&v2).unwrap();
        assert_eq!(back.snapshot_v2(), v2);
        assert_eq!(back.len(), inc.len());
    }

    #[test]
    fn v2_write_snapshot_surfaces_sink_faults() {
        let inc = churned(StreamBackend::Slab);
        let full = inc.snapshot_v2().len();
        // ENOSPC at any offset is a checked error, never a panic.
        for limit in [0, 11, 12, 40, full - 1] {
            let mut io = crate::wal::VecIo::limited(limit);
            let err = inc.write_snapshot(&mut io).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Io(_)),
                "limit {limit}: {err:?}"
            );
        }
    }

    #[test]
    fn v2_rejects_flips_truncations_and_reordering() {
        let inc = churned(StreamBackend::Slab);
        let v2 = inc.snapshot_v2();
        // Any truncation fails checked.
        for cut in [12, 13, 40, v2.len() / 2, v2.len() - 1] {
            assert!(IncrementalUcpc::restore(&v2[..cut]).is_err(), "cut {cut}");
        }
        // A flipped byte inside a chunk is caught by that chunk's CRC.
        let mut flipped = v2.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            IncrementalUcpc::restore(&flipped).unwrap_err(),
            SnapshotError::ChecksumMismatch(_) | SnapshotError::Corrupt(_)
        ));
        // Trailing bytes after END are rejected.
        let mut trailing = v2.clone();
        trailing.push(0);
        assert!(IncrementalUcpc::restore(&trailing).is_err());
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let inc = churned(StreamBackend::Slab);
        let bytes = inc.snapshot();
        assert_eq!(
            IncrementalUcpc::restore(b"not a snapshot at all...").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            IncrementalUcpc::restore(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
        assert_eq!(
            IncrementalUcpc::restore(&bytes[..bytes.len() - 1]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            IncrementalUcpc::restore(&trailing).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes")
        );
    }
}
