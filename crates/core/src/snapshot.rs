//! Versioned binary snapshot/restore for the streaming engine.
//!
//! [`IncrementalUcpc::snapshot`] serializes the complete logical state of a
//! live clustering — storage backend and its moment rows, slot generations
//! and free-list, labels, per-cluster [`ClusterStats`] (including the drift
//! accumulators), the pruning configuration, and the invalidation
//! watermarks (`epoch`, per-cluster `versions`, global drift totals) — into
//! a self-describing byte buffer. [`IncrementalUcpc::restore`] reassembles
//! an engine that is **bit-identical** to the original: continuing the same
//! edit script on the restored engine produces byte-for-byte the labels,
//! statistics bits and objective of the uninterrupted run, across both
//! backends, pruning on/off and every SIMD backend
//! (`tests/snapshot_roundtrip.rs`).
//!
//! # Why the round-trip is exact
//!
//! Every number crosses the boundary as raw IEEE-754 bits
//! ([`f64::to_bits`] / [`f64::from_bits`], little-endian), never through
//! decimal formatting. Statistics are installed verbatim through
//! `ClusterStats::from_raw_parts` — nothing is re-derived from the rows.
//! Slab rows are rebuilt from their serialized `(mu, mu2)` pairs through
//! the same canonical per-dimension fold every insertion uses, which is
//! bit-identical to the original write (see [`ucpc_uncertain::slab`] for
//! the derivation). Freed rows are *not* serialized and restore as zeros:
//! a freed row is never read (the free-list guarantees the next occupant
//! overwrites it whole), so its residual bytes are not logical state — and
//! zeroing them makes `snapshot(restore(s)) == s` hold bytewise.
//!
//! The prune cache's *entries* are deliberately excluded: a restored cache
//! starts empty and entries regrow invalid, which is always sound (an
//! invalid entry forces the exact full scan). The invalidation watermarks
//! — `epoch`, `versions`, drift totals — *are* carried over, so bounds
//! cached after restore are validated against exactly the history the
//! original engine would have used.
//!
//! # Format
//!
//! Integers are little-endian; `f64` is [`f64::to_bits`] little-endian.
//!
//! ```text
//! magic    8 × u8   "UCPCSNAP"
//! version  u32      1 (bumped on any layout change; readers reject others)
//! backend  u8       0 = Objects, 1 = Slab
//! pruning  u8       0 = Off, 1 = Bounds
//! m        u64      dimensions
//! k        u64      clusters
//! live     u64      live-object count (validated against the slot flags)
//! epoch    u64      prune-cache epoch
//! versions k × u64  per-cluster remove-direction versions
//! totals   6 × f64  global drift totals
//! stats    k × { size u64, psi m × f64, phi m × f64, mean_sum m × f64,
//!                psi_tot f64, phi_tot f64, s_sq_tot f64, drift 6 × f64 }
//! n_slots  u64      storage slots ever created (live-window high-water mark)
//! slots    n_slots × { live u8, label u64 if live }
//! gens     n_slots × u32
//! n_free   u64      free-list length (== n_slots − live)
//! free     n_free × u32   freed slots, LIFO order preserved
//! rows     live × { mu m × f64, mu2 m × f64 }   ascending slot order
//! ```

use crate::incremental::{IncrementalUcpc, MomentStore, StreamBackend};
use crate::objective::{ClusterDrift, ClusterStats};
use crate::pruning::{DriftTotals, PruneCache, PruneCounters, PruningConfig};
use std::fmt;
use ucpc_uncertain::{MomentArena, Moments, SlabArena};

const MAGIC: &[u8; 8] = b"UCPCSNAP";
const VERSION: u32 = 1;

/// Errors from [`IncrementalUcpc::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `UCPCSNAP` magic.
    BadMagic,
    /// The buffer's format version is not one this build reads.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared state was complete.
    Truncated,
    /// The buffer decodes to an inconsistent state (bad tag, slot count,
    /// label range, free-list shape, or trailing bytes).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "snapshot does not start with the UCPCSNAP magic"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot format version {v} is not supported (expected {VERSION})"
                )
            }
            Self::Truncated => write!(f, "snapshot buffer is truncated"),
            Self::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.f64(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("count overflows usize"))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, SnapshotError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

fn write_drift(w: &mut Writer, d: ClusterDrift) {
    w.f64(d.add_const);
    w.f64(d.add_size);
    w.f64(d.add_mean);
    w.f64(d.rem_const);
    w.f64(d.rem_size);
    w.f64(d.rem_mean);
}

fn read_drift(r: &mut Reader<'_>) -> Result<ClusterDrift, SnapshotError> {
    Ok(ClusterDrift {
        add_const: r.f64()?,
        add_size: r.f64()?,
        add_mean: r.f64()?,
        rem_const: r.f64()?,
        rem_size: r.f64()?,
        rem_mean: r.f64()?,
    })
}

impl IncrementalUcpc {
    /// Serializes the complete logical state into a versioned byte buffer.
    /// See the [module docs](crate::snapshot) for the format and the
    /// bit-identity argument.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: Vec::with_capacity(
                64 + self.k * (8 + (3 * self.m + 9) * 8)
                    + self.labels.len() * 13
                    + self.live * self.m * 16,
            ),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.u8(match self.backend() {
            StreamBackend::Objects => 0,
            StreamBackend::Slab => 1,
        });
        w.u8(match self.pruning {
            PruningConfig::Off => 0,
            PruningConfig::Bounds => 1,
        });
        w.u64(self.m as u64);
        w.u64(self.k as u64);
        w.u64(self.live as u64);
        w.u64(self.epoch);
        for &v in &self.versions {
            w.u64(v);
        }
        w.f64s(&self.totals.to_array());
        for s in &self.stats {
            w.u64(s.size() as u64);
            w.f64s(s.psi());
            w.f64s(s.phi());
            w.f64s(s.mean_sum());
            let (psi_tot, phi_tot, s_sq_tot) = s.scalar_aggregates();
            w.f64(psi_tot);
            w.f64(phi_tot);
            w.f64(s_sq_tot);
            write_drift(&mut w, s.drift());
        }
        let n_slots = self.labels.len();
        w.u64(n_slots as u64);
        for l in &self.labels {
            match l {
                Some(c) => {
                    w.u8(1);
                    w.u64(*c as u64);
                }
                None => w.u8(0),
            }
        }
        match &self.store {
            MomentStore::Objects {
                objects,
                free,
                gens,
            } => {
                for &g in gens {
                    w.u32(g);
                }
                w.u64(free.len() as u64);
                for &s in free {
                    w.u32(s);
                }
                for mo in objects.iter().flatten() {
                    w.f64s(mo.mu());
                    w.f64s(mo.mu2());
                }
            }
            MomentStore::Slab { slab } => {
                for slot in 0..n_slots {
                    w.u32(slab.generation(slot));
                }
                let free = slab.free_slots();
                w.u64(free.len() as u64);
                for &s in free {
                    w.u32(s);
                }
                for slot in 0..n_slots {
                    if slab.is_live(slot) {
                        let v = slab.view(slot);
                        w.f64s(v.mu);
                        w.f64s(v.mu2);
                    }
                }
            }
        }
        w.buf
    }

    /// Reassembles an engine from a [`Self::snapshot`] buffer,
    /// bit-identical to the engine that produced it. The prune cache
    /// restarts empty (entries regrow invalid — always sound); the
    /// pruning counters restart at zero.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let backend = match r.u8()? {
            0 => StreamBackend::Objects,
            1 => StreamBackend::Slab,
            _ => return Err(SnapshotError::Corrupt("unknown backend tag")),
        };
        let pruning = match r.u8()? {
            0 => PruningConfig::Off,
            1 => PruningConfig::Bounds,
            _ => return Err(SnapshotError::Corrupt("unknown pruning tag")),
        };
        let m = r.usize()?;
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("k must be at least 1"));
        }
        let live = r.usize()?;
        let epoch = r.u64()?;
        let mut versions = Vec::with_capacity(k);
        for _ in 0..k {
            versions.push(r.u64()?);
        }
        let totals_arr: [f64; 6] = r.f64s(6)?.try_into().expect("fixed-length read");
        let totals = DriftTotals::from_array(totals_arr);
        let mut stats = Vec::with_capacity(k);
        for _ in 0..k {
            let size = r.usize()?;
            let psi = r.f64s(m)?;
            let phi = r.f64s(m)?;
            let mean_sum = r.f64s(m)?;
            let psi_tot = r.f64()?;
            let phi_tot = r.f64()?;
            let s_sq_tot = r.f64()?;
            let drift = read_drift(&mut r)?;
            stats.push(ClusterStats::from_raw_parts(
                psi, phi, mean_sum, size, psi_tot, phi_tot, s_sq_tot, drift,
            ));
        }
        let n_slots = r.usize()?;
        let mut labels: Vec<Option<usize>> = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            match r.u8()? {
                0 => labels.push(None),
                1 => {
                    let c = r.usize()?;
                    if c >= k {
                        return Err(SnapshotError::Corrupt("label out of range"));
                    }
                    labels.push(Some(c));
                }
                _ => return Err(SnapshotError::Corrupt("unknown slot flag")),
            }
        }
        let live_slots = labels.iter().filter(|l| l.is_some()).count();
        if live_slots != live {
            return Err(SnapshotError::Corrupt(
                "live count does not match slot flags",
            ));
        }
        let mut gens = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            gens.push(r.u32()?);
        }
        let n_free = r.usize()?;
        if n_free != n_slots - live {
            return Err(SnapshotError::Corrupt("free-list length mismatch"));
        }
        let mut free = Vec::with_capacity(n_free);
        let mut freed_seen = vec![false; n_slots];
        for _ in 0..n_free {
            let s = r.u32()?;
            let slot = s as usize;
            if slot >= n_slots || labels[slot].is_some() || freed_seen[slot] {
                return Err(SnapshotError::Corrupt("free-list entry invalid"));
            }
            freed_seen[slot] = true;
            free.push(s);
        }
        let store = match backend {
            StreamBackend::Objects => {
                let mut objects: Vec<Option<Moments>> = Vec::with_capacity(n_slots);
                for l in &labels {
                    if l.is_some() {
                        let mu = r.f64s(m)?;
                        let mu2 = r.f64s(m)?;
                        objects.push(Some(Moments::from_mu_mu2(mu, mu2)));
                    } else {
                        objects.push(None);
                    }
                }
                MomentStore::Objects {
                    objects,
                    free,
                    gens,
                }
            }
            StreamBackend::Slab => {
                let mut arena = MomentArena::with_capacity(n_slots, m);
                let mut occupied = Vec::with_capacity(n_slots);
                for l in &labels {
                    if l.is_some() {
                        let mu = r.f64s(m)?;
                        let mu2 = r.f64s(m)?;
                        // The same canonical per-dimension fold the original
                        // insertion used — bit-identical row reconstruction.
                        arena.push_row_with(m, |d| (mu[d], mu2[d]));
                        occupied.push(true);
                    } else {
                        // Freed rows are never read; zeros make the
                        // snapshot-of-restore byte-identical.
                        arena.push_row_with(m, |_| (0.0, 0.0));
                        occupied.push(false);
                    }
                }
                MomentStore::Slab {
                    slab: SlabArena::from_parts(arena, occupied, free, gens),
                }
            }
        };
        if r.pos != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            m,
            k,
            stats,
            store,
            labels,
            live,
            pruning,
            epoch,
            versions,
            totals,
            cache: PruneCache::new(0, k),
            counters: PruneCounters::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::{UncertainObject, UnivariatePdf};

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![
            UnivariatePdf::normal(c, 0.2),
            UnivariatePdf::uniform_centered(c, 0.6),
        ])
    }

    fn churned(backend: StreamBackend) -> IncrementalUcpc {
        let mut inc = IncrementalUcpc::with_backend(2, 3, backend).unwrap();
        inc.set_pruning(PruningConfig::Bounds);
        let mut live = Vec::new();
        for i in 0..12 {
            live.push(inc.insert(&obj((i % 4) as f64 * 3.0)).unwrap());
        }
        inc.stabilize(4);
        for _ in 0..5 {
            let victim = live.remove(1);
            inc.remove(victim).unwrap();
            live.push(inc.insert(&obj(1.5)).unwrap());
        }
        inc.stabilize(4);
        inc
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let inc = churned(backend);
            let bytes = inc.snapshot();
            let back = IncrementalUcpc::restore(&bytes).unwrap();
            assert_eq!(back.backend(), backend);
            assert_eq!(back.len(), inc.len());
            assert_eq!(back.live_labels(), inc.live_labels());
            assert_eq!(
                back.objective().to_bits(),
                inc.objective().to_bits(),
                "objective must round-trip bitwise ({backend:?})"
            );
            // Snapshotting the restored engine reproduces the exact bytes.
            assert_eq!(back.snapshot(), bytes, "snapshot(restore(s)) == s");
        }
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let inc = churned(StreamBackend::Slab);
        let bytes = inc.snapshot();
        assert_eq!(
            IncrementalUcpc::restore(b"not a snapshot at all...").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            IncrementalUcpc::restore(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
        assert_eq!(
            IncrementalUcpc::restore(&bytes[..bytes.len() - 1]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            IncrementalUcpc::restore(&trailing).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes")
        );
    }
}
