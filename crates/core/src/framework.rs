//! Shared partitional-clustering framework: partitions, errors, and the
//! algorithm trait every clusterer in the workspace implements.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;
use ucpc_uncertain::UncertainObject;

/// Errors shared by every clustering algorithm in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The input dataset is empty.
    EmptyDataset,
    /// The requested number of clusters is zero or exceeds the dataset size.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Dataset size.
        n: usize,
    },
    /// Objects in the dataset have differing dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the first object.
        expected: usize,
        /// Dimensionality of the offending object.
        found: usize,
        /// Index of the offending object.
        index: usize,
    },
    /// A caller-supplied label vector does not have one label per object.
    LabelLengthMismatch {
        /// Number of objects in the dataset.
        expected: usize,
        /// Number of labels supplied.
        found: usize,
    },
    /// A caller-supplied label lies outside `0..k`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The requested number of clusters.
        k: usize,
        /// Index of the object carrying the offending label.
        index: usize,
    },
    /// A streaming [`ObjectHandle`](ucpc_uncertain::ObjectHandle) names an
    /// object that is gone: already removed, or its slot recycled to a
    /// later occupant. Both streaming backends return this identically.
    StaleHandle {
        /// The handle's storage slot.
        slot: u32,
        /// The generation the handle was issued under.
        generation: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyDataset => write!(f, "dataset is empty"),
            ClusterError::InvalidK { k, n } => {
                write!(f, "invalid cluster count k={k} for dataset of size n={n}")
            }
            ClusterError::DimensionMismatch {
                expected,
                found,
                index,
            } => write!(
                f,
                "object {index} has {found} dimensions, expected {expected}"
            ),
            ClusterError::LabelLengthMismatch { expected, found } => write!(
                f,
                "label vector has {found} entries, expected one per object ({expected})"
            ),
            ClusterError::LabelOutOfRange { label, k, index } => write!(
                f,
                "label {label} of object {index} is out of range for k={k}"
            ),
            ClusterError::StaleHandle { slot, generation } => write!(
                f,
                "stale handle: slot {slot} generation {generation} is not live"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Validates a dataset/k pair and returns the common dimensionality `m`.
pub fn validate_input(data: &[UncertainObject], k: usize) -> Result<usize, ClusterError> {
    if data.is_empty() {
        return Err(ClusterError::EmptyDataset);
    }
    if k == 0 || k > data.len() {
        return Err(ClusterError::InvalidK { k, n: data.len() });
    }
    let m = data[0].dims();
    for (i, o) in data.iter().enumerate().skip(1) {
        if o.dims() != m {
            return Err(ClusterError::DimensionMismatch {
                expected: m,
                found: o.dims(),
                index: i,
            });
        }
    }
    Ok(m)
}

/// Validates a caller-supplied initial partition: one label per object, every
/// label in `0..k`.
pub fn validate_labels(labels: &[usize], n: usize, k: usize) -> Result<(), ClusterError> {
    if labels.len() != n {
        return Err(ClusterError::LabelLengthMismatch {
            expected: n,
            found: labels.len(),
        });
    }
    for (index, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(ClusterError::LabelOutOfRange { label, k, index });
        }
    }
    Ok(())
}

/// A hard partition of `n` objects into at most `k` clusters.
///
/// `labels[i]` is the cluster index of object `i`, in `0..k`. Clusters may be
/// empty (e.g. density-based algorithms may produce fewer groups than
/// requested); [`Clustering::compact`] renumbers away empty clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<usize>,
    k: usize,
}

impl Clustering {
    /// Builds a clustering from labels. Panics if any label is `>= k`.
    pub fn new(labels: Vec<usize>, k: usize) -> Self {
        assert!(
            labels.iter().all(|&l| l < k),
            "label out of range: all labels must be < k={k}"
        );
        Self { labels, k }
    }

    /// The trivial single-cluster partition of `n` objects.
    pub fn single(n: usize) -> Self {
        Self::new(vec![0; n], 1)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the partition covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters `k` (including possibly empty ones).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Cluster label of object `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Members of every cluster: `members()[c]` lists the object indices of
    /// cluster `c`.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.k];
        for &l in &self.labels {
            out[l] += 1;
        }
        out
    }

    /// Number of non-empty clusters.
    pub fn non_empty(&self) -> usize {
        self.sizes().iter().filter(|&&s| s > 0).count()
    }

    /// Renumbers clusters so that labels are consecutive and every cluster is
    /// non-empty; returns the new clustering.
    pub fn compact(&self) -> Clustering {
        let sizes = self.sizes();
        let mut remap = vec![usize::MAX; self.k];
        let mut next = 0;
        for (c, &s) in sizes.iter().enumerate() {
            if s > 0 {
                remap[c] = next;
                next += 1;
            }
        }
        Clustering::new(self.labels.iter().map(|&l| remap[l]).collect(), next.max(1))
    }
}

/// The interface shared by UCPC and every baseline: partition `data` into
/// (at most) `k` clusters.
///
/// Randomness is injected so that the experiment harness can average over
/// multiple seeded runs, exactly as the paper averages its measurements over
/// 50 runs to neutralize non-deterministic initialization.
pub trait UncertainClusterer {
    /// Short algorithm name as used in the paper's tables ("UCPC", "UKM", ...).
    fn name(&self) -> &'static str;

    /// Clusters the dataset.
    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    #[test]
    fn clustering_members_and_sizes() {
        let c = Clustering::new(vec![0, 1, 0, 2, 1], 3);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
        assert_eq!(c.members()[0], vec![0, 2]);
        assert_eq!(c.non_empty(), 3);
    }

    #[test]
    fn compact_removes_empty_clusters() {
        let c = Clustering::new(vec![0, 3, 0, 3], 4);
        let compacted = c.compact();
        assert_eq!(compacted.k(), 2);
        assert_eq!(compacted.labels(), &[0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Clustering::new(vec![0, 5], 2);
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        assert_eq!(validate_input(&[], 2), Err(ClusterError::EmptyDataset));
        let data = vec![UncertainObject::deterministic(&[0.0])];
        assert_eq!(
            validate_input(&data, 0),
            Err(ClusterError::InvalidK { k: 0, n: 1 })
        );
        assert_eq!(
            validate_input(&data, 2),
            Err(ClusterError::InvalidK { k: 2, n: 1 })
        );
        assert_eq!(validate_input(&data, 1), Ok(1));
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let data = vec![
            UncertainObject::deterministic(&[0.0, 1.0]),
            UncertainObject::new(vec![UnivariatePdf::normal(0.0, 1.0)]),
        ];
        assert_eq!(
            validate_input(&data, 1),
            Err(ClusterError::DimensionMismatch {
                expected: 2,
                found: 1,
                index: 1
            })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = ClusterError::InvalidK { k: 9, n: 3 };
        assert!(e.to_string().contains("k=9"));
    }
}
