//! Parallel UCPC: a multi-threaded variant of Algorithm 1's relocation pass.
//!
//! The sequential pass applies relocations immediately (Hartigan-style),
//! which is inherently order-dependent. The parallel variant splits each pass
//! into two phases:
//!
//! 1. **propose** — worker threads scan disjoint shards of the dataset
//!    against a frozen snapshot of the cluster statistics and emit the best
//!    relocation per object (each candidate one fused dot product via the
//!    scalar-aggregate kernel form of Corollary 1; moments are read from a
//!    shared flat [`MomentArena`]);
//! 2. **apply** — proposals are re-validated sequentially against the live
//!    statistics (a proposal is applied only if it still strictly decreases
//!    the objective) so monotone descent — Proposition 4's termination
//!    argument — is preserved exactly.
//!
//! The result is deterministic for a fixed shard order and matches the
//! sequential algorithm's convergence guarantees, trading some per-pass
//! greediness for scan parallelism. An ablation benchmark compares the two.

use crate::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use crate::init::Initializer;
use crate::objective::{total_objective, ClusterStats};
use rand::RngCore;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Configuration of the parallel UCPC search.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_core::parallel::ParallelUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let data: Vec<UncertainObject> = [0.0, 0.3, 7.0, 7.3]
///     .iter()
///     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let result = ParallelUcpc { threads: 2, ..Default::default() }
///     .run(&data, 2, &mut rng)
///     .unwrap();
/// assert!(result.converged);
/// assert_eq!(result.clustering.label(0), result.clustering.label(1));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelUcpc {
    /// Initial-partition strategy.
    pub init: Initializer,
    /// Cap on propose/apply passes.
    pub max_iters: usize,
    /// Minimum objective decrease for a relocation to be applied.
    pub tolerance: f64,
    /// Worker threads for the propose phase (`0` = available parallelism).
    pub threads: usize,
}

impl Default for ParallelUcpc {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
            tolerance: 1e-9,
            threads: 0,
        }
    }
}

/// Outcome of a parallel UCPC run.
#[derive(Debug, Clone)]
pub struct ParallelUcpcResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final objective `Σ_C J(C)`.
    pub objective: f64,
    /// Passes executed.
    pub iterations: usize,
    /// Relocations applied (after re-validation).
    pub applied: usize,
    /// Proposals rejected by re-validation (stale against live statistics).
    pub rejected: usize,
    /// Whether a pass with no applicable proposal was reached.
    pub converged: bool,
}

impl ParallelUcpc {
    /// Runs the parallel search.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<ParallelUcpcResult, ClusterError> {
        let m = validate_input(data, k)?;
        let mut labels = self.init.initial_partition(data, k, rng);

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };

        let arena = MomentArena::from_objects(data);
        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }

        let mut iterations = 0usize;
        let mut applied = 0usize;
        let mut rejected = 0usize;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;

            // Phase 1: propose against a frozen snapshot, reading moments
            // from the shared arena.
            let snapshot = stats.clone();
            let labels_ro: &[usize] = &labels;
            let chunk = arena.len().div_ceil(threads).max(1);

            let proposals: Vec<Option<(usize, usize)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut start = 0usize;
                while start < arena.len() {
                    let end = (start + chunk).min(arena.len());
                    let snapshot = &snapshot;
                    let arena = &arena;
                    let tol = self.tolerance;
                    handles.push(scope.spawn(move || {
                        (start..end)
                            .map(|i| {
                                let src = labels_ro[i];
                                if snapshot[src].size() <= 1 {
                                    return None;
                                }
                                let v = arena.view(i);
                                let removal_gain = snapshot[src].delta_j_remove(&v);
                                let mut best: Option<(usize, f64)> = None;
                                for (dst, stat) in snapshot.iter().enumerate() {
                                    if dst == src {
                                        continue;
                                    }
                                    let delta = removal_gain + stat.delta_j_add(&v);
                                    if best.is_none_or(|(_, bd)| delta < bd) {
                                        best = Some((dst, delta));
                                    }
                                }
                                best.filter(|&(_, d)| d < -tol).map(|(dst, _)| (i, dst))
                            })
                            .collect::<Vec<_>>()
                    }));
                    start = end;
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("propose worker panicked"))
                    .collect()
            });

            // Phase 2: sequential re-validation + application.
            let mut moved = false;
            for proposal in proposals.into_iter().flatten() {
                let (i, dst) = proposal;
                let src = labels[i];
                if src == dst || stats[src].size() <= 1 {
                    rejected += 1;
                    continue;
                }
                let v = arena.view(i);
                let delta = stats[src].delta_j_remove(&v) + stats[dst].delta_j_add(&v);
                if delta < -self.tolerance {
                    stats[src].remove_view(&v);
                    stats[dst].add_view(&v);
                    labels[i] = dst;
                    applied += 1;
                    moved = true;
                } else {
                    rejected += 1;
                }
            }

            if !moved {
                converged = true;
                break;
            }
        }

        Ok(ParallelUcpcResult {
            clustering: Clustering::new(labels, k),
            objective: total_objective(&stats),
            iterations,
            applied,
            rejected,
            converged,
        })
    }
}

impl UncertainClusterer for ParallelUcpc {
    fn name(&self) -> &'static str {
        "UCPC-par"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucpc::Ucpc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs(n_per: usize) -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 25.0, 50.0] {
            for i in 0..n_per {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 5) as f64 * 0.2, 0.3),
                    UnivariatePdf::normal(c, 0.3),
                ]));
            }
        }
        data
    }

    #[test]
    fn recovers_blobs_like_the_sequential_algorithm() {
        let data = blobs(20);
        let mut rng = StdRng::seed_from_u64(31);
        let r = ParallelUcpc::default().run(&data, 3, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        for g in 0..3 {
            let group = &l[g * 20..(g + 1) * 20];
            assert!(group.iter().all(|&x| x == group[0]), "group {g} split");
        }
    }

    #[test]
    fn objective_matches_sequential_quality() {
        // Both searches are greedy local descents with different move
        // orders, so they only provably agree when the initial partition
        // lies in the basin of the same (here: global) optimum. The seed is
        // pinned to such a configuration; near-tie seeds can legitimately
        // land sequential and parallel in different local minima and are
        // not a regression.
        let data = blobs(15);
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let seq = Ucpc::default().run(&data, 3, &mut r1).unwrap();
        let par = ParallelUcpc::default().run(&data, 3, &mut r2).unwrap();
        assert!(
            seq.converged && par.converged,
            "both searches must converge"
        );
        assert!(
            (par.objective - seq.objective).abs() < 1e-6 * (1.0 + seq.objective),
            "parallel {} vs sequential {}",
            par.objective,
            seq.objective
        );
    }

    #[test]
    fn objective_is_consistent_with_final_labels() {
        let data = blobs(10);
        let mut rng = StdRng::seed_from_u64(7);
        let r = ParallelUcpc {
            threads: 3,
            ..Default::default()
        }
        .run(&data, 4, &mut rng)
        .unwrap();
        let rebuilt: f64 = r
            .clustering
            .members()
            .iter()
            .filter(|ms| !ms.is_empty())
            .map(|ms| ClusterStats::from_members(ms.iter().map(|&i| &data[i])).j())
            .sum();
        assert!((r.objective - rebuilt).abs() < 1e-6);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let data = blobs(12);
        let run = |threads| {
            let mut rng = StdRng::seed_from_u64(9);
            ParallelUcpc {
                threads,
                ..Default::default()
            }
            .run(&data, 3, &mut rng)
            .unwrap()
            .clustering
        };
        assert_eq!(
            run(1).labels(),
            run(4).labels(),
            "shard count must not change result"
        );
    }

    #[test]
    fn stale_proposals_are_rejected_not_applied_blindly() {
        // With many near-duplicate objects, snapshot proposals can go stale;
        // the run must still terminate with a valid partition.
        let data: Vec<UncertainObject> = (0..40)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal((i % 4) as f64 * 0.01, 1.0)]))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let r = ParallelUcpc::default().run(&data, 4, &mut rng).unwrap();
        assert_eq!(r.clustering.len(), 40);
        assert!(r.converged || r.iterations == 200);
    }
}
