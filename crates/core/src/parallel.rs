//! Parallel UCPC: a multi-threaded variant of Algorithm 1's relocation pass.
//!
//! The sequential pass applies relocations immediately (Hartigan-style),
//! which is inherently order-dependent. The parallel variant splits each pass
//! into two phases:
//!
//! 1. **propose** — worker threads scan shards of the dataset against the
//!    pass-start cluster statistics and emit the best relocation per object
//!    (each candidate one fused dot product via the scalar-aggregate kernel
//!    form of Corollary 1; moments are read from a shared flat
//!    [`MomentArena`]);
//! 2. **apply** — proposals are re-validated sequentially against the live
//!    statistics (a proposal is applied only if it still strictly decreases
//!    the objective) so monotone descent — Proposition 4's termination
//!    argument — is preserved exactly.
//!
//! Two propose-phase backends share that structure, selected by
//! [`ParallelBackend`] (env knob `UCPC_PARALLEL`):
//!
//! * [`ParallelBackend::Even`] — the reference layout: one contiguous
//!   `n/threads` chunk per worker, statically assigned, scanned against a
//!   per-pass *clone* of the cluster statistics, and every surviving
//!   proposal re-priced from scratch during apply. This is the PR 2/3 code
//!   path, kept bit-exact as the baseline the stealing backend is tested
//!   against.
//! * [`ParallelBackend::Steal`] — size-adaptive shards (roughly L2-sized
//!   blocks of `mu` rows, see [`crate::scheduler::steal_shard_rows`]) drained
//!   through a work-stealing [`WorkPool`], so skewed per-object cost — a
//!   pruning tier-0 skip is one cache line while a full scan is `k` fused
//!   dot products — no longer leaves workers idle behind a static split.
//!   The per-pass statistics clone is gone: workers read the live
//!   [`SharedStats`] directly (safe: the apply phase is quiescent while
//!   workers run), and each proposal records the per-cluster *version*
//!   counters it priced against. The sequential apply phase bumps a
//!   cluster's version on every mutation, so a proposal whose source and
//!   destination versions are unchanged is provably priced against the
//!   exact current statistics and is applied without re-pricing; only
//!   proposals staled by an earlier relocation in the same pass pay the two
//!   re-validation dot products.
//!
//! Both backends evaluate every object against bit-identical pass-start
//! statistics with the identical kernel calls, collect proposals indexed by
//! object, and apply them in ascending object order with the same
//! strictly-decreasing test — so the relocation sequence, and therefore the
//! final labels, are byte-identical across backends and across any thread
//! count (pinned end to end by `tests/parallel_determinism.rs`). When
//! candidate pruning is on, each shard carries its own [`PruneShard`] window
//! of the cache, which follows the shard to whichever worker claims it.

use crate::framework::{validate_labels, ClusterError, Clustering, UncertainClusterer};
use crate::init::Initializer;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_relocation, best_candidate, best_candidate_with_second, fp_scale, DriftTotals,
    PruneCache, PruneCounters, PruneDecision, PruneShard, PruningConfig,
};
use crate::scheduler::{resolve_threads, steal_shard_rows, WorkPool};
use rand::RngCore;
use ucpc_uncertain::arena::MomentView;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Propose-phase scheduling/validation strategy of [`ParallelUcpc`].
///
/// The default honours the `UCPC_PARALLEL` environment variable (`even` or
/// `steal`, unset ⇒ `Steal`), mirroring `UCPC_PRUNING`/`UCPC_SIMD`; both
/// backends produce byte-identical labels, so the knob only changes speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelBackend {
    /// Fixed even chunks, per-pass statistics snapshot, full apply-phase
    /// re-validation — the PR 2/3 reference path.
    Even,
    /// Work-stealing size-adaptive shards over snapshot-free versioned
    /// statistics ([`SharedStats`]).
    Steal,
}

impl ParallelBackend {
    /// Parses one knob value (`"even"` ⇒ [`Self::Even`], `"steal"` ⇒
    /// [`Self::Steal`], anything else ⇒ `None`) — the pure worker behind
    /// [`Self::from_env`], exposed for env-free unit tests.
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "even" => Some(Self::Even),
            "steal" => Some(Self::Steal),
            _ => None,
        }
    }

    /// Reads the `UCPC_PARALLEL` environment knob through the shared
    /// warn-and-fall-back reader ([`ucpc_uncertain::env::read_knob`]): a
    /// set but invalid value warns on stderr and yields `None` (callers
    /// fall back to their default), instead of failing silently.
    pub fn from_env() -> Option<Self> {
        ucpc_uncertain::env::read_knob("UCPC_PARALLEL", "even|steal", Self::parse)
    }

    /// The knob spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Self::Even => "even",
            Self::Steal => "steal",
        }
    }
}

impl Default for ParallelBackend {
    fn default() -> Self {
        Self::from_env().unwrap_or(Self::Steal)
    }
}

/// Versioned cluster aggregates: the snapshot-free substitute for the
/// per-pass `ClusterStats` clone.
///
/// Each cluster's sufficient statistics (the Ψ/Φ/S₂ scalars and the
/// `mean_sum`/`norm` rows inside [`ClusterStats`]) are paired with a
/// monotonically increasing version counter. Propose workers read the
/// statistics through a shared reference — race-free because the apply
/// phase, the only mutator, is sequential and strictly alternates with the
/// propose phase — and record the versions they priced against. The apply
/// phase bumps both affected versions on every relocation, which is exactly
/// the seqlock write-side discipline collapsed onto a phase barrier: a
/// version pair that is unchanged at validation time proves the proposal's
/// delta is still the bit-exact value a fresh evaluation would produce, so
/// it is applied without re-pricing.
#[derive(Debug, Clone)]
pub struct SharedStats {
    stats: Vec<ClusterStats>,
    versions: Vec<u64>,
}

impl SharedStats {
    /// Wraps freshly built per-cluster statistics, all versions zero.
    pub fn new(stats: Vec<ClusterStats>) -> Self {
        let versions = vec![0; stats.len()];
        Self { stats, versions }
    }

    /// The live per-cluster statistics.
    pub fn stats(&self) -> &[ClusterStats] {
        &self.stats
    }

    /// All version counters, indexed by cluster.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Version counter of cluster `c`.
    pub fn version(&self, c: usize) -> u64 {
        self.versions[c]
    }

    /// Applies one relocation (remove `v` from `src`, add it to `dst`) and
    /// bumps both clusters' re-pricing versions. With `pruning`, the
    /// drift-tracked updates of [`crate::pruning`] run, folding into the
    /// supplied totals and bumping the supplied per-cluster
    /// *invalidation* versions on small-size transitions (surgical
    /// invalidation — distinct from the re-pricing versions this struct
    /// owns, which move on *every* relocation); without, the plain updates
    /// run.
    pub fn apply_relocation(
        &mut self,
        src: usize,
        dst: usize,
        v: &MomentView<'_>,
        pruning: Option<(&mut DriftTotals, &mut [u64])>,
    ) {
        match pruning {
            Some((totals, inval_versions)) => {
                apply_tracked_relocation(&mut self.stats, src, dst, v, totals, inval_versions);
            }
            None => {
                self.stats[src].remove_view(v);
                self.stats[dst].add_view(v);
            }
        }
        self.versions[src] = self.versions[src].wrapping_add(1);
        self.versions[dst] = self.versions[dst].wrapping_add(1);
    }
}

/// Configuration of the parallel UCPC search.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_core::parallel::ParallelUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let data: Vec<UncertainObject> = [0.0, 0.3, 7.0, 7.3]
///     .iter()
///     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let result = ParallelUcpc { threads: 2, ..Default::default() }
///     .run(&data, 2, &mut rng)
///     .unwrap();
/// assert!(result.converged);
/// assert_eq!(result.clustering.label(0), result.clustering.label(1));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelUcpc {
    /// Initial-partition strategy.
    pub init: Initializer,
    /// Cap on propose/apply passes.
    pub max_iters: usize,
    /// Minimum objective decrease for a relocation to be applied.
    pub tolerance: f64,
    /// Worker threads for the propose phase (`0` = the `UCPC_THREADS` knob,
    /// falling back to available parallelism; see
    /// [`crate::scheduler::resolve_threads`]).
    pub threads: usize,
    /// Propose-phase backend (see [`ParallelBackend`]; label-identical, the
    /// knob only changes speed).
    pub backend: ParallelBackend,
    /// Candidate pruning for the propose phase. Each worker evaluates the
    /// drift bounds of [`crate::pruning`] against the same pass-start
    /// statistics it proposes against, over the cache window of whichever
    /// shard it claims; the proposal stream is provably identical to the
    /// unpruned one, so the final labels are byte-identical.
    pub pruning: PruningConfig,
}

impl Default for ParallelUcpc {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
            tolerance: 1e-9,
            threads: 0,
            backend: ParallelBackend::default(),
            pruning: PruningConfig::default(),
        }
    }
}

/// Outcome of a parallel UCPC run.
#[derive(Debug, Clone)]
pub struct ParallelUcpcResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final objective `Σ_C J(C)`.
    pub objective: f64,
    /// Passes executed.
    pub iterations: usize,
    /// Relocations applied (after re-validation).
    pub applied: usize,
    /// Proposals rejected by re-validation (stale against live statistics).
    pub rejected: usize,
    /// Whether a pass with no applicable proposal was reached.
    pub converged: bool,
    /// Candidate-pruning counters summed over all propose phases (all zero
    /// when pruning is off).
    pub pruning: PruneCounters,
    /// Shards claimed by a worker that did not own them (always zero on the
    /// [`ParallelBackend::Even`] backend).
    pub steals: usize,
    /// Proposals whose delta had to be re-priced during apply. On
    /// [`ParallelBackend::Even`] this counts every surviving proposal (the
    /// reference path re-validates unconditionally); on
    /// [`ParallelBackend::Steal`] only proposals staled by an earlier
    /// relocation in the same pass.
    pub revalidated: usize,
}

/// One object's surviving proposal: the destination, the priced delta, and
/// the source/destination versions it was priced against.
#[derive(Debug, Clone, Copy)]
struct Proposal {
    dst: usize,
    delta: f64,
    src_ver: u64,
    dst_ver: u64,
}

/// One schedulable unit of the propose phase: a contiguous object range,
/// its slice of the proposal output, and (pruning on) its window of the
/// prune cache. The window travels with the task to whichever worker claims
/// it — stolen shards keep their cache rows.
struct ShardTask<'a> {
    start: usize,
    prune: Option<PruneShard<'a>>,
    out: &'a mut [Option<Proposal>],
}

/// The read-only pass context shared by every propose worker.
struct PassCtx<'a> {
    stats: &'a [ClusterStats],
    versions: &'a [u64],
    arena: &'a MomentArena,
    labels: &'a [usize],
    tolerance: f64,
    /// Per-cluster remove-direction invalidation watermarks (see
    /// [`crate::pruning`]); unrelated to the re-pricing `versions` above.
    prune_versions: &'a [u64],
    totals: DriftTotals,
    scale: f64,
}

impl ParallelUcpc {
    /// Runs the parallel search.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<ParallelUcpcResult, ClusterError> {
        crate::framework::validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        self.run_on_arena(&MomentArena::from_objects(data), k, labels)
    }

    /// Runs the parallel search directly on a prebuilt moment arena — the
    /// arena-native entry point the bench and dataset drivers use so batch
    /// inputs never round-trip through `UncertainObject`. Labels must be one
    /// per arena row, each in `0..k`.
    pub fn run_on_arena(
        &self,
        arena: &MomentArena,
        k: usize,
        mut labels: Vec<usize>,
    ) -> Result<ParallelUcpcResult, ClusterError> {
        if arena.is_empty() {
            return Err(ClusterError::EmptyDataset);
        }
        if k == 0 || k > arena.len() {
            return Err(ClusterError::InvalidK { k, n: arena.len() });
        }
        validate_labels(&labels, arena.len(), k)?;

        let m = arena.dims();
        let n = arena.len();
        let threads = resolve_threads(self.threads);

        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }
        let mut shared = SharedStats::new(stats);

        let mut iterations = 0usize;
        let mut applied = 0usize;
        let mut rejected = 0usize;
        let mut converged = false;
        let mut steals = 0usize;
        let mut revalidated = 0usize;
        let mut counters = PruneCounters::default();
        let mut prune_versions = vec![0u64; k];
        let mut totals = DriftTotals::default();
        let mut cache = self.pruning.is_enabled().then(|| PruneCache::new(n, k));
        // One proposal slot per object, reused (re-blanked) across passes so
        // the relocation loop allocates nothing per pass.
        let mut proposals: Vec<Option<Proposal>> = vec![None; n];

        while iterations < self.max_iters {
            iterations += 1;

            // Phase 1: propose against the pass-start statistics, reading
            // moments from the shared arena. The even backend scans a cloned
            // snapshot; the steal backend reads the live SharedStats, whose
            // bits are identical (the apply phase is quiescent). Each task
            // owns one shard of the prune cache and evaluates the drift
            // bounds against the same pass-start state it scans, so
            // proposals — pruned or not, stolen or not — are deterministic
            // functions of that state.
            let chunk = match self.backend {
                ParallelBackend::Even => n.div_ceil(threads).max(1),
                ParallelBackend::Steal => steal_shard_rows(n, m, threads),
            };
            let n_chunks = n.div_ceil(chunk);
            let scale = if cache.is_some() {
                fp_scale(shared.stats())
            } else {
                0.0
            };
            let snapshot: Option<Vec<ClusterStats>> =
                matches!(self.backend, ParallelBackend::Even).then(|| shared.stats().to_vec());

            proposals.fill(None);
            {
                let shards: Vec<Option<PruneShard<'_>>> = match cache.as_mut() {
                    Some(c) => c.shards(chunk).into_iter().map(Some).collect(),
                    None => (0..n_chunks).map(|_| None).collect(),
                };
                let mut tasks = Vec::with_capacity(n_chunks);
                let mut rest: &mut [Option<Proposal>] = &mut proposals;
                for (ci, prune) in shards.into_iter().enumerate() {
                    let take = chunk.min(rest.len());
                    let (out, tail) = rest.split_at_mut(take);
                    rest = tail;
                    tasks.push(ShardTask {
                        start: ci * chunk,
                        prune,
                        out,
                    });
                }
                let pool = WorkPool::new(tasks, threads);
                let ctx = PassCtx {
                    stats: snapshot.as_deref().unwrap_or(shared.stats()),
                    versions: shared.versions(),
                    arena,
                    labels: &labels,
                    tolerance: self.tolerance,
                    prune_versions: &prune_versions,
                    totals,
                    scale,
                };
                let stealing = matches!(self.backend, ParallelBackend::Steal);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|w| {
                            let pool = &pool;
                            let ctx = &ctx;
                            scope.spawn(move || {
                                let mut worker_counters = PruneCounters::default();
                                loop {
                                    let task = if stealing {
                                        pool.claim(w)
                                    } else {
                                        pool.claim_own(w)
                                    };
                                    let Some(mut task) = task else { break };
                                    propose_shard(&mut task, ctx, &mut worker_counters);
                                }
                                worker_counters
                            })
                        })
                        .collect();
                    for h in handles {
                        counters.merge(h.join().expect("propose worker panicked"));
                    }
                });
                steals += pool.steals();
            }

            // Phase 2: sequential validation + application, in ascending
            // object order on both backends. A steal-backend proposal whose
            // source and destination versions are untouched is applied on
            // its priced delta (bit-exactly what re-pricing would return);
            // anything else — and every even-backend proposal — is
            // re-priced against the live statistics.
            let mut moved = false;
            for (i, p) in proposals.iter().enumerate() {
                let Some(p) = p else { continue };
                let src = labels[i];
                if src == p.dst || shared.stats()[src].size() <= 1 {
                    rejected += 1;
                    continue;
                }
                let v = arena.view(i);
                let fresh = matches!(self.backend, ParallelBackend::Steal)
                    && shared.version(src) == p.src_ver
                    && shared.version(p.dst) == p.dst_ver;
                let delta = if fresh {
                    p.delta
                } else {
                    revalidated += 1;
                    shared.stats()[src].delta_j_remove(&v) + shared.stats()[p.dst].delta_j_add(&v)
                };
                if delta < -self.tolerance {
                    let pruned = cache.is_some();
                    shared.apply_relocation(
                        src,
                        p.dst,
                        &v,
                        pruned.then(|| (&mut totals, &mut prune_versions[..])),
                    );
                    if let Some(c) = cache.as_mut() {
                        c.invalidate(i);
                    }
                    labels[i] = p.dst;
                    applied += 1;
                    moved = true;
                } else {
                    rejected += 1;
                }
            }

            if !moved {
                converged = true;
                break;
            }
        }

        Ok(ParallelUcpcResult {
            clustering: Clustering::new(labels, k),
            objective: total_objective(shared.stats()),
            iterations,
            applied,
            rejected,
            converged,
            pruning: counters,
            steals,
            revalidated,
        })
    }
}

/// One propose-phase task: scans the shard's object range against the
/// pass-start statistics, taking the pruning shortcuts when a cache window
/// is attached. Every proposal (and non-proposal) is identical to what the
/// unpruned scan of the same range would emit — tier 1 only fires when the
/// scan provably proposes nothing, tier 2 recomputes the confirmed argmin's
/// delta with the exact kernel calls of the full scan.
fn propose_shard(task: &mut ShardTask<'_>, ctx: &PassCtx<'_>, counters: &mut PruneCounters) {
    for (off, slot) in task.out.iter_mut().enumerate() {
        let i = task.start + off;
        let src = ctx.labels[i];
        if ctx.stats[src].size() <= 1 {
            continue;
        }
        let v = ctx.arena.view(i);
        let decision = match &task.prune {
            Some(s) => s.decide(
                i,
                0,
                0,
                ctx.stats,
                ctx.totals,
                ctx.prune_versions,
                src,
                &v,
                ctx.tolerance,
                ctx.scale,
            ),
            None => PruneDecision::FullScan,
        };
        match decision {
            PruneDecision::Skip => counters.skips += 1,
            PruneDecision::ConfirmBest(dst) => {
                counters.confirms += 1;
                let delta = ctx.stats[src].delta_j_remove(&v) + ctx.stats[dst].delta_j_add(&v);
                if delta < -ctx.tolerance {
                    *slot = Some(Proposal {
                        dst,
                        delta,
                        src_ver: ctx.versions[src],
                        dst_ver: ctx.versions[dst],
                    });
                }
            }
            PruneDecision::FullScan => {
                if task.prune.is_some() {
                    counters.full_scans += 1;
                }
                *slot = full_scan(i, src, &v, ctx, task.prune.as_mut());
            }
        }
    }
}

/// The reference `k−1` candidate scan of one object, with second-best
/// tracking; caches a "no move" outcome when a shard window is present.
fn full_scan(
    i: usize,
    src: usize,
    v: &MomentView<'_>,
    ctx: &PassCtx<'_>,
    shard: Option<&mut PruneShard<'_>>,
) -> Option<Proposal> {
    let proposal = |dst: usize, delta: f64| Proposal {
        dst,
        delta,
        src_ver: ctx.versions[src],
        dst_ver: ctx.versions[dst],
    };
    match shard {
        Some(s) => match best_candidate_with_second(ctx.stats, src, v) {
            Some((dst, delta, _)) if delta < -ctx.tolerance => Some(proposal(dst, delta)),
            Some((dst, delta, second)) => {
                s.store(
                    i,
                    0,
                    0,
                    ctx.stats,
                    ctx.totals,
                    ctx.prune_versions,
                    src,
                    dst,
                    delta,
                    second,
                );
                None
            }
            None => None,
        },
        None => best_candidate(ctx.stats, src, v)
            .filter(|&(_, delta)| delta < -ctx.tolerance)
            .map(|(dst, delta)| proposal(dst, delta)),
    }
}

impl UncertainClusterer for ParallelUcpc {
    fn name(&self) -> &'static str {
        "UCPC-par"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucpc::Ucpc;

    #[test]
    fn parallel_knob_parses_both_backends_and_warns_on_typos() {
        assert_eq!(ParallelBackend::parse("even"), Some(ParallelBackend::Even));
        assert_eq!(
            ParallelBackend::parse("steal"),
            Some(ParallelBackend::Steal)
        );
        assert_eq!(ParallelBackend::parse("stealing"), None);
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_PARALLEL",
            Some("Stealing"),
            "even|steal",
            ParallelBackend::parse,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_PARALLEL=\"Stealing\""));
    }
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs(n_per: usize) -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 25.0, 50.0] {
            for i in 0..n_per {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 5) as f64 * 0.2, 0.3),
                    UnivariatePdf::normal(c, 0.3),
                ]));
            }
        }
        data
    }

    #[test]
    fn recovers_blobs_like_the_sequential_algorithm() {
        let data = blobs(20);
        let mut rng = StdRng::seed_from_u64(31);
        let r = ParallelUcpc::default().run(&data, 3, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        for g in 0..3 {
            let group = &l[g * 20..(g + 1) * 20];
            assert!(group.iter().all(|&x| x == group[0]), "group {g} split");
        }
    }

    #[test]
    fn objective_matches_sequential_quality() {
        // Both searches are greedy local descents with different move
        // orders, so they only provably agree when the initial partition
        // lies in the basin of the same (here: global) optimum. The seed is
        // pinned to such a configuration; near-tie seeds can legitimately
        // land sequential and parallel in different local minima and are
        // not a regression.
        let data = blobs(15);
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let seq = Ucpc::default().run(&data, 3, &mut r1).unwrap();
        let par = ParallelUcpc::default().run(&data, 3, &mut r2).unwrap();
        assert!(
            seq.converged && par.converged,
            "both searches must converge"
        );
        assert!(
            (par.objective - seq.objective).abs() < 1e-6 * (1.0 + seq.objective),
            "parallel {} vs sequential {}",
            par.objective,
            seq.objective
        );
    }

    #[test]
    fn objective_is_consistent_with_final_labels() {
        let data = blobs(10);
        let mut rng = StdRng::seed_from_u64(7);
        let r = ParallelUcpc {
            threads: 3,
            ..Default::default()
        }
        .run(&data, 4, &mut rng)
        .unwrap();
        let rebuilt: f64 = r
            .clustering
            .members()
            .iter()
            .filter(|ms| !ms.is_empty())
            .map(|ms| ClusterStats::from_members(ms.iter().map(|&i| &data[i])).j())
            .sum();
        assert!((r.objective - rebuilt).abs() < 1e-6);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let data = blobs(12);
        let run = |threads, backend| {
            let mut rng = StdRng::seed_from_u64(9);
            ParallelUcpc {
                threads,
                backend,
                ..Default::default()
            }
            .run(&data, 3, &mut rng)
            .unwrap()
            .clustering
        };
        let reference = run(1, ParallelBackend::Even);
        for backend in [ParallelBackend::Even, ParallelBackend::Steal] {
            for threads in [1, 4] {
                assert_eq!(
                    reference.labels(),
                    run(threads, backend).labels(),
                    "thread count / backend must not change the result \
                     ({threads} threads, {})",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn steal_backend_matches_even_backend_with_pruning() {
        let data = blobs(16);
        let run = |backend| {
            let mut rng = StdRng::seed_from_u64(13);
            ParallelUcpc {
                threads: 4,
                backend,
                pruning: PruningConfig::Bounds,
                ..Default::default()
            }
            .run(&data, 3, &mut rng)
            .unwrap()
        };
        let even = run(ParallelBackend::Even);
        let steal = run(ParallelBackend::Steal);
        assert_eq!(even.clustering.labels(), steal.clustering.labels());
        assert_eq!(even.iterations, steal.iterations);
        assert_eq!(even.applied, steal.applied);
        assert_eq!(even.rejected, steal.rejected);
        assert_eq!(even.pruning, steal.pruning);
        assert_eq!(even.steals, 0, "even backend never steals");
        // The snapshot-free path re-prices only staled proposals; the
        // reference path re-prices everything that survived.
        assert!(steal.revalidated <= even.revalidated);
    }

    #[test]
    fn run_on_arena_validates_inputs() {
        let data = blobs(4);
        let arena = MomentArena::from_objects(&data);
        assert!(matches!(
            ParallelUcpc::default().run_on_arena(&MomentArena::from_objects(&[]), 2, vec![]),
            Err(ClusterError::EmptyDataset)
        ));
        assert!(matches!(
            ParallelUcpc::default().run_on_arena(&arena, 0, vec![0; 12]),
            Err(ClusterError::InvalidK { k: 0, n: 12 })
        ));
        assert!(matches!(
            ParallelUcpc::default().run_on_arena(&arena, 2, vec![5; 12]),
            Err(ClusterError::LabelOutOfRange {
                label: 5,
                k: 2,
                index: 0
            })
        ));
    }

    #[test]
    fn stale_proposals_are_rejected_not_applied_blindly() {
        // With many near-duplicate objects, pass-start proposals can go
        // stale; the run must still terminate with a valid partition.
        let data: Vec<UncertainObject> = (0..40)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal((i % 4) as f64 * 0.01, 1.0)]))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let r = ParallelUcpc::default().run(&data, 4, &mut rng).unwrap();
        assert_eq!(r.clustering.len(), 40);
        assert!(r.converged || r.iterations == 200);
    }

    #[test]
    fn backend_knob_parses() {
        assert_eq!(ParallelBackend::Even.name(), "even");
        assert_eq!(ParallelBackend::Steal.name(), "steal");
    }
}
