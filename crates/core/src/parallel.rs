//! Parallel UCPC: a multi-threaded variant of Algorithm 1's relocation pass.
//!
//! The sequential pass applies relocations immediately (Hartigan-style),
//! which is inherently order-dependent. The parallel variant splits each pass
//! into two phases:
//!
//! 1. **propose** — worker threads scan disjoint shards of the dataset
//!    against a frozen snapshot of the cluster statistics and emit the best
//!    relocation per object (each candidate one fused dot product via the
//!    scalar-aggregate kernel form of Corollary 1; moments are read from a
//!    shared flat [`MomentArena`]);
//! 2. **apply** — proposals are re-validated sequentially against the live
//!    statistics (a proposal is applied only if it still strictly decreases
//!    the objective) so monotone descent — Proposition 4's termination
//!    argument — is preserved exactly.
//!
//! The result is deterministic for a fixed shard order and matches the
//! sequential algorithm's convergence guarantees, trading some per-pass
//! greediness for scan parallelism. An ablation benchmark compares the two.

use crate::framework::{validate_input, ClusterError, Clustering, UncertainClusterer};
use crate::init::Initializer;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_relocation, best_candidate, best_candidate_with_second, fp_scale, DriftTotals,
    PruneCache, PruneCounters, PruneDecision, PruneShard, PruningConfig,
};
use rand::RngCore;
use ucpc_uncertain::arena::MomentView;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Configuration of the parallel UCPC search.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use ucpc_core::parallel::ParallelUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let data: Vec<UncertainObject> = [0.0, 0.3, 7.0, 7.3]
///     .iter()
///     .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let result = ParallelUcpc { threads: 2, ..Default::default() }
///     .run(&data, 2, &mut rng)
///     .unwrap();
/// assert!(result.converged);
/// assert_eq!(result.clustering.label(0), result.clustering.label(1));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelUcpc {
    /// Initial-partition strategy.
    pub init: Initializer,
    /// Cap on propose/apply passes.
    pub max_iters: usize,
    /// Minimum objective decrease for a relocation to be applied.
    pub tolerance: f64,
    /// Worker threads for the propose phase (`0` = available parallelism).
    pub threads: usize,
    /// Candidate pruning for the propose phase. Each worker evaluates the
    /// drift bounds of [`crate::pruning`] against the same frozen statistics
    /// snapshot it proposes against, over its own shard of the cache
    /// columns; the proposal stream is provably identical to the unpruned
    /// one, so the final labels are byte-identical.
    pub pruning: PruningConfig,
}

impl Default for ParallelUcpc {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
            tolerance: 1e-9,
            threads: 0,
            pruning: PruningConfig::default(),
        }
    }
}

/// Outcome of a parallel UCPC run.
#[derive(Debug, Clone)]
pub struct ParallelUcpcResult {
    /// Final partition.
    pub clustering: Clustering,
    /// Final objective `Σ_C J(C)`.
    pub objective: f64,
    /// Passes executed.
    pub iterations: usize,
    /// Relocations applied (after re-validation).
    pub applied: usize,
    /// Proposals rejected by re-validation (stale against live statistics).
    pub rejected: usize,
    /// Whether a pass with no applicable proposal was reached.
    pub converged: bool,
    /// Candidate-pruning counters summed over all propose phases (all zero
    /// when pruning is off).
    pub pruning: PruneCounters,
}

impl ParallelUcpc {
    /// Runs the parallel search.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<ParallelUcpcResult, ClusterError> {
        let m = validate_input(data, k)?;
        let mut labels = self.init.initial_partition(data, k, rng);

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };

        let arena = MomentArena::from_objects(data);
        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }

        let mut iterations = 0usize;
        let mut applied = 0usize;
        let mut rejected = 0usize;
        let mut converged = false;
        let mut counters = PruneCounters::default();
        let mut epoch = 0u64;
        let mut totals = DriftTotals::default();
        let mut cache = self
            .pruning
            .is_enabled()
            .then(|| PruneCache::new(arena.len(), k));

        while iterations < self.max_iters {
            iterations += 1;

            // Phase 1: propose against a frozen snapshot, reading moments
            // from the shared arena. Each worker owns one shard of the prune
            // cache and evaluates the drift bounds against the same frozen
            // snapshot it scans (the accumulators frozen inside it are its
            // per-shard drift snapshot), so proposals — pruned or not — are
            // deterministic functions of the pass-start state.
            let snapshot = stats.clone();
            let labels_ro: &[usize] = &labels;
            let chunk = arena.len().div_ceil(threads).max(1);
            let n_chunks = arena.len().div_ceil(chunk);
            let scale = if cache.is_some() {
                fp_scale(&snapshot)
            } else {
                0.0
            };

            let proposals: Vec<Option<(usize, usize)>> = {
                let shards: Vec<Option<PruneShard<'_>>> = match cache.as_mut() {
                    Some(c) => c.shards(chunk).into_iter().map(Some).collect(),
                    None => (0..n_chunks).map(|_| None).collect(),
                };
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (ci, shard) in shards.into_iter().enumerate() {
                        let start = ci * chunk;
                        let end = (start + chunk).min(arena.len());
                        let snapshot = &snapshot;
                        let arena = &arena;
                        let tol = self.tolerance;
                        handles.push(scope.spawn(move || {
                            propose_range(
                                start, end, shard, snapshot, arena, labels_ro, tol, epoch, totals,
                                scale,
                            )
                        }));
                    }
                    handles
                        .into_iter()
                        .flat_map(|h| {
                            let (props, shard_counters) =
                                h.join().expect("propose worker panicked");
                            counters.merge(shard_counters);
                            props
                        })
                        .collect()
                })
            };

            // Phase 2: sequential re-validation + application.
            let mut moved = false;
            for proposal in proposals.into_iter().flatten() {
                let (i, dst) = proposal;
                let src = labels[i];
                if src == dst || stats[src].size() <= 1 {
                    rejected += 1;
                    continue;
                }
                let v = arena.view(i);
                let delta = stats[src].delta_j_remove(&v) + stats[dst].delta_j_add(&v);
                if delta < -self.tolerance {
                    if let Some(c) = cache.as_mut() {
                        if apply_tracked_relocation(&mut stats, src, dst, &v, &mut totals) {
                            epoch += 1;
                        }
                        c.invalidate(i);
                    } else {
                        stats[src].remove_view(&v);
                        stats[dst].add_view(&v);
                    }
                    labels[i] = dst;
                    applied += 1;
                    moved = true;
                } else {
                    rejected += 1;
                }
            }

            if !moved {
                converged = true;
                break;
            }
        }

        Ok(ParallelUcpcResult {
            clustering: Clustering::new(labels, k),
            objective: total_objective(&stats),
            iterations,
            applied,
            rejected,
            converged,
            pruning: counters,
        })
    }
}

/// One propose-phase worker: scans `start..end` against the frozen
/// `snapshot`, taking the pruning shortcuts when a cache shard is supplied.
/// Every proposal (and non-proposal) is identical to what the unpruned scan
/// of the same range would emit — tier 1 only fires when the scan provably
/// proposes nothing, tier 2 recomputes the confirmed argmin's delta with the
/// exact kernel calls of the full scan.
#[allow(clippy::too_many_arguments)]
fn propose_range(
    start: usize,
    end: usize,
    mut shard: Option<PruneShard<'_>>,
    snapshot: &[ClusterStats],
    arena: &MomentArena,
    labels: &[usize],
    tol: f64,
    epoch: u64,
    totals: DriftTotals,
    scale: f64,
) -> (Vec<Option<(usize, usize)>>, PruneCounters) {
    let mut counters = PruneCounters::default();
    let proposals = (start..end)
        .map(|i| {
            let src = labels[i];
            if snapshot[src].size() <= 1 {
                return None;
            }
            let v = arena.view(i);
            let decision = match &shard {
                Some(s) => s.decide(i, epoch, snapshot, totals, src, &v, tol, scale),
                None => PruneDecision::FullScan,
            };
            match decision {
                PruneDecision::Skip => {
                    counters.skips += 1;
                    None
                }
                PruneDecision::ConfirmBest(dst) => {
                    counters.confirms += 1;
                    let delta = snapshot[src].delta_j_remove(&v) + snapshot[dst].delta_j_add(&v);
                    (delta < -tol).then_some((i, dst))
                }
                PruneDecision::FullScan => {
                    if shard.is_some() {
                        counters.full_scans += 1;
                    }
                    full_scan(i, src, &v, snapshot, tol, epoch, totals, shard.as_mut())
                }
            }
        })
        .collect();
    (proposals, counters)
}

/// The reference `k−1` candidate scan of one object, with second-best
/// tracking; caches a "no move" outcome when a shard is present.
#[allow(clippy::too_many_arguments)]
fn full_scan(
    i: usize,
    src: usize,
    v: &MomentView<'_>,
    snapshot: &[ClusterStats],
    tol: f64,
    epoch: u64,
    totals: DriftTotals,
    shard: Option<&mut PruneShard<'_>>,
) -> Option<(usize, usize)> {
    match shard {
        Some(s) => match best_candidate_with_second(snapshot, src, v) {
            Some((dst, delta, _)) if delta < -tol => Some((i, dst)),
            Some((dst, delta, second)) => {
                s.store(i, epoch, snapshot, totals, dst, delta, second);
                None
            }
            None => None,
        },
        None => best_candidate(snapshot, src, v)
            .filter(|&(_, delta)| delta < -tol)
            .map(|(dst, _)| (i, dst)),
    }
}

impl UncertainClusterer for ParallelUcpc {
    fn name(&self) -> &'static str {
        "UCPC-par"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucpc::Ucpc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    fn blobs(n_per: usize) -> Vec<UncertainObject> {
        let mut data = Vec::new();
        for c in [0.0, 25.0, 50.0] {
            for i in 0..n_per {
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(c + (i % 5) as f64 * 0.2, 0.3),
                    UnivariatePdf::normal(c, 0.3),
                ]));
            }
        }
        data
    }

    #[test]
    fn recovers_blobs_like_the_sequential_algorithm() {
        let data = blobs(20);
        let mut rng = StdRng::seed_from_u64(31);
        let r = ParallelUcpc::default().run(&data, 3, &mut rng).unwrap();
        assert!(r.converged);
        let l = r.clustering.labels();
        for g in 0..3 {
            let group = &l[g * 20..(g + 1) * 20];
            assert!(group.iter().all(|&x| x == group[0]), "group {g} split");
        }
    }

    #[test]
    fn objective_matches_sequential_quality() {
        // Both searches are greedy local descents with different move
        // orders, so they only provably agree when the initial partition
        // lies in the basin of the same (here: global) optimum. The seed is
        // pinned to such a configuration; near-tie seeds can legitimately
        // land sequential and parallel in different local minima and are
        // not a regression.
        let data = blobs(15);
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let seq = Ucpc::default().run(&data, 3, &mut r1).unwrap();
        let par = ParallelUcpc::default().run(&data, 3, &mut r2).unwrap();
        assert!(
            seq.converged && par.converged,
            "both searches must converge"
        );
        assert!(
            (par.objective - seq.objective).abs() < 1e-6 * (1.0 + seq.objective),
            "parallel {} vs sequential {}",
            par.objective,
            seq.objective
        );
    }

    #[test]
    fn objective_is_consistent_with_final_labels() {
        let data = blobs(10);
        let mut rng = StdRng::seed_from_u64(7);
        let r = ParallelUcpc {
            threads: 3,
            ..Default::default()
        }
        .run(&data, 4, &mut rng)
        .unwrap();
        let rebuilt: f64 = r
            .clustering
            .members()
            .iter()
            .filter(|ms| !ms.is_empty())
            .map(|ms| ClusterStats::from_members(ms.iter().map(|&i| &data[i])).j())
            .sum();
        assert!((r.objective - rebuilt).abs() < 1e-6);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let data = blobs(12);
        let run = |threads| {
            let mut rng = StdRng::seed_from_u64(9);
            ParallelUcpc {
                threads,
                ..Default::default()
            }
            .run(&data, 3, &mut rng)
            .unwrap()
            .clustering
        };
        assert_eq!(
            run(1).labels(),
            run(4).labels(),
            "shard count must not change result"
        );
    }

    #[test]
    fn stale_proposals_are_rejected_not_applied_blindly() {
        // With many near-duplicate objects, snapshot proposals can go stale;
        // the run must still terminate with a valid partition.
        let data: Vec<UncertainObject> = (0..40)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal((i % 4) as f64 * 0.01, 1.0)]))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let r = ParallelUcpc::default().run(&data, 4, &mut rng).unwrap();
        assert_eq!(r.clustering.len(), 40);
        assert!(r.converged || r.iterations == 200);
    }
}
