//! Initialization strategies for partitional clustering.
//!
//! Algorithm 1 only asks for "an initial partition (e.g., a random
//! partition)". Three options are provided; all guarantee `k` non-empty
//! clusters so the local search never starts from a degenerate state.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use ucpc_uncertain::distance::sq_euclidean;
use ucpc_uncertain::UncertainObject;

/// How the initial partition of Algorithm 1 (Line 2) is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Initializer {
    /// Uniformly random labels, patched so every cluster is non-empty
    /// (the paper's default).
    #[default]
    RandomPartition,
    /// `k` distinct objects drawn at random act as seed centroids; every
    /// object joins its nearest seed (by distance between expected values).
    RandomCentroids,
    /// K-means++ seeding over the objects' expected values, then a nearest-
    /// seed assignment. D²-weighting gives well-spread seeds.
    KMeansPlusPlus,
}

impl Initializer {
    /// Produces initial labels in `0..k`, every cluster non-empty
    /// (requires `k <= data.len()`, which callers validate).
    pub fn initial_partition(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<usize> {
        assert!(k >= 1 && k <= data.len(), "invalid k for initialization");
        match self {
            Initializer::RandomPartition => random_partition(data.len(), k, rng),
            Initializer::RandomCentroids => {
                let mut idx: Vec<usize> = (0..data.len()).collect();
                idx.shuffle(rng);
                let seeds: Vec<&[f64]> = idx[..k].iter().map(|&i| data[i].mu()).collect();
                assign_to_seeds(data, &seeds)
            }
            Initializer::KMeansPlusPlus => {
                let seeds = kmeanspp_seeds(data, k, rng);
                let seed_refs: Vec<&[f64]> = seeds.iter().map(Vec::as_slice).collect();
                assign_to_seeds(data, &seed_refs)
            }
        }
    }
}

fn random_partition(n: usize, k: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    // Guarantee non-empty clusters: claim one distinct object per cluster.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    for (c, &i) in idx.iter().take(k).enumerate() {
        labels[i] = c;
    }
    labels
}

fn assign_to_seeds(data: &[UncertainObject], seeds: &[&[f64]]) -> Vec<usize> {
    let mut labels: Vec<usize> = data
        .iter()
        .map(|o| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, s) in seeds.iter().enumerate() {
                let d = sq_euclidean(o.mu(), s);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect();
    // Nearest-seed assignment can leave a seed empty if seeds coincide; give
    // each empty cluster its seed's nearest unclaimed object.
    let k = seeds.len();
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    for c in 0..k {
        if sizes[c] == 0 {
            // Steal the object closest to seed c from a cluster of size >= 2.
            let mut best: Option<(usize, f64)> = None;
            for (i, o) in data.iter().enumerate() {
                if sizes[labels[i]] < 2 {
                    continue;
                }
                let d = sq_euclidean(o.mu(), seeds[c]);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            if let Some((i, _)) = best {
                sizes[labels[i]] -= 1;
                labels[i] = c;
                sizes[c] += 1;
            }
        }
    }
    labels
}

fn kmeanspp_seeds(data: &[UncertainObject], k: usize, rng: &mut dyn RngCore) -> Vec<Vec<f64>> {
    let n = data.len();
    let first = rng.gen_range(0..n);
    let mut seeds: Vec<Vec<f64>> = vec![data[first].mu().to_vec()];
    let mut dist_sq: Vec<f64> = data
        .iter()
        .map(|o| sq_euclidean(o.mu(), &seeds[0]))
        .collect();
    while seeds.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing seeds: pick any index not yet
            // chosen (duplicates are fine; assignment patches empties).
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let seed = data[next].mu().to_vec();
        for (i, o) in data.iter().enumerate() {
            let d = sq_euclidean(o.mu(), &seed);
            if d < dist_sq[i] {
                dist_sq[i] = d;
            }
        }
        seeds.push(seed);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| UncertainObject::deterministic(&[i as f64, (i * i) as f64 % 7.0_f64]))
            .collect()
    }

    fn check_partition(labels: &[usize], n: usize, k: usize) {
        assert_eq!(labels.len(), n);
        let mut sizes = vec![0usize; k];
        for &l in labels {
            assert!(l < k);
            sizes[l] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "empty cluster in {sizes:?}");
    }

    #[test]
    fn all_initializers_produce_nonempty_partitions() {
        let data = dataset(25);
        for init in [
            Initializer::RandomPartition,
            Initializer::RandomCentroids,
            Initializer::KMeansPlusPlus,
        ] {
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed);
                let labels = init.initial_partition(&data, 4, &mut rng);
                check_partition(&labels, 25, 4);
            }
        }
    }

    #[test]
    fn k_equals_n_assigns_each_object_its_own_cluster() {
        let data = dataset(6);
        let mut rng = StdRng::seed_from_u64(3);
        let labels = Initializer::RandomPartition.initial_partition(&data, 6, &mut rng);
        check_partition(&labels, 6, 6);
    }

    #[test]
    fn kmeanspp_handles_identical_points() {
        let data: Vec<UncertainObject> = (0..8)
            .map(|_| UncertainObject::deterministic(&[1.0, 1.0]))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let labels = Initializer::KMeansPlusPlus.initial_partition(&data, 3, &mut rng);
        check_partition(&labels, 8, 3);
    }

    #[test]
    fn kmeanspp_spreads_seeds_across_separated_groups() {
        // Three well-separated groups: k-means++ should seed one per group
        // almost surely, which a nearest-seed assignment then recovers.
        let mut data = Vec::new();
        for g in 0..3 {
            for i in 0..10 {
                data.push(UncertainObject::deterministic(&[
                    g as f64 * 100.0 + (i % 3) as f64 * 0.01,
                    g as f64 * 100.0,
                ]));
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let labels = Initializer::KMeansPlusPlus.initial_partition(&data, 3, &mut rng);
        for g in 0..3 {
            let group = &labels[g * 10..(g + 1) * 10];
            assert!(
                group.iter().all(|&l| l == group[0]),
                "group {g} split across clusters: {group:?}"
            );
        }
    }
}
