//! The UCPC algorithm (Algorithm 1, Section 4.3).
//!
//! A local-search heuristic for `argmin_𝒞 Σ_{C∈𝒞} J(C)`: starting from an
//! initial partition, it repeatedly scans every object and relocates it to the
//! cluster that maximally decreases the total objective, evaluating each
//! candidate relocation in O(m) through Corollary 1. It converges to a local
//! minimum in a finite number of iterations (Proposition 4) with overall cost
//! `O(I k n m)` (Proposition 5) — the same as UK-means and MMVar, and with no
//! offline distance-precomputation phase.
//!
//! The relocation pass runs on the scalar-aggregate delta-`J` kernel: object
//! moments live in a flat [`MomentArena`] and each candidate evaluation is a
//! single fused dot product plus closed-form scalars (see
//! [`ucpc_uncertain::arena`] for the derivation), instead of the naive three
//! O(m) sweeps per candidate. On top of the kernel, the loop can prune
//! whole candidate scans with the best/second-best cache and drift bounds of
//! [`crate::pruning`] — exactly, producing byte-identical assignments.

use crate::framework::{
    validate_input, validate_labels, ClusterError, Clustering, UncertainClusterer,
};
use crate::init::Initializer;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_relocation, best_candidate, best_candidate_with_second, fp_scale, DriftTotals,
    PruneCache, PruneCounters, PruneDecision, PruningConfig,
};
use rand::RngCore;
use ucpc_uncertain::{MomentArena, UncertainObject};

/// Configuration of the UCPC local search.
#[derive(Debug, Clone)]
pub struct Ucpc {
    /// Initial-partition strategy (Line 2 of Algorithm 1).
    pub init: Initializer,
    /// Safety cap on the number of full passes over the dataset. Convergence
    /// is guaranteed (Proposition 4) but a cap keeps worst-case latency
    /// bounded in interactive use; the paper's datasets converge in far fewer
    /// passes.
    pub max_iters: usize,
    /// Minimum objective decrease for a relocation to be applied. Guards the
    /// termination argument of Proposition 4 against floating-point jitter.
    pub tolerance: f64,
    /// When `true`, a relocation may empty its source cluster (producing a
    /// clustering with fewer than `k` non-empty clusters). The paper's
    /// formulation permits this; keeping all `k` clusters populated is the
    /// default because the evaluation protocol fixes `k`.
    pub allow_empty_clusters: bool,
    /// Candidate pruning. [`PruningConfig::Bounds`] skips provably redundant
    /// candidate scans and is exactly equivalent to [`PruningConfig::Off`]
    /// (same relocations, byte-identical labels); `Off` remains the
    /// reference path. The default honours the `UCPC_PRUNING` env knob.
    pub pruning: PruningConfig,
}

impl Default for Ucpc {
    fn default() -> Self {
        Self {
            init: Initializer::RandomPartition,
            max_iters: 200,
            tolerance: 1e-9,
            allow_empty_clusters: false,
            pruning: PruningConfig::default(),
        }
    }
}

/// Outcome of a UCPC run: the partition plus convergence diagnostics.
#[derive(Debug, Clone)]
pub struct UcpcResult {
    /// The final partition.
    pub clustering: Clustering,
    /// Final objective value `Σ_C J(C)`.
    pub objective: f64,
    /// Objective after every completed pass (monotonically non-increasing,
    /// cf. Proposition 4).
    pub objective_trace: Vec<f64>,
    /// Number of full passes executed (`I` in Proposition 5).
    pub iterations: usize,
    /// Total number of object relocations applied.
    pub relocations: usize,
    /// Whether the run stopped because no object was relocated (vs. hitting
    /// `max_iters`).
    pub converged: bool,
    /// Candidate-pruning counters (all zero when pruning is off).
    pub pruning: PruneCounters,
}

impl Ucpc {
    /// Runs Algorithm 1 on `data` with `k` clusters, using labels produced by
    /// the configured initializer.
    pub fn run(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<UcpcResult, ClusterError> {
        validate_input(data, k)?;
        let labels = self.init.initial_partition(data, k, rng);
        self.run_on_arena(&MomentArena::from_objects(data), k, labels)
    }

    /// Runs Algorithm 1 from a caller-supplied initial partition (labels in
    /// `0..k`, one per object).
    pub fn run_with_labels(
        &self,
        data: &[UncertainObject],
        k: usize,
        labels: Vec<usize>,
    ) -> Result<UcpcResult, ClusterError> {
        // Dimension/emptiness checks must precede arena construction (the
        // arena panics on ragged input); label validation is run_on_arena's.
        validate_input(data, k)?;
        self.run_on_arena(&MomentArena::from_objects(data), k, labels)
    }

    /// Runs Algorithm 1 directly on a prebuilt moment arena — the form the
    /// multi-restart wrapper uses to amortize arena construction across
    /// restarts. Labels must be one per arena row, each in `0..k`.
    pub fn run_on_arena(
        &self,
        arena: &MomentArena,
        k: usize,
        labels: Vec<usize>,
    ) -> Result<UcpcResult, ClusterError> {
        if self.pruning.is_enabled() {
            let mut cache = PruneCache::new(arena.len(), k);
            self.search(arena, k, labels, Some(&mut cache))
        } else {
            self.search(arena, k, labels, None)
        }
    }

    /// Like [`Self::run_on_arena`] but reusing a caller-owned prune cache
    /// (reset on entry), so multi-restart drivers avoid re-allocating the
    /// cache columns on every restart. Ignored when pruning is off.
    pub fn run_on_arena_with_cache(
        &self,
        arena: &MomentArena,
        k: usize,
        labels: Vec<usize>,
        cache: &mut PruneCache,
    ) -> Result<UcpcResult, ClusterError> {
        if self.pruning.is_enabled() {
            cache.reset(arena.len(), k);
            self.search(arena, k, labels, Some(cache))
        } else {
            self.search(arena, k, labels, None)
        }
    }

    /// The relocation search shared by the pruned and unpruned entry points.
    /// With `cache: None` this is exactly the reference Algorithm-1 loop;
    /// with a cache it takes the tier-1/tier-2 shortcuts of
    /// [`crate::pruning`], which are proven there to leave the relocation
    /// sequence unchanged.
    fn search(
        &self,
        arena: &MomentArena,
        k: usize,
        mut labels: Vec<usize>,
        cache: Option<&mut PruneCache>,
    ) -> Result<UcpcResult, ClusterError> {
        if arena.is_empty() {
            return Err(ClusterError::EmptyDataset);
        }
        if k == 0 || k > arena.len() {
            return Err(ClusterError::InvalidK { k, n: arena.len() });
        }
        validate_labels(&labels, arena.len(), k)?;

        // Line 3: per-cluster sufficient statistics.
        let m = arena.dims();
        let mut stats: Vec<ClusterStats> = vec![ClusterStats::empty(m); k];
        for (i, &label) in labels.iter().enumerate() {
            stats[label].add_view(&arena.view(i));
        }

        let mut objective_trace: Vec<f64> = Vec::new();
        let mut relocations = 0usize;
        let mut converged = false;
        let mut iterations = 0usize;
        let mut counters = PruneCounters::default();
        // Per-cluster remove-direction version counters: a small-size
        // transition stales only the entries whose `src` it touched (the
        // surgical invalidation of `crate::pruning`); the cache epoch is
        // never bumped inside one search.
        let mut versions = vec![0u64; k];
        let mut totals = DriftTotals::default();
        let mut shard = cache.map(|c| c.view());

        // Lines 4–16: relocation passes on the delta-J kernel.
        while iterations < self.max_iters {
            iterations += 1;
            let mut moved_this_pass = false;
            let scale = if shard.is_some() {
                fp_scale(&stats)
            } else {
                0.0
            };

            // Indexed: the body reassigns `labels[i]` while `stats` and the
            // cache shard are also borrowed, which an iterator cannot express.
            #[allow(clippy::needless_range_loop)]
            for i in 0..labels.len() {
                let src = labels[i];
                if stats[src].size() == 1 && !self.allow_empty_clusters {
                    continue;
                }
                let v = arena.view(i);

                let decision = match &shard {
                    Some(s) => s.decide(
                        i,
                        0,
                        0,
                        &stats,
                        totals,
                        &versions,
                        src,
                        &v,
                        self.tolerance,
                        scale,
                    ),
                    None => PruneDecision::FullScan,
                };

                match decision {
                    PruneDecision::Skip => {
                        // Tier 1: the scan provably applies nothing.
                        counters.skips += 1;
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        // Tier 2: same argmin; recompute its exact delta with
                        // the identical kernel calls the full scan would use.
                        counters.confirms += 1;
                        let delta = stats[src].delta_j_remove(&v) + stats[dst].delta_j_add(&v);
                        if delta < -self.tolerance {
                            apply_tracked_relocation(
                                &mut stats,
                                src,
                                dst,
                                &v,
                                &mut totals,
                                &mut versions,
                            );
                            let s = shard.as_mut().expect("tier 2 implies a cache");
                            s.invalidate(i);
                            labels[i] = dst;
                            relocations += 1;
                            moved_this_pass = true;
                        }
                    }
                    PruneDecision::FullScan => {
                        // Line 8: best relocation target. The objective
                        // change of moving o from `src` to `dst` is
                        //   delta = [J(src − o) − J(src)]
                        //         + [J(dst + o) − J(dst)],
                        // each bracket one fused dot product by the kernel
                        // form of Corollary 1 (shared scan helpers in
                        // `crate::pruning`; the pruned arm also tracks the
                        // runner-up so the outcome can be cached).
                        if let Some(s) = shard.as_mut() {
                            counters.full_scans += 1;
                            if let Some((dst, delta, second)) =
                                best_candidate_with_second(&stats, src, &v)
                            {
                                if delta < -self.tolerance {
                                    // Lines 10–13: apply the move and update
                                    // statistics.
                                    apply_tracked_relocation(
                                        &mut stats,
                                        src,
                                        dst,
                                        &v,
                                        &mut totals,
                                        &mut versions,
                                    );
                                    s.invalidate(i);
                                    labels[i] = dst;
                                    relocations += 1;
                                    moved_this_pass = true;
                                } else {
                                    s.store(
                                        i, 0, 0, &stats, totals, &versions, src, dst, delta, second,
                                    );
                                }
                            }
                        } else if let Some((dst, delta)) = best_candidate(&stats, src, &v) {
                            if delta < -self.tolerance {
                                stats[src].remove_view(&v);
                                stats[dst].add_view(&v);
                                labels[i] = dst;
                                relocations += 1;
                                moved_this_pass = true;
                            }
                        }
                    }
                }
            }

            let v = total_objective(&stats);
            if let Some(&prev) = objective_trace.last() {
                // Relative slack: the incrementally maintained aggregates
                // carry rounding noise proportional to the objective's
                // magnitude, so an absolute epsilon would misfire on
                // large-coordinate data.
                debug_assert!(
                    v <= prev + 1e-6 * (1.0 + prev.abs()),
                    "Proposition 4 violated: objective rose from {prev} to {v}"
                );
            }
            objective_trace.push(v);

            if !moved_this_pass {
                converged = true;
                break;
            }
        }

        Ok(UcpcResult {
            clustering: Clustering::new(labels, k),
            objective: total_objective(&stats),
            objective_trace,
            iterations,
            relocations,
            converged,
            pruning: counters,
        })
    }
}

impl UncertainClusterer for Ucpc {
    fn name(&self) -> &'static str {
        "UCPC"
    }

    fn cluster(
        &self,
        data: &[UncertainObject],
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Clustering, ClusterError> {
        Ok(self.run(data, k, rng)?.clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucpc_uncertain::UnivariatePdf;

    /// Two well-separated Gaussian blobs of uncertain objects.
    fn two_blobs(n_per: usize, seed: u64) -> (Vec<UncertainObject>, Vec<usize>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for (g, center) in [(-5.0, 0.0), (5.0, 3.0)].iter().enumerate() {
            for _ in 0..n_per {
                let cx = center.0 + rng.gen_range(-1.0..1.0);
                let cy = center.1 + rng.gen_range(-1.0..1.0);
                data.push(UncertainObject::new(vec![
                    UnivariatePdf::normal(cx, 0.3),
                    UnivariatePdf::normal(cy, 0.3),
                ]));
                truth.push(g);
            }
        }
        (data, truth)
    }

    #[test]
    fn recovers_two_separated_blobs() {
        let (data, truth) = two_blobs(30, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = Ucpc::default().run(&data, 2, &mut rng).unwrap();
        assert!(result.converged);
        // Perfect separation up to label permutation.
        let l0 = result.clustering.label(0);
        for (i, &t) in truth.iter().enumerate() {
            let expected = if t == truth[0] { l0 } else { 1 - l0 };
            assert_eq!(
                result.clustering.label(i),
                expected,
                "object {i} misclustered"
            );
        }
    }

    #[test]
    fn objective_is_monotone_and_converges() {
        let (data, _) = two_blobs(25, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let result = Ucpc::default().run(&data, 4, &mut rng).unwrap();
        assert!(result.converged, "should converge well before the cap");
        for w in result.objective_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "objective increased: {w:?}");
        }
    }

    #[test]
    fn final_objective_matches_recomputation_from_scratch() {
        let (data, _) = two_blobs(20, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let result = Ucpc::default().run(&data, 3, &mut rng).unwrap();
        let members = result.clustering.members();
        let recomputed: f64 = members
            .iter()
            .filter(|ms| !ms.is_empty())
            .map(|ms| ClusterStats::from_members(ms.iter().map(|&i| &data[i])).j())
            .sum();
        assert!(
            (result.objective - recomputed).abs() < 1e-6,
            "incremental {} vs recomputed {recomputed}",
            result.objective
        );
    }

    #[test]
    fn k_clusters_stay_nonempty_by_default() {
        let (data, _) = two_blobs(10, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let result = Ucpc::default().run(&data, 5, &mut rng).unwrap();
        assert_eq!(result.clustering.non_empty(), 5);
    }

    #[test]
    fn degenerate_point_masses_behave_like_kmeans() {
        // Case 1 of the evaluation: deterministic objects. UCPC's objective
        // reduces to the K-means SSE (all sigma^2 = 0).
        let data: Vec<UncertainObject> = [
            [0.0, 0.0],
            [0.1, 0.0],
            [0.0, 0.1],
            [10.0, 10.0],
            [10.1, 10.0],
            [10.0, 10.1],
        ]
        .iter()
        .map(|p| UncertainObject::deterministic(p))
        .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let result = Ucpc::default().run(&data, 2, &mut rng).unwrap();
        let labels = result.clustering.labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
        // SSE of the perfect split: within-blob squared deviations.
        assert!(result.objective < 0.1, "objective {}", result.objective);
    }

    #[test]
    fn figure_1_archetype_j_separates_by_variance() {
        // Figure 1: two clusters with identical central tendency (same sums
        // of expected values) but different member variances. J_UK cannot
        // tell them apart (Proposition 1); J must rank the lower-variance
        // cluster as more compact.
        let tight: Vec<UncertainObject> = (0..6)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal((i as f64) * 0.1, 0.05)]))
            .collect();
        let loose: Vec<UncertainObject> = (0..6)
            .map(|i| UncertainObject::new(vec![UnivariatePdf::normal((i as f64) * 0.1, 3.0)]))
            .collect();
        let s_tight = ClusterStats::from_members(tight.iter());
        let s_loose = ClusterStats::from_members(loose.iter());
        assert!(
            s_tight.j() < s_loose.j(),
            "Figure 1: J must rank the lower-variance cluster as more compact"
        );
    }

    #[test]
    fn figure_2_archetype_j_accounts_for_spread_not_only_variance() {
        // Figure 2: small-variance objects that are far apart vs
        // larger-variance objects that are close together. A pure
        // U-centroid-variance criterion (Theorem 2) prefers the former;
        // J must prefer the latter (the genuinely more compact cluster).
        let far_small_var: Vec<UncertainObject> = [-10.0, 0.0, 10.0]
            .iter()
            .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]))
            .collect();
        let close_big_var: Vec<UncertainObject> = [-0.5, 0.0, 0.5]
            .iter()
            .map(|&c| UncertainObject::new(vec![UnivariatePdf::normal(c, 1.0)]))
            .collect();
        let s_far = ClusterStats::from_members(far_small_var.iter());
        let s_close = ClusterStats::from_members(close_big_var.iter());
        // The pure-variance criterion gets it backwards...
        assert!(s_far.ucentroid_variance() < s_close.ucentroid_variance());
        // ...while J ranks the close-together cluster as more compact.
        assert!(
            s_close.j() < s_far.j(),
            "Figure 2: J must prefer the spatially compact cluster"
        );
    }

    #[test]
    fn run_with_labels_respects_initial_partition() {
        let (data, _) = two_blobs(5, 11);
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let result = Ucpc::default().run_with_labels(&data, 2, labels).unwrap();
        assert!(result.converged);
        assert_eq!(result.clustering.len(), 10);
    }

    #[test]
    fn run_with_labels_rejects_bad_labels_without_panicking() {
        let (data, _) = two_blobs(5, 20); // 10 objects
        assert!(matches!(
            Ucpc::default().run_with_labels(&data, 2, vec![0; 3]),
            Err(ClusterError::LabelLengthMismatch {
                expected: 10,
                found: 3
            })
        ));
        let mut labels = vec![0; 10];
        labels[4] = 7;
        assert!(matches!(
            Ucpc::default().run_with_labels(&data, 2, labels),
            Err(ClusterError::LabelOutOfRange {
                label: 7,
                k: 2,
                index: 4
            })
        ));
    }

    #[test]
    fn run_on_arena_validates_inputs() {
        use ucpc_uncertain::MomentArena;
        let (data, _) = two_blobs(5, 21);
        let arena = MomentArena::from_objects(&data);
        assert!(matches!(
            Ucpc::default().run_on_arena(&MomentArena::from_objects(&[]), 2, vec![]),
            Err(ClusterError::EmptyDataset)
        ));
        assert!(matches!(
            Ucpc::default().run_on_arena(&arena, 0, vec![0; 10]),
            Err(ClusterError::InvalidK { k: 0, n: 10 })
        ));
        assert!(matches!(
            Ucpc::default().run_on_arena(&arena, 2, vec![2; 10]),
            Err(ClusterError::LabelOutOfRange {
                label: 2,
                k: 2,
                index: 0
            })
        ));
    }

    #[test]
    fn errors_propagate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            Ucpc::default().run(&[], 2, &mut rng),
            Err(ClusterError::EmptyDataset)
        ));
        let data = vec![UncertainObject::deterministic(&[0.0])];
        assert!(matches!(
            Ucpc::default().run(&data, 5, &mut rng),
            Err(ClusterError::InvalidK { .. })
        ));
    }

    #[test]
    fn trait_object_usable() {
        let (data, _) = two_blobs(5, 12);
        let alg: &dyn UncertainClusterer = &Ucpc::default();
        assert_eq!(alg.name(), "UCPC");
        let mut rng = StdRng::seed_from_u64(13);
        let c = alg.cluster(&data, 2, &mut rng).unwrap();
        assert_eq!(c.len(), 10);
    }
}
