//! Fault-tolerant sharded UCPC: a coordinator/participant layer that
//! partitions the live window across in-process "nodes" while keeping
//! labels, statistics bits and the objective **byte-identical to the
//! single-node [`crate::incremental::IncrementalUcpc`]** at every shard
//! count, under every injected fault schedule.
//!
//! # The replicated deterministic log
//!
//! Distribution does not get to change the arithmetic. The single-node
//! engine's state is a fold over a sequence of exact `ClusterStats`
//! transitions (`add_view` / `remove_view`), and the fold's result
//! depends on the order bit-for-bit ([`ClusterStats::merge`] is
//! commutative mathematically but, like any floating-point reduction,
//! not bit-associative). So the protocol replicates the *sequence*, not
//! the result:
//!
//! 1. The **coordinator** (node 0) owns the op order. It allocates
//!    global slots through the same LIFO free-list + generation
//!    discipline as the single-node moment store, so handle sequences
//!    match [`crate::incremental::IncrementalUcpc`] exactly, and it
//!    assigns each op batch a global sequence number.
//! 2. The slot's **owner participant** runs the local propose phase: it
//!    prices the ops against its full `ClusterStats` replica with the
//!    exact kernels ([`crate::pruning::best_insertion`],
//!    [`crate::pruning::best_candidate`]), appends the resulting
//!    [`LogEntry`]s to its write-ahead shard log, applies them, and
//!    replies.
//! 3. The coordinator applies the entries to its own replica and
//!    broadcasts them to every other participant; each logs and applies
//!    them in the same global order and acknowledges. Only then does the
//!    round commit and the next sequence number get used.
//!
//! Every entry ships the object's raw moment rows (`mu`, `mu2`), and
//! every replica applies `add_view`/`remove_view` *itself*: the `S₂`
//! update inside `add_view` depends on the target's current mean sum, so
//! shipping precomputed deltas would not reproduce the bits — shipping
//! the inputs and replaying the fold does.
//!
//! # Robustness
//!
//! Messages travel through a pluggable [`Transport`]: the in-process
//! [`MpscTransport`], or the seeded [`ChaosTransport`] which drops,
//! duplicates, reorders and delays envelopes per a
//! [`crate::fault::ChaosPlan`]. The protocol tolerates all of it:
//!
//! * **Idempotence** — every message carries its round's sequence
//!   number; participants track the highest applied sequence, re-ack
//!   duplicates, and resend the cached reply for a retransmitted
//!   `Execute` of the round they just ran.
//! * **Retry with backoff** — the coordinator re-sends unanswered
//!   requests on deadlines from the injectable [`crate::serving::Clock`]
//!   (a [`crate::fault::ManualClock`] here, advanced only when the
//!   transport has nothing to deliver, so schedules are deterministic).
//! * **Epoch fencing** — each participant generation has an epoch; both
//!   sides drop envelopes from a stale epoch, so a restarted shard never
//!   consumes pre-crash traffic.
//! * **Crash + recovery** — [`ShardedUcpc::crash`] drops a participant's
//!   volatile state; its durable bytes (checkpoint + shard WAL, a
//!   [`crate::wal::SharedVecIo`] surviving the crash) remain.
//!   [`ShardedUcpc::restart`] rebuilds the shard from checkpoint + the
//!   WAL's valid prefix, bumps its epoch, and runs a `Join`/`Catchup`
//!   exchange that replays any committed rounds the durable state missed
//!   — rejoining without perturbing the apply log.
//!
//! The differential chaos harness (`tests/sharded_differential.rs`) pins
//! the headline: at shard counts {1, 2, 4, 8}, under clean and chaotic
//! schedules, with mid-run crash/recovery, the final labels, stats bits
//! and objective equal the single-node engine's bit-for-bit.

use crate::fault::{ChaosPlan, Dice, ManualClock};
use crate::framework::ClusterError;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{best_candidate, best_insertion};
use crate::serving::Clock;
use crate::wal::{crc32, SharedVecIo};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;
use ucpc_uncertain::{Moments, ObjectHandle, SlabArena, UncertainObject};

/// Relocation acceptance threshold — identical to the single-node
/// engine's, so decision boundaries match bit-for-bit.
const TOLERANCE: f64 = 1e-9;

/// Contiguous slots per ownership block: slot `s` belongs to shard
/// `(s / BLOCK) % shards`. Block ownership is what lets a stabilization
/// pass batch runs of consecutive same-owner slots into one proposal
/// round. Any deterministic mapping preserves bit-identity (the log
/// order, not the placement of rows, fixes the arithmetic).
const BLOCK: u32 = 8;

/// Base retry timeout; doubles per attempt (capped) under the manual
/// clock's millisecond ticks.
const RETRY_BASE: Duration = Duration::from_millis(4);

/// Clock advance per idle transport step.
const TICK: Duration = Duration::from_millis(1);

/// Retransmission budget per request before the driver declares the
/// shard unreachable (a crashed participant that was never restarted).
const MAX_ATTEMPTS: u32 = 64;

/// The shard owning global slot `slot` under `shards` shards.
fn owner_of_slot(slot: u32, shards: usize) -> usize {
    ((slot / BLOCK) as usize) % shards
}

// ---------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------

/// One proposal the coordinator asks a slot's owner to price.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Place a new arrival (already allocated global `slot`) into the
    /// cluster minimizing the objective increase.
    Insert {
        /// Global slot the coordinator allocated for the arrival.
        slot: u32,
        /// First raw moments `E[X_j]` of the arrival.
        mu: Vec<f64>,
        /// Second raw moments `E[X_j²]` of the arrival.
        mu2: Vec<f64>,
    },
    /// Remove the live object in `slot` from `cluster`.
    Remove {
        /// Global slot of the departing object.
        slot: u32,
        /// Its committed cluster (the coordinator's label replica).
        cluster: usize,
    },
    /// Price a relocation of the object in `slot` out of `src`.
    Relocate {
        /// Global slot of the candidate object.
        slot: u32,
        /// Its committed cluster at batch-build time (stable within a
        /// pass: only a slot's own relocation changes its label).
        src: usize,
    },
}

/// The deterministic outcome of one [`Op`], as appended to the
/// replicated log. State-changing kinds carry the object's raw moment
/// rows so every replica can replay the exact `add_view`/`remove_view`
/// arithmetic itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// What happened.
    pub op: LogOp,
    /// `E[X_j]` row of the object (empty for [`LogOp::NoMove`]).
    pub mu: Vec<f64>,
    /// `E[X_j²]` row of the object (empty for [`LogOp::NoMove`]).
    pub mu2: Vec<f64>,
}

impl LogEntry {
    fn no_move(slot: u32) -> Self {
        Self {
            op: LogOp::NoMove { slot },
            mu: Vec::new(),
            mu2: Vec::new(),
        }
    }
}

/// The kind of a [`LogEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// The arrival in `slot` joined `cluster`.
    Insert {
        /// Global slot of the arrival.
        slot: u32,
        /// Cluster the owner's placement scan picked.
        cluster: usize,
    },
    /// The object in `slot` left `cluster`.
    Remove {
        /// Global slot of the departure.
        slot: u32,
        /// Cluster it departed from.
        cluster: usize,
    },
    /// The object in `slot` relocated from `src` to `dst`.
    Move {
        /// Global slot of the relocated object.
        slot: u32,
        /// Cluster it left.
        src: usize,
        /// Cluster it joined.
        dst: usize,
    },
    /// The relocation scan kept `slot` where it was (logged by the owner
    /// for byte-stable retransmissions, never broadcast as a mutation —
    /// it mutates nothing).
    NoMove {
        /// Global slot the scan visited.
        slot: u32,
    },
}

/// A protocol message body.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Coordinator → owner: price and apply `ops` as round `seq`.
    Execute {
        /// Global round sequence number.
        seq: u64,
        /// The round's proposal batch, all owned by the recipient.
        ops: Vec<Op>,
    },
    /// Owner → coordinator: round `seq` produced `entries`.
    Done {
        /// Echoed round sequence number.
        seq: u64,
        /// The round's log entries, in op order.
        entries: Vec<LogEntry>,
    },
    /// Coordinator → non-owner: append and apply round `seq`.
    Apply {
        /// Global round sequence number.
        seq: u64,
        /// The round's log entries.
        entries: Vec<LogEntry>,
    },
    /// Participant → coordinator: round `seq` (or, after a `Catchup`,
    /// everything up to `seq`) is durable and applied.
    Ack {
        /// Highest acknowledged sequence number.
        seq: u64,
    },
    /// Restarted participant → coordinator: durable state reaches
    /// `applied`; replay anything later.
    Join {
        /// Highest round the recovered durable state contains.
        applied: u64,
    },
    /// Coordinator → rejoining participant: the committed rounds it
    /// missed, in sequence order.
    Catchup {
        /// `(seq, entries)` for every committed round past the joiner's
        /// watermark.
        rounds: Vec<(u64, Vec<LogEntry>)>,
    },
}

/// One addressed, epoch-fenced protocol message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending node (0 = coordinator, `shard + 1` = participant).
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// The *participant* epoch this message belongs to (the recipient's
    /// for coordinator→participant traffic, the sender's for replies);
    /// either side drops mismatches, fencing off pre-crash stragglers.
    pub epoch: u64,
    /// Message body.
    pub payload: Payload,
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Message-passing fabric between the coordinator and the participants.
///
/// Delivery is pull-based: the driver calls [`Transport::recv`] per node
/// until it returns `None`, and [`Transport::step`] to advance transport
/// time when nothing was deliverable (a no-op for fabrics without
/// delays). Implementations may drop, duplicate, reorder or delay
/// envelopes arbitrarily — the protocol is built to tolerate it.
pub trait Transport: fmt::Debug {
    /// Accepts an envelope for (eventual, possibly unfaithful) delivery.
    fn send(&mut self, env: Envelope);
    /// Next deliverable envelope addressed to `node`, if any.
    fn recv(&mut self, node: usize) -> Option<Envelope>;
    /// Advances transport time by one tick (delayed deliveries mature).
    fn step(&mut self) {}
}

/// The faithful in-process transport: one `std::sync::mpsc` channel per
/// node, FIFO, lossless, delay-free.
#[derive(Debug)]
pub struct MpscTransport {
    inboxes: Vec<(Sender<Envelope>, Receiver<Envelope>)>,
}

impl MpscTransport {
    /// A fabric connecting `nodes` nodes (coordinator + participants).
    pub fn new(nodes: usize) -> Self {
        Self {
            inboxes: (0..nodes).map(|_| channel()).collect(),
        }
    }
}

impl Transport for MpscTransport {
    fn send(&mut self, env: Envelope) {
        if let Some((tx, _)) = self.inboxes.get(env.to) {
            tx.send(env)
                .expect("receiver half lives as long as the fabric");
        }
    }

    fn recv(&mut self, node: usize) -> Option<Envelope> {
        self.inboxes
            .get(node)
            .and_then(|(_, rx)| rx.try_recv().ok())
    }
}

#[derive(Debug)]
struct Queued {
    /// Transport tick at which this copy becomes deliverable.
    at: u64,
    /// Delivery ordering key (reordering perturbs it backwards).
    key: u64,
    /// Arrival tiebreaker.
    arrival: u64,
    env: Envelope,
}

/// The adversarial transport: every send rolls seeded dice
/// ([`crate::fault::Dice`]) against a [`ChaosPlan`] — drop the envelope,
/// deliver it twice, delay a copy up to `max_delay` ticks, or perturb
/// its ordering key so it overtakes (or is overtaken by) its neighbors.
/// Identical plan + identical protocol traffic ⇒ identical schedule, so
/// any failing chaos run replays bit-for-bit from its seed.
#[derive(Debug)]
pub struct ChaosTransport {
    plan: ChaosPlan,
    dice: Dice,
    tick: u64,
    counter: u64,
    queues: Vec<Vec<Queued>>,
}

impl ChaosTransport {
    /// A fabric for `nodes` nodes faulting per `plan`.
    pub fn new(nodes: usize, plan: ChaosPlan) -> Self {
        Self {
            plan,
            dice: Dice::new(plan.seed),
            tick: 0,
            counter: 0,
            queues: (0..nodes).map(|_| Vec::new()).collect(),
        }
    }

    /// Envelopes queued but not yet delivered (dropped ones excluded).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    fn enqueue_copy(&mut self, env: Envelope) {
        let delay = self.dice.pick(self.plan.max_delay + 1);
        let mut key = self.counter;
        if self.dice.chance(self.plan.reorder) {
            // Pull the key backwards so this copy overtakes up to 8
            // earlier same-tick sends (ties broken by arrival).
            key = key.saturating_sub(1 + self.dice.pick(8));
        }
        let arrival = self.counter;
        self.counter += 1;
        let to = env.to;
        if let Some(q) = self.queues.get_mut(to) {
            q.push(Queued {
                at: self.tick + delay,
                key,
                arrival,
                env,
            });
        }
    }
}

impl Transport for ChaosTransport {
    fn send(&mut self, env: Envelope) {
        if self.dice.chance(self.plan.drop) {
            return;
        }
        let duplicate = self.dice.chance(self.plan.duplicate);
        self.enqueue_copy(env.clone());
        if duplicate {
            self.enqueue_copy(env);
        }
    }

    fn recv(&mut self, node: usize) -> Option<Envelope> {
        let tick = self.tick;
        let q = self.queues.get_mut(node)?;
        let best = q
            .iter()
            .enumerate()
            .filter(|(_, m)| m.at <= tick)
            .min_by_key(|(_, m)| (m.key, m.arrival))
            .map(|(i, _)| i)?;
        Some(q.swap_remove(best).env)
    }

    fn step(&mut self) {
        self.tick += 1;
    }
}

// ---------------------------------------------------------------------
// Codec: log frames + shard checkpoints
// ---------------------------------------------------------------------

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    b.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_row(b: &mut Vec<u8>, row: &[f64]) {
    for &x in row {
        put_f64(b, x);
    }
}

/// Bounds-checked little-endian reader; every getter returns `None` past
/// the end, so truncated (torn) bytes decode to a clean valid prefix.
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.b.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn row(&mut self, m: usize) -> Option<Vec<f64>> {
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            out.push(self.f64()?);
        }
        Some(out)
    }
}

fn encode_entry(b: &mut Vec<u8>, e: &LogEntry) {
    match e.op {
        LogOp::Insert { slot, cluster } => {
            b.push(1);
            put_u32(b, slot);
            put_u32(b, cluster as u32);
        }
        LogOp::Remove { slot, cluster } => {
            b.push(2);
            put_u32(b, slot);
            put_u32(b, cluster as u32);
        }
        LogOp::Move { slot, src, dst } => {
            b.push(3);
            put_u32(b, slot);
            put_u32(b, src as u32);
            put_u32(b, dst as u32);
        }
        LogOp::NoMove { slot } => {
            b.push(4);
            put_u32(b, slot);
        }
    }
    if !matches!(e.op, LogOp::NoMove { .. }) {
        put_row(b, &e.mu);
        put_row(b, &e.mu2);
    }
}

fn decode_entry(r: &mut Reader<'_>, m: usize) -> Option<LogEntry> {
    let tag = r.u8()?;
    let slot = r.u32()?;
    let op = match tag {
        1 => LogOp::Insert {
            slot,
            cluster: r.u32()? as usize,
        },
        2 => LogOp::Remove {
            slot,
            cluster: r.u32()? as usize,
        },
        3 => LogOp::Move {
            slot,
            src: r.u32()? as usize,
            dst: r.u32()? as usize,
        },
        4 => LogOp::NoMove { slot },
        _ => return None,
    };
    let (mu, mu2) = if matches!(op, LogOp::NoMove { .. }) {
        (Vec::new(), Vec::new())
    } else {
        (r.row(m)?, r.row(m)?)
    };
    Some(LogEntry { op, mu, mu2 })
}

/// One shard-log frame: `len | payload | crc32(payload)`, payload =
/// `seq u64 | count u32 | entries…` — the same torn-tail-salvageable
/// framing discipline as [`crate::wal`].
fn encode_frame(seq: u64, entries: &[LogEntry]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, seq);
    put_u32(&mut payload, entries.len() as u32);
    for e in entries {
        encode_entry(&mut payload, e);
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    put_u32(&mut frame, crc32(&payload));
    frame
}

/// Decodes the valid prefix of a shard log: complete, checksummed frames
/// in order, stopping silently at the first truncated or corrupt frame
/// (a torn tail is expected after a crash; the `Join`/`Catchup` exchange
/// replays whatever the prefix is missing).
fn scan_shard_log(bytes: &[u8], m: usize) -> Vec<(u64, Vec<LogEntry>)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let Some(end) = at.checked_add(4 + len + 4) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[at + 4..at + 4 + len];
        let crc = u32::from_le_bytes(bytes[at + 4 + len..end].try_into().unwrap());
        if crc32(payload) != crc {
            break;
        }
        let mut r = Reader::new(payload);
        let Some(seq) = r.u64() else { break };
        let Some(count) = r.u32() else { break };
        let mut entries = Vec::with_capacity(count as usize);
        let mut ok = true;
        for _ in 0..count {
            match decode_entry(&mut r, m) {
                Some(e) => entries.push(e),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break;
        }
        out.push((seq, entries));
        at = end;
    }
    out
}

const CHECKPOINT_MAGIC: &[u8; 8] = b"UCPCSHCK";
const CHECKPOINT_VERSION: u32 = 1;

fn encode_stats(b: &mut Vec<u8>, s: &ClusterStats) {
    put_u64(b, s.size() as u64);
    put_row(b, s.psi());
    put_row(b, s.phi());
    put_row(b, s.mean_sum());
    let (psi_tot, phi_tot, s_sq_tot) = s.scalar_aggregates();
    put_f64(b, psi_tot);
    put_f64(b, phi_tot);
    put_f64(b, s_sq_tot);
}

fn decode_stats(r: &mut Reader<'_>, m: usize) -> Option<ClusterStats> {
    let size = r.u64()? as usize;
    let psi = r.row(m)?;
    let phi = r.row(m)?;
    let mean_sum = r.row(m)?;
    let psi_tot = r.f64()?;
    let phi_tot = r.f64()?;
    let s_sq_tot = r.f64()?;
    Some(ClusterStats::from_raw_parts(
        psi,
        phi,
        mean_sum,
        size,
        psi_tot,
        phi_tot,
        s_sq_tot,
        Default::default(),
    ))
}

// ---------------------------------------------------------------------
// Participant
// ---------------------------------------------------------------------

/// One shard node: a [`SlabArena`] partition holding the rows it owns, a
/// full `ClusterStats` replica maintained by replaying the global log,
/// an applied-sequence watermark (idempotence), a cached last reply
/// (retransmissions), and a write-ahead shard log (recovery).
#[derive(Debug)]
struct Participant {
    shard: usize,
    shards: usize,
    m: usize,
    epoch: u64,
    stats: Vec<ClusterStats>,
    slab: SlabArena,
    /// Global slot → local slab handle for the rows this shard owns.
    local: BTreeMap<u32, ObjectHandle>,
    /// Highest globally-sequenced round reflected in durable + volatile
    /// state. Lockstep commits guarantee in-order delivery of *new*
    /// rounds, so a single watermark (not a gap set) suffices.
    applied: u64,
    /// The last round this shard executed as owner — resent verbatim
    /// when a retransmitted `Execute` arrives after the `Done` was lost.
    last_done: Option<(u64, Vec<LogEntry>)>,
    /// Durable log handle; the buffer outlives the participant (the
    /// harness keeps a clone), which is what crash recovery reads.
    wal: SharedVecIo,
}

impl Participant {
    fn fresh(
        m: usize,
        k: usize,
        shards: usize,
        shard: usize,
        epoch: u64,
        wal: SharedVecIo,
    ) -> Self {
        Self {
            shard,
            shards,
            m,
            epoch,
            stats: vec![ClusterStats::empty(m); k],
            slab: SlabArena::new(),
            local: BTreeMap::new(),
            applied: 0,
            last_done: None,
            wal,
        }
    }

    /// Rebuilds a shard from its durable bytes: decode the checkpoint
    /// (if any), then replay the shard log's valid prefix on top. A torn
    /// tail truncates the replay at the last complete frame; the
    /// `Join`/`Catchup` exchange supplies whatever is missing.
    #[allow(clippy::too_many_arguments)]
    fn recover(
        m: usize,
        k: usize,
        shards: usize,
        shard: usize,
        epoch: u64,
        checkpoint: &[u8],
        log_bytes: &[u8],
        wal: SharedVecIo,
    ) -> Self {
        let mut p = Self::fresh(m, k, shards, shard, epoch, wal);
        if !checkpoint.is_empty() {
            let body = &checkpoint[..checkpoint.len() - 4];
            let crc = u32::from_le_bytes(checkpoint[checkpoint.len() - 4..].try_into().unwrap());
            assert_eq!(crc32(body), crc, "shard {shard} checkpoint corrupt");
            let mut r = Reader::new(body);
            assert_eq!(
                r.bytes(8),
                Some(&CHECKPOINT_MAGIC[..]),
                "bad checkpoint magic"
            );
            assert_eq!(r.u32(), Some(CHECKPOINT_VERSION), "bad checkpoint version");
            assert_eq!(r.u64(), Some(m as u64), "checkpoint dimension mismatch");
            assert_eq!(r.u64(), Some(k as u64), "checkpoint k mismatch");
            p.applied = r.u64().expect("checkpoint applied");
            for c in 0..k {
                p.stats[c] = decode_stats(&mut r, m).expect("checkpoint stats");
            }
            let rows = r.u64().expect("checkpoint row count");
            for _ in 0..rows {
                let slot = r.u32().expect("checkpoint row slot");
                let mu = r.row(m).expect("checkpoint row mu");
                let mu2 = r.row(m).expect("checkpoint row mu2");
                let mo = Moments::from_mu_mu2(mu, mu2);
                let h = p.slab.insert_view(&mo.view());
                p.local.insert(slot, h);
            }
        }
        for (seq, entries) in scan_shard_log(log_bytes, m) {
            if seq > p.applied {
                p.apply_entries(&entries);
                p.applied = seq;
                p.last_done = Some((seq, entries));
            }
        }
        p
    }

    /// Serializes the complete shard state (stats replica, owned rows,
    /// watermark) with a trailing CRC. Restoring it and replaying an
    /// empty log reproduces the state bit-for-bit.
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(CHECKPOINT_MAGIC);
        put_u32(&mut b, CHECKPOINT_VERSION);
        put_u64(&mut b, self.m as u64);
        put_u64(&mut b, self.stats.len() as u64);
        put_u64(&mut b, self.applied);
        for s in &self.stats {
            encode_stats(&mut b, s);
        }
        put_u64(&mut b, self.local.len() as u64);
        for (&slot, &h) in &self.local {
            put_u32(&mut b, slot);
            let v = self.slab.view(h.slot());
            put_row(&mut b, v.mu);
            put_row(&mut b, v.mu2);
        }
        let crc = crc32(&b);
        put_u32(&mut b, crc);
        b
    }

    fn owns(&self, slot: u32) -> bool {
        owner_of_slot(slot, self.shards) == self.shard
    }

    fn reply(&self, payload: Payload) -> Envelope {
        Envelope {
            from: self.shard + 1,
            to: 0,
            epoch: self.epoch,
            payload,
        }
    }

    fn wal_append(&mut self, seq: u64, entries: &[LogEntry]) {
        use crate::wal::DurableIo;
        let frame = encode_frame(seq, entries);
        self.wal.write_all(&frame).expect("shard log append");
        self.wal.sync().expect("shard log sync");
    }

    /// Replays log entries onto this replica: every replica performs the
    /// identical `add_view`/`remove_view` calls in the identical order,
    /// which is the whole bit-identity argument. Slab bookkeeping runs
    /// only for rows this shard owns.
    fn apply_entries(&mut self, entries: &[LogEntry]) {
        for e in entries {
            match e.op {
                LogOp::Insert { slot, cluster } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    let v = mo.view();
                    self.stats[cluster].add_view(&v);
                    if self.owns(slot) {
                        let h = self.slab.insert_view(&v);
                        self.local.insert(slot, h);
                    }
                }
                LogOp::Remove { slot, cluster } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    self.stats[cluster].remove_view(&mo.view());
                    if self.owns(slot) {
                        let h = self.local.remove(&slot).expect("owned row present");
                        self.slab.remove(h).expect("owned row live");
                    }
                }
                LogOp::Move { slot: _, src, dst } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    let v = mo.view();
                    self.stats[src].remove_view(&v);
                    self.stats[dst].add_view(&v);
                }
                LogOp::NoMove { .. } => {}
            }
        }
    }

    /// The local propose phase: price each op against the replica with
    /// the exact kernels, apply the outcome immediately (so later ops in
    /// the batch see it, exactly as the single-node pass would), then
    /// log the round as one frame and advance the watermark. Round
    /// frames are atomic: a crash mid-round recovers to the previous
    /// round boundary and the coordinator's retry re-executes
    /// deterministically.
    fn execute(&mut self, seq: u64, ops: &[Op]) -> Vec<LogEntry> {
        let mut entries = Vec::with_capacity(ops.len());
        for op in ops {
            let entry = match op {
                Op::Insert { slot, mu, mu2 } => {
                    let mo = Moments::from_mu_mu2(mu.clone(), mu2.clone());
                    let (cluster, _delta) =
                        best_insertion(&self.stats, &mo.view()).expect("k >= 1 clusters");
                    LogEntry {
                        op: LogOp::Insert {
                            slot: *slot,
                            cluster,
                        },
                        mu: mu.clone(),
                        mu2: mu2.clone(),
                    }
                }
                Op::Remove { slot, cluster } => {
                    let h = *self.local.get(slot).expect("owner holds the departing row");
                    let v = self.slab.view(h.slot());
                    LogEntry {
                        op: LogOp::Remove {
                            slot: *slot,
                            cluster: *cluster,
                        },
                        mu: v.mu.to_vec(),
                        mu2: v.mu2.to_vec(),
                    }
                }
                Op::Relocate { slot, src } => {
                    if self.stats[*src].size() == 1 {
                        // Sole member: relocating it is a no-op on J.
                        // Same visit-time skip as the single-node pass.
                        LogEntry::no_move(*slot)
                    } else {
                        let h = *self.local.get(slot).expect("owner holds the candidate row");
                        let v = self.slab.view(h.slot());
                        match best_candidate(&self.stats, *src, &v) {
                            Some((dst, delta)) if delta < -TOLERANCE => LogEntry {
                                op: LogOp::Move {
                                    slot: *slot,
                                    src: *src,
                                    dst,
                                },
                                mu: v.mu.to_vec(),
                                mu2: v.mu2.to_vec(),
                            },
                            _ => LogEntry::no_move(*slot),
                        }
                    }
                }
            };
            self.apply_entries(std::slice::from_ref(&entry));
            entries.push(entry);
        }
        self.wal_append(seq, &entries);
        self.applied = seq;
        entries
    }

    /// The participant's message loop body. Epoch fencing happens first;
    /// everything else is keyed on the applied watermark so duplicated
    /// and reordered deliveries are harmless.
    fn handle(&mut self, env: Envelope, tx: &mut dyn Transport) {
        if env.epoch != self.epoch {
            return; // fenced: a pre-restart straggler
        }
        match env.payload {
            Payload::Execute { seq, ops } => {
                if seq <= self.applied {
                    // Retransmission. Under lockstep it can only name the
                    // round we last executed; resend the cached reply.
                    if let Some((s, entries)) = &self.last_done {
                        if *s == seq {
                            let done = Payload::Done {
                                seq,
                                entries: entries.clone(),
                            };
                            tx.send(self.reply(done));
                        }
                    }
                    return;
                }
                let entries = self.execute(seq, &ops);
                tx.send(self.reply(Payload::Done {
                    seq,
                    entries: entries.clone(),
                }));
                self.last_done = Some((seq, entries));
            }
            Payload::Apply { seq, entries } => {
                if seq > self.applied {
                    self.wal_append(seq, &entries);
                    self.apply_entries(&entries);
                    self.applied = seq;
                }
                tx.send(self.reply(Payload::Ack { seq }));
            }
            Payload::Catchup { rounds } => {
                for (seq, entries) in rounds {
                    if seq > self.applied {
                        self.wal_append(seq, &entries);
                        self.apply_entries(&entries);
                        self.applied = seq;
                    }
                }
                tx.send(self.reply(Payload::Ack { seq: self.applied }));
            }
            // Coordinator-bound payloads misdelivered by a confused
            // fabric: drop.
            Payload::Done { .. } | Payload::Ack { .. } | Payload::Join { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Node 0: the global sequencer. Allocates slots with the single-node
/// store's exact LIFO free-list + generation discipline (so handle
/// sequences match [`crate::incremental::IncrementalUcpc`]), keeps its
/// own label map and stats replica, retains the committed log for
/// `Catchup`, and tracks per-participant epochs.
#[derive(Debug)]
struct Coordinator {
    labels: Vec<Option<usize>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    stats: Vec<ClusterStats>,
    /// Next round sequence number (rounds start at 1).
    next_seq: u64,
    /// Committed rounds, for catch-up replays.
    log: Vec<(u64, Vec<LogEntry>)>,
    /// Current epoch of each participant; bumped by restarts.
    epochs: Vec<u64>,
    /// Protocol retransmissions performed (diagnostic).
    retries: u64,
}

impl Coordinator {
    fn new(m: usize, k: usize, shards: usize) -> Self {
        Self {
            labels: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: vec![ClusterStats::empty(m); k],
            next_seq: 1,
            log: Vec::new(),
            epochs: vec![1; shards],
            retries: 0,
        }
    }

    /// Allocates a global slot + generation, mirroring the single-node
    /// `MomentStore` bit-for-bit: pop the LIFO free-list under the
    /// slot's current generation, else append a fresh slot at
    /// generation 0.
    fn alloc(&mut self) -> (u32, u32) {
        match self.free.pop() {
            Some(slot) => (slot, self.gens[slot as usize]),
            None => {
                let slot = u32::try_from(self.gens.len()).expect("slot space exhausted (u32)");
                self.gens.push(0);
                (slot, 0)
            }
        }
    }

    /// Whether `h` names a live object (same staleness semantics as the
    /// single-node store: slot live *and* generation current).
    fn contains(&self, h: ObjectHandle) -> bool {
        let slot = h.slot();
        slot < self.gens.len()
            && self.gens[slot] == h.generation()
            && self.labels.get(slot).is_some_and(Option::is_some)
    }

    /// Applies a committed round to the coordinator's replica: the same
    /// stats transitions every participant performs, plus the label map
    /// and allocator bookkeeping mirroring the single-node engine
    /// (generation bump + LIFO free on removal).
    fn apply_round(&mut self, entries: &[LogEntry]) {
        for e in entries {
            match e.op {
                LogOp::Insert { slot, cluster } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    self.stats[cluster].add_view(&mo.view());
                    let s = slot as usize;
                    if s == self.labels.len() {
                        self.labels.push(Some(cluster));
                    } else {
                        debug_assert!(self.labels[s].is_none(), "recycled slot must be free");
                        self.labels[s] = Some(cluster);
                    }
                    self.live += 1;
                }
                LogOp::Remove { slot, cluster } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    self.stats[cluster].remove_view(&mo.view());
                    let s = slot as usize;
                    self.labels[s] = None;
                    self.gens[s] = self.gens[s].wrapping_add(1);
                    self.free.push(slot);
                    self.live -= 1;
                }
                LogOp::Move { slot, src, dst } => {
                    let mo = Moments::from_mu_mu2(e.mu.clone(), e.mu2.clone());
                    let v = mo.view();
                    self.stats[src].remove_view(&v);
                    self.stats[dst].add_view(&v);
                    self.labels[slot as usize] = Some(dst);
                }
                LogOp::NoMove { .. } => {}
            }
        }
    }
}

/// A shard's surviving storage: the last checkpoint's bytes plus the
/// shard log accumulated since. Both live outside the participant (the
/// [`SharedVecIo`] buffer is shared), so [`ShardedUcpc::crash`] destroys
/// only volatile state — exactly a process crash.
#[derive(Debug)]
struct ShardDurable {
    checkpoint: Vec<u8>,
    wal: SharedVecIo,
}

fn reply_matches(request: &Payload, reply: &Payload) -> bool {
    match (request, reply) {
        (Payload::Execute { seq: a, .. }, Payload::Done { seq: b, .. }) => a == b,
        (Payload::Apply { seq: a, .. }, Payload::Ack { seq: b }) => a == b,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// ShardedUcpc — the synchronous driver
// ---------------------------------------------------------------------

/// A UCPC partition sharded across in-process coordinator/participant
/// nodes, byte-identical to [`crate::incremental::IncrementalUcpc`] at
/// any shard count under any tolerated fault schedule (see the module
/// docs for the protocol and the bit-identity argument).
///
/// ```
/// use ucpc_core::sharded::ShardedUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let mut sharded = ShardedUcpc::new(1, 2, 4).unwrap();
/// let mut ids = Vec::new();
/// for c in [0.0, 0.2, 9.0, 9.2] {
///     let o = UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);
///     ids.push(sharded.insert(&o).unwrap());
/// }
/// sharded.stabilize(5);
/// assert_eq!(sharded.label_of(ids[0]), sharded.label_of(ids[1]));
/// assert_ne!(sharded.label_of(ids[0]), sharded.label_of(ids[2]));
/// ```
#[derive(Debug)]
pub struct ShardedUcpc {
    m: usize,
    k: usize,
    shards: usize,
    clock: ManualClock,
    transport: Box<dyn Transport>,
    coordinator: Coordinator,
    participants: Vec<Option<Participant>>,
    durable: Vec<ShardDurable>,
}

impl ShardedUcpc {
    /// A sharded engine over `m` dimensions, `k` clusters and `shards`
    /// participants on the faithful [`MpscTransport`].
    pub fn new(m: usize, k: usize, shards: usize) -> Result<Self, ClusterError> {
        Self::with_transport(m, k, shards, Box::new(MpscTransport::new(shards + 1)))
    }

    /// [`Self::new`] on a [`ChaosTransport`] faulting per `plan`.
    pub fn with_chaos(
        m: usize,
        k: usize,
        shards: usize,
        plan: ChaosPlan,
    ) -> Result<Self, ClusterError> {
        Self::with_transport(
            m,
            k,
            shards,
            Box::new(ChaosTransport::new(shards + 1, plan)),
        )
    }

    /// [`Self::new`] on a caller-supplied fabric (node 0 is the
    /// coordinator, nodes `1..=shards` the participants).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_transport(
        m: usize,
        k: usize,
        shards: usize,
        transport: Box<dyn Transport>,
    ) -> Result<Self, ClusterError> {
        if k == 0 {
            return Err(ClusterError::InvalidK { k, n: 0 });
        }
        assert!(shards >= 1, "at least one shard is required");
        let durable: Vec<ShardDurable> = (0..shards)
            .map(|_| ShardDurable {
                checkpoint: Vec::new(),
                wal: SharedVecIo::new(),
            })
            .collect();
        let participants = (0..shards)
            .map(|shard| {
                Some(Participant::fresh(
                    m,
                    k,
                    shards,
                    shard,
                    1,
                    durable[shard].wal.clone(),
                ))
            })
            .collect();
        Ok(Self {
            m,
            k,
            shards,
            clock: ManualClock::new(),
            transport,
            coordinator: Coordinator::new(m, k, shards),
            participants,
            durable,
        })
    }

    /// Reads the `UCPC_SHARDS` environment knob (a positive integer)
    /// through the shared warn-and-fall-back reader; `None` when unset
    /// or invalid (callers fall back to their default).
    pub fn shards_from_env() -> Option<usize> {
        ucpc_uncertain::env::read_knob("UCPC_SHARDS", "positive integer", |v| {
            v.parse::<usize>().ok().filter(|&s| s >= 1)
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.coordinator.live
    }

    /// Whether no objects are present.
    pub fn is_empty(&self) -> bool {
        self.coordinator.live == 0
    }

    /// Current total objective `Σ_C J(C)` from the coordinator replica.
    pub fn objective(&self) -> f64 {
        total_objective(&self.coordinator.stats)
    }

    /// The coordinator's per-cluster statistics replica.
    pub fn cluster_stats(&self) -> &[ClusterStats] {
        &self.coordinator.stats
    }

    /// A live participant's statistics replica (`None` while crashed) —
    /// the differential harness asserts these are bit-identical to the
    /// coordinator's after every committed round.
    pub fn shard_stats(&self, shard: usize) -> Option<&[ClusterStats]> {
        self.participants[shard]
            .as_ref()
            .map(|p| p.stats.as_slice())
    }

    /// A live participant's applied-sequence watermark.
    pub fn shard_applied(&self, shard: usize) -> Option<u64> {
        self.participants[shard].as_ref().map(|p| p.applied)
    }

    /// Rounds committed so far.
    pub fn committed_rounds(&self) -> u64 {
        self.coordinator.next_seq - 1
    }

    /// Protocol retransmissions performed so far (0 on a clean fabric).
    pub fn retries(&self) -> u64 {
        self.coordinator.retries
    }

    /// The shard owning a live handle's row; `None` if stale.
    pub fn owner_shard(&self, h: ObjectHandle) -> Option<usize> {
        self.coordinator
            .contains(h)
            .then(|| owner_of_slot(h.slot() as u32, self.shards))
    }

    /// Current cluster of a live object; `None` if the handle is stale.
    pub fn label_of(&self, h: ObjectHandle) -> Option<usize> {
        if !self.coordinator.contains(h) {
            return None;
        }
        self.coordinator.labels[h.slot()]
    }

    /// Current handles and labels of all live objects, in slot order —
    /// directly comparable with the single-node engine's
    /// [`crate::incremental::IncrementalUcpc::live_labels`] because the
    /// coordinator allocates slots and generations with the identical
    /// discipline.
    pub fn live_labels(&self) -> Vec<(ObjectHandle, usize)> {
        self.coordinator
            .labels
            .iter()
            .enumerate()
            .filter_map(|(slot, l)| {
                l.map(|c| {
                    (
                        ObjectHandle::new(slot as u32, self.coordinator.gens[slot]),
                        c,
                    )
                })
            })
            .collect()
    }

    /// Inserts an object into the cluster minimizing the objective
    /// increase, through a full protocol round; returns the same
    /// generation-stamped handle the single-node engine would.
    pub fn insert(&mut self, object: &UncertainObject) -> Result<ObjectHandle, ClusterError> {
        self.insert_moments(object.moments())
    }

    /// [`Self::insert`] for an arrival already reduced to its moments.
    pub fn insert_moments(&mut self, mo: &Moments) -> Result<ObjectHandle, ClusterError> {
        if mo.dims() != self.m {
            return Err(ClusterError::DimensionMismatch {
                expected: self.m,
                found: mo.dims(),
                index: self.coordinator.labels.len(),
            });
        }
        let (slot, gen) = self.coordinator.alloc();
        let owner = owner_of_slot(slot, self.shards);
        let ops = vec![Op::Insert {
            slot,
            mu: mo.mu().to_vec(),
            mu2: mo.mu2().to_vec(),
        }];
        self.run_round(owner, ops);
        Ok(ObjectHandle::new(slot, gen))
    }

    /// Removes a live object. A stale handle is a checked
    /// [`ClusterError::StaleHandle`], verified against the coordinator's
    /// generation mirror before any message is sent.
    pub fn remove(&mut self, h: ObjectHandle) -> Result<(), ClusterError> {
        if !self.coordinator.contains(h) {
            return Err(ClusterError::StaleHandle {
                slot: h.slot() as u32,
                generation: h.generation(),
            });
        }
        let slot = h.slot();
        let cluster = self.coordinator.labels[slot].expect("live slot has a label");
        let owner = owner_of_slot(slot as u32, self.shards);
        self.run_round(
            owner,
            vec![Op::Remove {
                slot: slot as u32,
                cluster,
            }],
        );
        Ok(())
    }

    /// Runs up to `passes` relocation passes of Algorithm 1 across the
    /// shards; returns the number of relocations applied. Each pass
    /// visits live slots in global slot order — batched into proposal
    /// rounds of consecutive same-owner slots — so the relocation
    /// sequence is identical to the single-node pass.
    pub fn stabilize(&mut self, passes: usize) -> usize {
        let mut relocations = 0usize;
        for _ in 0..passes {
            let mut moved = false;
            let mut i = 0usize;
            while i < self.coordinator.labels.len() {
                if self.coordinator.labels[i].is_none() {
                    i += 1;
                    continue;
                }
                let owner = owner_of_slot(i as u32, self.shards);
                let mut ops = Vec::new();
                let mut j = i;
                while j < self.coordinator.labels.len()
                    && owner_of_slot(j as u32, self.shards) == owner
                {
                    if let Some(src) = self.coordinator.labels[j] {
                        ops.push(Op::Relocate {
                            slot: j as u32,
                            src,
                        });
                    }
                    j += 1;
                }
                let entries = self.run_round(owner, ops);
                for e in &entries {
                    if matches!(e.op, LogOp::Move { .. }) {
                        relocations += 1;
                        moved = true;
                    }
                }
                i = j;
            }
            if !moved {
                break;
            }
        }
        relocations
    }

    // -- crash / recovery ---------------------------------------------

    /// Kills a participant's volatile state (its process). Durable bytes
    /// — checkpoint and shard log — survive for [`Self::restart`].
    /// Issuing ops against a crashed shard stalls and panics after the
    /// retry budget; restart it first.
    pub fn crash(&mut self, shard: usize) {
        assert!(shard < self.shards, "shard index out of range");
        assert!(
            self.participants[shard].is_some(),
            "shard {shard} is already down"
        );
        self.participants[shard] = None;
    }

    /// Recovers a crashed shard from checkpoint + shard-log valid
    /// prefix, fences off its previous life with a new epoch, and runs
    /// the `Join`/`Catchup` exchange so the rejoined replica reflects
    /// every committed round — all without perturbing the apply log.
    pub fn restart(&mut self, shard: usize) {
        assert!(shard < self.shards, "shard index out of range");
        assert!(
            self.participants[shard].is_none(),
            "shard {shard} is running"
        );
        let epoch = self.coordinator.epochs[shard] + 1;
        self.coordinator.epochs[shard] = epoch;
        let d = &self.durable[shard];
        let p = Participant::recover(
            self.m,
            self.k,
            self.shards,
            shard,
            epoch,
            &d.checkpoint,
            &d.wal.bytes(),
            d.wal.clone(),
        );
        self.participants[shard] = Some(p);
        self.rejoin(shard);
    }

    /// Checkpoints a live shard: serializes its full state, installs it
    /// as the durable checkpoint, then truncates the shard log — the
    /// same checkpoint-then-truncate rotation discipline as
    /// [`crate::serving::ServingUcpc::checkpoint_into`], at shard
    /// granularity.
    pub fn checkpoint_shard(&mut self, shard: usize) {
        assert!(shard < self.shards, "shard index out of range");
        let p = self.participants[shard]
            .as_ref()
            .expect("cannot checkpoint a crashed shard");
        self.durable[shard].checkpoint = p.encode_checkpoint();
        self.durable[shard].wal.truncate(0);
    }

    /// Truncates a shard's *durable* log to `keep` bytes — the
    /// crash-surgery hook recovery tests cut torn tails with (the
    /// running participant is unaffected until it crashes).
    pub fn truncate_shard_wal(&mut self, shard: usize, keep: usize) {
        assert!(shard < self.shards, "shard index out of range");
        self.durable[shard].wal.truncate(keep);
    }

    // -- protocol driving ---------------------------------------------

    /// Delivers every pending participant-bound envelope (alive shards
    /// handle them and may reply; a crashed shard's mail is lost, as a
    /// down node's would be). Returns whether anything was delivered.
    fn pump_participants(&mut self) -> bool {
        let mut progressed = false;
        for shard in 0..self.shards {
            let node = shard + 1;
            while let Some(env) = self.transport.recv(node) {
                progressed = true;
                if let Some(p) = self.participants[shard].as_mut() {
                    p.handle(env, self.transport.as_mut());
                }
            }
        }
        progressed
    }

    /// One full committed round: `Execute` at the owner, apply the
    /// resulting entries at the coordinator, broadcast `Apply` to every
    /// other shard, collect all acknowledgements, then commit. Lockstep:
    /// the next sequence number is not used until this one is fully
    /// replicated.
    fn run_round(&mut self, owner: usize, ops: Vec<Op>) -> Vec<LogEntry> {
        let seq = self.coordinator.next_seq;
        let exec = Envelope {
            from: 0,
            to: owner + 1,
            epoch: self.coordinator.epochs[owner],
            payload: Payload::Execute { seq, ops },
        };
        let mut replies = self.complete(vec![exec]);
        let Some(Payload::Done { entries, .. }) = replies.pop() else {
            unreachable!("complete() returns the matched Done");
        };
        self.coordinator.apply_round(&entries);
        let applies: Vec<Envelope> = (0..self.shards)
            .filter(|&s| s != owner)
            .map(|s| Envelope {
                from: 0,
                to: s + 1,
                epoch: self.coordinator.epochs[s],
                payload: Payload::Apply {
                    seq,
                    entries: entries.clone(),
                },
            })
            .collect();
        if !applies.is_empty() {
            self.complete(applies);
        }
        self.coordinator.log.push((seq, entries.clone()));
        self.coordinator.next_seq += 1;
        entries
    }

    /// Sends `requests` and drives the fabric until each has its
    /// matching reply, retrying unanswered ones on exponentially backed
    /// off deadlines from the manual clock (advanced only when nothing
    /// was deliverable, so schedules are deterministic). Epoch-fenced:
    /// replies from a stale participant life are dropped.
    fn complete(&mut self, requests: Vec<Envelope>) -> Vec<Payload> {
        for r in &requests {
            self.transport.send(r.clone());
        }
        let mut got: Vec<Option<Payload>> = vec![None; requests.len()];
        let mut deadlines: Vec<(std::time::Instant, u32)> = requests
            .iter()
            .map(|_| (self.clock.now() + RETRY_BASE, 0u32))
            .collect();
        loop {
            let mut progressed = self.pump_participants();
            while let Some(env) = self.transport.recv(0) {
                progressed = true;
                if env.from == 0 || env.from > self.shards {
                    continue;
                }
                if env.epoch != self.coordinator.epochs[env.from - 1] {
                    continue; // fenced
                }
                if let Some(i) = requests
                    .iter()
                    .position(|r| r.to == env.from && reply_matches(&r.payload, &env.payload))
                {
                    if got[i].is_none() {
                        got[i] = Some(env.payload);
                    }
                }
                // Anything else — duplicate, stale round, misdelivery —
                // is dropped; idempotence makes that safe.
            }
            if got.iter().all(Option::is_some) {
                return got.into_iter().map(|g| g.expect("checked")).collect();
            }
            if !progressed {
                self.transport.step();
                self.clock.advance(TICK);
                let now = self.clock.now();
                for (i, r) in requests.iter().enumerate() {
                    if got[i].is_some() {
                        continue;
                    }
                    let (deadline, attempt) = deadlines[i];
                    if now >= deadline {
                        assert!(
                            attempt < MAX_ATTEMPTS,
                            "shard {} unresponsive after {} retransmissions \
                             (crashed without restart?)",
                            r.to - 1,
                            attempt
                        );
                        self.transport.send(r.clone());
                        self.coordinator.retries += 1;
                        let next = attempt + 1;
                        deadlines[i] = (now + RETRY_BASE * (1u32 << next.min(6)), next);
                    }
                }
            }
        }
    }

    /// The rejoin exchange after [`Self::restart`]: the recovered
    /// participant announces its durable watermark (`Join`), the
    /// coordinator replays the committed rounds past it (`Catchup`), and
    /// the participant acknowledges the full committed prefix. Retried
    /// under the same backoff discipline; every leg is idempotent.
    fn rejoin(&mut self, shard: usize) {
        let node = shard + 1;
        let epoch = self.coordinator.epochs[shard];
        let applied = self.participants[shard]
            .as_ref()
            .expect("restart installed the participant")
            .applied;
        let join = Envelope {
            from: node,
            to: 0,
            epoch,
            payload: Payload::Join { applied },
        };
        let committed = self.coordinator.next_seq - 1;
        self.transport.send(join.clone());
        let (mut deadline, mut attempt) = (self.clock.now() + RETRY_BASE, 0u32);
        loop {
            let mut progressed = self.pump_participants();
            while let Some(env) = self.transport.recv(0) {
                progressed = true;
                if env.from != node || env.epoch != epoch {
                    continue;
                }
                match env.payload {
                    Payload::Join { applied } => {
                        let rounds: Vec<(u64, Vec<LogEntry>)> = self
                            .coordinator
                            .log
                            .iter()
                            .filter(|(s, _)| *s > applied)
                            .cloned()
                            .collect();
                        self.transport.send(Envelope {
                            from: 0,
                            to: node,
                            epoch,
                            payload: Payload::Catchup { rounds },
                        });
                    }
                    Payload::Ack { seq } if seq == committed => return,
                    _ => {}
                }
            }
            if !progressed {
                self.transport.step();
                self.clock.advance(TICK);
                if self.clock.now() >= deadline {
                    assert!(
                        attempt < MAX_ATTEMPTS,
                        "rejoin of shard {shard} stalled after {attempt} retransmissions"
                    );
                    self.transport.send(join.clone());
                    self.coordinator.retries += 1;
                    attempt += 1;
                    deadline = self.clock.now() + RETRY_BASE * (1u32 << attempt.min(6));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalUcpc;
    use ucpc_uncertain::UnivariatePdf;

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![UnivariatePdf::normal(c, 0.2)])
    }

    fn bits_equal(a: &ClusterStats, b: &ClusterStats) -> bool {
        a.size() == b.size()
            && a.j().to_bits() == b.j().to_bits()
            && a.psi()
                .iter()
                .zip(b.psi())
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.phi()
                .iter()
                .zip(b.phi())
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.mean_sum()
                .iter()
                .zip(b.mean_sum())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    fn assert_matches_single_node(sharded: &ShardedUcpc, single: &IncrementalUcpc) {
        assert_eq!(sharded.live_labels(), single.live_labels());
        assert_eq!(
            sharded.objective().to_bits(),
            single.objective().to_bits(),
            "objective must be bit-identical"
        );
        for (a, b) in sharded.cluster_stats().iter().zip(single.cluster_stats()) {
            assert!(bits_equal(a, b), "coordinator stats replica diverged");
        }
        for shard in 0..sharded.shards() {
            let stats = sharded.shard_stats(shard).expect("shard alive");
            for (a, b) in stats.iter().zip(single.cluster_stats()) {
                assert!(bits_equal(a, b), "shard {shard} stats replica diverged");
            }
        }
    }

    fn drive_script(sharded: &mut ShardedUcpc, single: &mut IncrementalUcpc) {
        let mut handles = Vec::new();
        for (i, c) in [0.0, 0.3, 9.0, 9.1, 0.1, 8.8, 0.2, 9.3, 4.5, 0.05]
            .iter()
            .enumerate()
        {
            let o = obj(*c);
            let hs = sharded.insert(&o).unwrap();
            let hn = single.insert(&o).unwrap();
            assert_eq!(hs, hn, "handle sequences must match");
            handles.push(hs);
            if i % 4 == 3 {
                assert_eq!(sharded.stabilize(3), single.stabilize(3));
            }
        }
        sharded.remove(handles[2]).unwrap();
        single.remove(handles[2]).unwrap();
        assert!(sharded.remove(handles[2]).is_err(), "stale handle checked");
        let o = obj(7.7);
        assert_eq!(sharded.insert(&o).unwrap(), single.insert(&o).unwrap());
        assert_eq!(sharded.stabilize(5), single.stabilize(5));
    }

    #[test]
    fn clean_sharded_run_is_bit_identical_to_single_node() {
        for shards in [1, 2, 3, 4] {
            let mut sharded = ShardedUcpc::new(1, 2, shards).unwrap();
            let mut single = IncrementalUcpc::new(1, 2).unwrap();
            drive_script(&mut sharded, &mut single);
            assert_matches_single_node(&sharded, &single);
            assert_eq!(sharded.retries(), 0, "clean fabric needs no retries");
        }
    }

    #[test]
    fn chaotic_fabric_reaches_the_same_bits_with_retries() {
        let mut sharded = ShardedUcpc::with_chaos(1, 2, 3, ChaosPlan::mixed(42)).unwrap();
        let mut single = IncrementalUcpc::new(1, 2).unwrap();
        drive_script(&mut sharded, &mut single);
        assert_matches_single_node(&sharded, &single);
    }

    #[test]
    fn crash_recovery_rejoins_bit_identically() {
        let mut sharded = ShardedUcpc::new(1, 2, 2).unwrap();
        let mut single = IncrementalUcpc::new(1, 2).unwrap();
        for c in [0.0, 0.4, 9.0, 9.2, 0.2, 8.9, 0.3, 9.4, 0.1] {
            let o = obj(c);
            sharded.insert(&o).unwrap();
            single.insert(&o).unwrap();
        }
        sharded.checkpoint_shard(0);
        sharded.crash(0);
        sharded.restart(0);
        assert_eq!(sharded.shard_applied(0), Some(sharded.committed_rounds()));
        assert_eq!(sharded.stabilize(5), single.stabilize(5));
        assert_matches_single_node(&sharded, &single);
    }

    #[test]
    fn torn_shard_log_is_repaired_by_catchup() {
        let mut sharded = ShardedUcpc::new(1, 2, 2).unwrap();
        let mut single = IncrementalUcpc::new(1, 2).unwrap();
        for c in [0.0, 0.4, 9.0, 9.2, 0.2, 8.9, 0.3, 9.4, 0.1, 9.5] {
            let o = obj(c);
            sharded.insert(&o).unwrap();
            single.insert(&o).unwrap();
        }
        // Tear the tail of shard 1's durable log mid-frame; recovery
        // salvages the prefix and Catchup replays the difference.
        sharded.crash(1);
        sharded.truncate_shard_wal(1, 11);
        sharded.restart(1);
        assert_eq!(sharded.shard_applied(1), Some(sharded.committed_rounds()));
        assert_eq!(sharded.stabilize(5), single.stabilize(5));
        assert_matches_single_node(&sharded, &single);
    }

    #[test]
    fn chaos_transport_is_reproducible_from_its_seed() {
        let run = |seed: u64| {
            let mut sharded = ShardedUcpc::with_chaos(1, 2, 2, ChaosPlan::mixed(seed)).unwrap();
            for c in [0.0, 9.0, 0.1, 9.1, 0.2] {
                sharded.insert(&obj(c)).unwrap();
            }
            sharded.stabilize(3);
            (sharded.retries(), sharded.live_labels())
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
    }

    #[test]
    fn stale_epoch_envelopes_are_fenced_off() {
        let mut p = Participant::fresh(1, 2, 1, 0, 2, SharedVecIo::new());
        let mut tx = MpscTransport::new(2);
        p.handle(
            Envelope {
                from: 0,
                to: 1,
                epoch: 1, // previous life
                payload: Payload::Execute {
                    seq: 1,
                    ops: vec![Op::Insert {
                        slot: 0,
                        mu: vec![1.0],
                        mu2: vec![2.0],
                    }],
                },
            },
            &mut tx,
        );
        assert_eq!(p.applied, 0, "stale-epoch Execute must be dropped");
        assert!(tx.recv(0).is_none(), "and not answered");
    }

    #[test]
    fn sharding_knob_parses_positive_integers_only() {
        let (outcome, warning) =
            ucpc_uncertain::env::parse_knob("UCPC_SHARDS", Some("0"), "positive integer", |v| {
                v.parse::<usize>().ok().filter(|&s| s >= 1)
            });
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_SHARDS"));
    }
}
