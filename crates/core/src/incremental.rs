//! Incremental (online) maintenance of a UCPC clustering.
//!
//! Corollary 1 makes `J` updatable in O(m) per object addition/removal — one
//! fused dot product in the scalar-aggregate kernel form (see
//! [`ucpc_uncertain::arena`]); this
//! module exploits it beyond batch clustering: an [`IncrementalUcpc`] holds a
//! live partition of a stream of uncertain objects, inserting each arrival
//! into the cluster that minimizes the objective increase, removing departed
//! objects, and periodically re-stabilizing with relocation passes (each pass
//! is one iteration of Algorithm 1).
//!
//! This is the natural "moving objects" deployment of the paper's machinery:
//! positions go stale and get refreshed continuously, and re-running batch
//! UCPC from scratch on every update would waste the O(m) incrementality the
//! closed form provides.

use crate::framework::ClusterError;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_relocation, best_candidate, best_candidate_with_second, fp_scale, DriftTotals,
    PruneCache, PruneCounters, PruneDecision, PruningConfig,
};
use ucpc_uncertain::{Moments, UncertainObject};

/// A live UCPC partition supporting O(k·m) insertions, O(m) removals and
/// on-demand relocation passes.
///
/// ```
/// use ucpc_core::incremental::IncrementalUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let mut live = IncrementalUcpc::new(1, 2).unwrap();
/// let mut ids = Vec::new();
/// for c in [0.0, 0.2, 9.0, 9.2] {
///     let o = UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);
///     ids.push(live.insert(&o).unwrap());
/// }
/// live.stabilize(5);
/// assert_eq!(live.label_of(ids[0]), live.label_of(ids[1]));
/// assert_ne!(live.label_of(ids[0]), live.label_of(ids[2]));
/// assert!(live.remove(ids[3]));
/// assert_eq!(live.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalUcpc {
    m: usize,
    k: usize,
    stats: Vec<ClusterStats>,
    /// Moments of every live object (index-stable; removed slots are None).
    objects: Vec<Option<Moments>>,
    labels: Vec<Option<usize>>,
    live: usize,
    /// Candidate pruning for [`Self::stabilize`] passes.
    pruning: PruningConfig,
    /// Prune-cache epoch. Every insert/remove bumps it, invalidating all
    /// cached scan outcomes: an edit changes a cluster's statistics without
    /// going through the drift-tracked relocation path, so no cached bound
    /// may survive it (the cache/stat-consistency contract).
    epoch: u64,
    totals: DriftTotals,
    cache: PruneCache,
    counters: PruneCounters,
}

/// A handle to an inserted object (stable across removals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(usize);

impl ObjectId {
    /// The dense insertion-order slot of this handle (never reused).
    pub fn index(self) -> usize {
        self.0
    }
}

impl IncrementalUcpc {
    /// Creates an empty incremental clustering over `m` dimensions with `k`
    /// clusters.
    pub fn new(m: usize, k: usize) -> Result<Self, ClusterError> {
        if k == 0 {
            return Err(ClusterError::InvalidK { k, n: 0 });
        }
        Ok(Self {
            m,
            k,
            stats: vec![ClusterStats::empty(m); k],
            objects: Vec::new(),
            labels: Vec::new(),
            live: 0,
            pruning: PruningConfig::default(),
            epoch: 0,
            totals: DriftTotals::default(),
            cache: PruneCache::new(0, k),
            counters: PruneCounters::default(),
        })
    }

    /// Enables or disables candidate pruning for subsequent
    /// [`Self::stabilize`] calls; outstanding cached bounds are discarded.
    pub fn set_pruning(&mut self, pruning: PruningConfig) {
        self.pruning = pruning;
        self.epoch += 1;
    }

    /// The per-cluster sufficient statistics of the live partition (the
    /// aggregates the consistency tests cross-check against a from-scratch
    /// rebuild).
    pub fn cluster_stats(&self) -> &[ClusterStats] {
        &self.stats
    }

    /// Candidate-pruning counters accumulated over all stabilization passes.
    pub fn pruning_counters(&self) -> PruneCounters {
        self.counters
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current total objective `Σ_C J(C)`.
    pub fn objective(&self) -> f64 {
        total_objective(&self.stats)
    }

    /// Current cluster of a live object.
    pub fn label_of(&self, id: ObjectId) -> Option<usize> {
        self.labels.get(id.0).copied().flatten()
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.stats.iter().map(ClusterStats::size).collect()
    }

    /// Inserts an object into the cluster that minimizes the objective
    /// increase (O(k·m) by Corollary 1) and returns its handle.
    pub fn insert(&mut self, object: &UncertainObject) -> Result<ObjectId, ClusterError> {
        if object.dims() != self.m {
            return Err(ClusterError::DimensionMismatch {
                expected: self.m,
                found: object.dims(),
                index: self.objects.len(),
            });
        }
        let moments = object.moments().clone();
        let view = moments.view();
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        for (c, stats) in self.stats.iter().enumerate() {
            let delta = stats.delta_j_add(&view);
            if delta < best_delta {
                best_delta = delta;
                best = c;
            }
        }
        self.stats[best].add_view(&view);
        self.objects.push(Some(moments));
        self.labels.push(Some(best));
        self.live += 1;
        // The insertion mutated a cluster outside the drift-tracked
        // relocation path: invalidate every cached scan outcome.
        self.epoch += 1;
        Ok(ObjectId(self.objects.len() - 1))
    }

    /// Removes a live object in O(m). Returns `false` if the handle was
    /// already removed.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(slot) = self.labels.get_mut(id.0) else {
            return false;
        };
        let Some(cluster) = slot.take() else {
            return false;
        };
        let moments = self.objects[id.0].take().expect("label implies object");
        self.stats[cluster].remove(&moments);
        self.live -= 1;
        // Removal, like insertion, bypasses drift tracking: without this
        // epoch bump a stale cached bound could silently skip a scan whose
        // outcome the departed member changed (the cache/stat-consistency
        // regression in `tests/incremental_consistency.rs`).
        self.epoch += 1;
        true
    }

    /// Runs up to `passes` relocation passes of Algorithm 1 over the live
    /// objects; returns the number of relocations applied. With pruning
    /// enabled the passes take the exact tier-1/tier-2 shortcuts of
    /// [`crate::pruning`]; the relocation sequence is identical either way.
    pub fn stabilize(&mut self, passes: usize) -> usize {
        const TOLERANCE: f64 = 1e-9;
        let mut relocations = 0usize;
        let pruned = self.pruning.is_enabled();
        if pruned {
            self.cache.grow(self.objects.len());
        }
        for _ in 0..passes {
            let mut moved = false;
            let scale = if pruned { fp_scale(&self.stats) } else { 0.0 };
            for i in 0..self.objects.len() {
                let Some(src) = self.labels[i] else { continue };
                let moments = self.objects[i].as_ref().expect("live object");
                if self.stats[src].size() == 1 {
                    continue;
                }
                let view = moments.view();

                let decision = if pruned {
                    self.cache.view().decide(
                        i,
                        self.epoch,
                        &self.stats,
                        self.totals,
                        src,
                        &view,
                        TOLERANCE,
                        scale,
                    )
                } else {
                    PruneDecision::FullScan
                };

                match decision {
                    PruneDecision::Skip => {
                        self.counters.skips += 1;
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        self.counters.confirms += 1;
                        let delta = self.stats[src].delta_j_remove(&view)
                            + self.stats[dst].delta_j_add(&view);
                        if delta < -TOLERANCE {
                            let moments = moments.clone();
                            let view = moments.view();
                            if apply_tracked_relocation(
                                &mut self.stats,
                                src,
                                dst,
                                &view,
                                &mut self.totals,
                            ) {
                                self.epoch += 1;
                            }
                            self.cache.invalidate(i);
                            self.labels[i] = Some(dst);
                            relocations += 1;
                            moved = true;
                        }
                    }
                    PruneDecision::FullScan => {
                        if pruned {
                            self.counters.full_scans += 1;
                            if let Some((dst, delta, second)) =
                                best_candidate_with_second(&self.stats, src, &view)
                            {
                                if delta < -TOLERANCE {
                                    let moments = moments.clone();
                                    let view = moments.view();
                                    if apply_tracked_relocation(
                                        &mut self.stats,
                                        src,
                                        dst,
                                        &view,
                                        &mut self.totals,
                                    ) {
                                        self.epoch += 1;
                                    }
                                    self.cache.invalidate(i);
                                    self.labels[i] = Some(dst);
                                    relocations += 1;
                                    moved = true;
                                } else {
                                    self.cache.view().store(
                                        i,
                                        self.epoch,
                                        &self.stats,
                                        self.totals,
                                        dst,
                                        delta,
                                        second,
                                    );
                                }
                            }
                        } else if let Some((dst, delta)) = best_candidate(&self.stats, src, &view) {
                            if delta < -TOLERANCE {
                                let moments = moments.clone();
                                let view = moments.view();
                                self.stats[src].remove_view(&view);
                                self.stats[dst].add_view(&view);
                                self.labels[i] = Some(dst);
                                relocations += 1;
                                moved = true;
                            }
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
        relocations
    }

    /// Current labels of all live objects, in insertion order.
    pub fn live_labels(&self) -> Vec<(ObjectId, usize)> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|c| (ObjectId(i), c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![UnivariatePdf::normal(c, 0.2)])
    }

    #[test]
    fn insertions_fill_empty_clusters_first_by_objective() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        let a = inc.insert(&obj(0.0)).unwrap();
        let b = inc.insert(&obj(10.0)).unwrap();
        // Second object prefers the empty cluster (adding to the occupied
        // one increases J by the squared gap; the empty one costs only
        // 2 sigma^2).
        assert_ne!(inc.label_of(a), inc.label_of(b));
    }

    #[test]
    fn stream_with_stabilization_matches_structure() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        let mut ids = Vec::new();
        for c in [0.0, 0.2, 0.4, 9.0, 9.2, 9.4, 0.1, 9.1] {
            ids.push(inc.insert(&obj(c)).unwrap());
        }
        inc.stabilize(10);
        let l = |i: usize| inc.label_of(ids[i]).unwrap();
        assert_eq!(l(0), l(1));
        assert_eq!(l(0), l(2));
        assert_eq!(l(0), l(6));
        assert_eq!(l(3), l(4));
        assert_eq!(l(3), l(7));
        assert_ne!(l(0), l(3));
    }

    #[test]
    fn removal_is_exact() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        let keep: Vec<ObjectId> = [0.0, 0.5, 8.0]
            .iter()
            .map(|&c| inc.insert(&obj(c)).unwrap())
            .collect();
        let gone = inc.insert(&obj(100.0)).unwrap();
        let with = inc.objective();
        assert!(inc.remove(gone));
        assert!(!inc.remove(gone), "double remove must be a no-op");
        assert_eq!(inc.len(), 3);
        assert!(inc.objective() <= with);
        assert!(keep.iter().all(|&id| inc.label_of(id).is_some()));
    }

    #[test]
    fn objective_matches_batch_rebuild() {
        let mut inc = IncrementalUcpc::new(1, 3).unwrap();
        let objs: Vec<UncertainObject> = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1]
            .iter()
            .map(|&c| obj(c))
            .collect();
        for o in &objs {
            inc.insert(o).unwrap();
        }
        inc.stabilize(20);
        // Rebuild ClusterStats from the live assignment and compare J totals.
        let mut rebuilt = vec![ClusterStats::empty(1); 3];
        for (id, c) in inc.live_labels() {
            let _ = id;
            let idx = id.0;
            rebuilt[c].add(objs[idx].moments());
        }
        let total: f64 = rebuilt.iter().map(ClusterStats::j).sum();
        assert!((inc.objective() - total).abs() < 1e-9);
    }

    #[test]
    fn stabilize_monotonically_improves() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        // Adversarial insertion order.
        for c in [0.0, 9.0, 0.1, 9.1, 0.2, 9.2] {
            inc.insert(&obj(c)).unwrap();
        }
        let before = inc.objective();
        inc.stabilize(10);
        assert!(inc.objective() <= before + 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut inc = IncrementalUcpc::new(2, 2).unwrap();
        assert!(matches!(
            inc.insert(&obj(0.0)),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }
}
