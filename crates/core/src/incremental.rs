//! Incremental (online) maintenance of a UCPC clustering.
//!
//! Corollary 1 makes `J` updatable in O(m) per object addition/removal — one
//! fused dot product in the scalar-aggregate kernel form (see
//! [`ucpc_uncertain::arena`]); this
//! module exploits it beyond batch clustering: an [`IncrementalUcpc`] holds a
//! live partition of a stream of uncertain objects, inserting each arrival
//! into the cluster that minimizes the objective increase, removing departed
//! objects, and periodically re-stabilizing with relocation passes (each pass
//! is one iteration of Algorithm 1).
//!
//! This is the natural "moving objects" deployment of the paper's machinery:
//! positions go stale and get refreshed continuously, and re-running batch
//! UCPC from scratch on every update would waste the O(m) incrementality the
//! closed form provides.
//!
//! # Storage backends
//!
//! Two moment stores implement the same driver, selected by
//! [`StreamBackend`] (env knob `UCPC_STREAMING`, mirroring
//! `UCPC_PRUNING`/`UCPC_SIMD`/`UCPC_PARALLEL`):
//!
//! * [`StreamBackend::Slab`] (default) — moments live in a
//!   [`ucpc_uncertain::SlabArena`]: flat SoA rows recycled through a
//!   free-list, so the stabilization scan streams contiguous memory exactly
//!   like the batch path, a steady-state insert-after-remove performs zero
//!   allocator calls (`tests/streaming_alloc_free.rs`), and edits run
//!   through the *drift-tracked* statistic updates so outstanding pruning
//!   bounds survive them (surgical invalidation — see below).
//! * [`StreamBackend::Objects`] — the pre-slab reference layout: one
//!   heap-allocated [`Moments`] per object in `Vec<Option<Moments>>`, with
//!   untracked edits and a global cache-epoch bump per edit. Kept because
//!   the exactness suite pins the slab path byte-identical to it.
//!
//! # Generation-stamped handles
//!
//! Both backends recycle storage slots through a LIFO free-list with the
//! *identical* discipline, and [`IncrementalUcpc::insert`] returns an
//! [`ObjectHandle`] — slot plus the slot's generation counter at insertion
//! time (see [`ucpc_uncertain::slab`] for the scheme). Two consequences:
//!
//! * **Bounded state.** Every handle-indexed structure — the label map,
//!   the moment storage, and (with pruning on) the prune cache's entries
//!   and drift-snapshot rows — is indexed by *slot* and therefore capped at
//!   the high-water mark of concurrent liveness, not the total insertion
//!   count. A steady-state insert-after-remove churn loop shows zero net
//!   growth in any of them, for weeks (`tests/streaming_alloc_free.rs` and
//!   the `bench_soak` flat-memory gate pin this).
//! * **Checked staleness.** Using a handle after its `remove` — including
//!   after its slot was recycled to a later arrival — is a checked
//!   [`ClusterError::StaleHandle`] on **both** backends, never a silent
//!   read of the slot's next occupant. `label_of` returns `None` for stale
//!   handles.
//!
//! Because the two backends assign identical slot/generation sequences for
//! identical edit scripts, their stabilization passes visit objects in the
//! same order and stay bit-identical (pinned by
//! `tests/incremental_consistency.rs`).
//!
//! For crash recovery and migration, [`IncrementalUcpc::snapshot`] serializes the
//! complete logical state into a versioned byte buffer and
//! [`IncrementalUcpc::restore`] reassembles it bit-identically — see
//! [`crate::snapshot`].
//!
//! # Why the backends are bit-identical
//!
//! A slab row is written with the same bits a standalone [`Moments`] holds
//! (verbatim row copy, identical scalar fold — see
//! [`ucpc_uncertain::slab`]), so every kernel evaluation sees identical
//! inputs. Edits mutate [`ClusterStats`] through `add_view_tracked` /
//! `remove_view_tracked`, whose statistic updates are bit-identical to the
//! untracked `add_view`/`remove_view` the reference backend uses (the drift
//! accumulators are bookkeeping outside the statistics proper). And the
//! pruning shortcuts are exact by construction, so how aggressively a
//! backend invalidates its cache changes which *scans* run, never which
//! *relocations* apply. `tests/incremental_consistency.rs` pins labels,
//! statistics and objectives bitwise across backends × pruning × SIMD.
//!
//! # Surgical invalidation
//!
//! The reference backend kills the whole prune cache on every edit (global
//! epoch bump): an untracked edit changes a cluster's statistics without
//! moving its drift accumulators, so no cached bound may survive. The slab
//! backend instead performs edits through the tracked updates — an edit is
//! then just one more transition the drift bounds already cover, and cached
//! bounds *widen* instead of dying. Only a small-size transition (the
//! touched cluster passing through size `< 2`, where the remove-direction
//! coefficients are undefined) taints history, and it taints exactly that
//! cluster's remove direction — so only entries whose `src` is the touched
//! cluster are invalidated, via the per-cluster version counters of
//! [`crate::pruning`] (module docs there derive the soundness). On churny
//! streams this is the difference between every stabilization pass
//! re-scanning all `n` objects and the pass skipping everything the edits
//! provably could not have changed. Cache entries additionally carry the
//! slot's generation stamp, so an entry written for a departed occupant
//! can never serve the slot's next tenant.

use crate::framework::ClusterError;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_insert, apply_tracked_relocation, apply_tracked_remove, best_candidate,
    best_candidate_with_second, best_insertion, best_insertion_bounded, fp_scale, DriftTotals,
    PruneCache, PruneCounters, PruneDecision, PruningConfig,
};
use ucpc_uncertain::arena::MomentView;
use ucpc_uncertain::{Moments, SlabArena, UncertainObject};

pub use ucpc_uncertain::ObjectHandle;

/// Moment-storage backend of [`IncrementalUcpc`].
///
/// The default honours the `UCPC_STREAMING` environment variable (`slab` or
/// `objects`, unset ⇒ `Slab`). Both backends produce byte-identical
/// partitions; the knob trades the slab's contiguity, allocation-free
/// steady state and surgical cache invalidation against the reference
/// path's simplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBackend {
    /// One heap-allocated [`Moments`] per object (`Vec<Option<Moments>>`),
    /// untracked edits, global epoch bump per edit — the seed reference
    /// path.
    Objects,
    /// Flat [`SlabArena`] rows with free-list reuse, drift-tracked edits,
    /// per-cluster surgical invalidation.
    Slab,
}

impl StreamBackend {
    /// Reads the `UCPC_STREAMING` environment knob through the shared
    /// warn-and-fall-back reader ([`ucpc_uncertain::env::read_knob`]): a
    /// set but invalid value warns on stderr and yields `None` (callers
    /// fall back to their default), instead of failing silently.
    pub fn from_env() -> Option<Self> {
        ucpc_uncertain::env::read_knob("UCPC_STREAMING", "slab|objects", Self::parse)
    }

    /// Parses one knob value (`"slab"` ⇒ [`Self::Slab`], `"objects"` ⇒
    /// [`Self::Objects`], anything else ⇒ `None`) — the pure worker behind
    /// [`Self::from_env`], exposed for env-free unit tests.
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "slab" => Some(Self::Slab),
            "objects" => Some(Self::Objects),
            _ => None,
        }
    }

    /// The knob spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Self::Objects => "objects",
            Self::Slab => "slab",
        }
    }
}

impl Default for StreamBackend {
    fn default() -> Self {
        Self::from_env().unwrap_or(Self::Slab)
    }
}

/// The per-backend moment store. Both variants hand out generation-stamped
/// slots with the identical LIFO reuse discipline (the slab natively, the
/// reference backend through a mirrored free-list/generation pair), so the
/// two backends issue identical handle sequences for identical edit
/// scripts — which is what keeps their stabilization iteration orders, and
/// hence their labels, bit-identical.
// One store exists per driver (never a collection of them), so the size
// spread between an empty Vec and the slab's column set is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum MomentStore {
    Objects {
        objects: Vec<Option<Moments>>,
        /// Freed slots, popped LIFO — mirrors [`SlabArena`]'s free-list
        /// bit-for-bit so both backends recycle the same slot next.
        free: Vec<u32>,
        /// Per-slot generation counters, bumped on removal (wrapping) —
        /// mirrors [`SlabArena::generation`].
        gens: Vec<u32>,
    },
    Slab {
        slab: SlabArena,
    },
}

impl MomentStore {
    fn new(backend: StreamBackend) -> Self {
        match backend {
            StreamBackend::Objects => Self::Objects {
                objects: Vec::new(),
                free: Vec::new(),
                gens: Vec::new(),
            },
            StreamBackend::Slab => Self::Slab {
                slab: SlabArena::new(),
            },
        }
    }

    fn backend(&self) -> StreamBackend {
        match self {
            Self::Objects { .. } => StreamBackend::Objects,
            Self::Slab { .. } => StreamBackend::Slab,
        }
    }

    /// Stores one arrival from its kernel view, recycling a freed slot when
    /// one exists, and returns its generation-stamped handle. Every field
    /// behind the view is copied **verbatim** ([`Moments::from_view`] /
    /// [`SlabArena::insert_view`]), so storing a staged copy of an object
    /// writes exactly the bits storing the object directly would — the
    /// property the serving layer's staging→commit hop rides on.
    fn insert_view(&mut self, v: &MomentView<'_>) -> ObjectHandle {
        match self {
            Self::Objects {
                objects,
                free,
                gens,
            } => {
                let mo = Moments::from_view(v);
                match free.pop() {
                    Some(slot) => {
                        objects[slot as usize] = Some(mo);
                        ObjectHandle::new(slot, gens[slot as usize])
                    }
                    None => {
                        objects.push(Some(mo));
                        gens.push(0);
                        let slot = u32::try_from(objects.len() - 1)
                            .expect("streaming slot space exhausted (u32)");
                        ObjectHandle::new(slot, 0)
                    }
                }
            }
            Self::Slab { slab } => slab.insert_view(v),
        }
    }

    /// Whether `h` names a live object.
    fn contains(&self, h: ObjectHandle) -> bool {
        let slot = h.slot();
        match self {
            Self::Objects { objects, gens, .. } => {
                slot < objects.len() && objects[slot].is_some() && gens[slot] == h.generation()
            }
            Self::Slab { slab } => slab.contains(h),
        }
    }

    /// The generation counter of slot `slot` (current occupant while live,
    /// next occupant while free).
    fn generation(&self, slot: usize) -> u32 {
        match self {
            Self::Objects { gens, .. } => gens[slot],
            Self::Slab { slab } => slab.generation(slot),
        }
    }

    /// Kernel view of the live object in slot `slot`.
    fn view(&self, slot: usize) -> MomentView<'_> {
        match self {
            Self::Objects { objects, .. } => objects[slot].as_ref().expect("live slot").view(),
            Self::Slab { slab } => slab.view(slot),
        }
    }

    fn reserve_ids(&mut self, additional: usize, dims: usize) {
        match self {
            Self::Objects {
                objects,
                free,
                gens,
            } => {
                let live = objects.len() - free.len();
                objects.reserve(additional);
                gens.reserve(additional);
                free.reserve(live + additional);
            }
            Self::Slab { slab } => {
                // Appended rows only; recycled rows need no capacity, so a
                // reservation sized for the worst case (no removals) covers
                // every interleaving.
                slab.reserve_rows(additional, dims);
            }
        }
    }
}

/// A live UCPC partition supporting O(k·m) insertions, O(m) removals and
/// on-demand relocation passes. Handles are generation-stamped: using one
/// after its removal is a checked [`ClusterError::StaleHandle`], and all
/// handle-indexed state stays bounded by the live-window high-water mark.
///
/// ```
/// use ucpc_core::incremental::IncrementalUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let mut live = IncrementalUcpc::new(1, 2).unwrap();
/// let mut ids = Vec::new();
/// for c in [0.0, 0.2, 9.0, 9.2] {
///     let o = UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);
///     ids.push(live.insert(&o).unwrap());
/// }
/// live.stabilize(5);
/// assert_eq!(live.label_of(ids[0]), live.label_of(ids[1]));
/// assert_ne!(live.label_of(ids[0]), live.label_of(ids[2]));
/// live.remove(ids[3]).unwrap();
/// assert!(live.remove(ids[3]).is_err(), "double remove is checked");
/// assert_eq!(live.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalUcpc {
    pub(crate) m: usize,
    pub(crate) k: usize,
    pub(crate) stats: Vec<ClusterStats>,
    /// Moments of every live object, behind the configured backend.
    pub(crate) store: MomentStore,
    /// Per-slot cluster label (`None` while the slot is free). Indexed by
    /// slot, so it tops out at the live-window high-water mark.
    pub(crate) labels: Vec<Option<usize>>,
    pub(crate) live: usize,
    /// Candidate pruning for [`Self::stabilize`] passes and the bounded
    /// placement scan of [`Self::insert`].
    pub(crate) pruning: PruningConfig,
    /// Prune-cache epoch — the coarse kill-switch. [`Self::set_pruning`]
    /// bumps it, and the [`StreamBackend::Objects`] reference backend bumps
    /// it on every edit (untracked edits invalidate everything). The slab
    /// backend never needs to: its edits are drift-tracked, small-size
    /// transitions go through the per-cluster `versions` below, and slot
    /// recycling is covered by the cache entries' generation stamps.
    pub(crate) epoch: u64,
    /// Per-cluster remove-direction version counters — the surgical
    /// invalidation watermarks of [`crate::pruning`].
    pub(crate) versions: Vec<u64>,
    pub(crate) totals: DriftTotals,
    pub(crate) cache: PruneCache,
    pub(crate) counters: PruneCounters,
}

impl IncrementalUcpc {
    /// Creates an empty incremental clustering over `m` dimensions with `k`
    /// clusters, on the env-default storage backend.
    pub fn new(m: usize, k: usize) -> Result<Self, ClusterError> {
        Self::with_backend(m, k, StreamBackend::default())
    }

    /// [`Self::new`] with an explicit storage backend.
    pub fn with_backend(m: usize, k: usize, backend: StreamBackend) -> Result<Self, ClusterError> {
        if k == 0 {
            return Err(ClusterError::InvalidK { k, n: 0 });
        }
        Ok(Self {
            m,
            k,
            stats: vec![ClusterStats::empty(m); k],
            store: MomentStore::new(backend),
            labels: Vec::new(),
            live: 0,
            pruning: PruningConfig::default(),
            epoch: 0,
            versions: vec![0; k],
            totals: DriftTotals::default(),
            cache: PruneCache::new(0, k),
            counters: PruneCounters::default(),
        })
    }

    /// The active storage backend.
    pub fn backend(&self) -> StreamBackend {
        self.store.backend()
    }

    /// Enables or disables candidate pruning for subsequent
    /// [`Self::stabilize`] calls; outstanding cached bounds are discarded.
    pub fn set_pruning(&mut self, pruning: PruningConfig) {
        self.pruning = pruning;
        self.epoch += 1;
    }

    /// Reserves capacity for `additional` further insertions (handle maps
    /// and, on the slab backend, moment rows), so a churn loop staying
    /// within the reservation triggers no reallocation — the contract the
    /// steady-state zero-allocation test pins. With slot recycling, only
    /// the *net* liveness growth consumes the reservation: a steady-state
    /// insert-after-remove loop consumes none of it.
    pub fn reserve_ids(&mut self, additional: usize) {
        self.labels.reserve(additional);
        self.store.reserve_ids(additional, self.m);
    }

    /// The per-cluster sufficient statistics of the live partition (the
    /// aggregates the consistency tests cross-check against a from-scratch
    /// rebuild).
    pub fn cluster_stats(&self) -> &[ClusterStats] {
        &self.stats
    }

    /// Candidate-pruning counters accumulated over all stabilization passes
    /// and bounded placement scans.
    pub fn pruning_counters(&self) -> PruneCounters {
        self.counters
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of storage slots ever created — the high-water mark of
    /// concurrent liveness, and the size bound on every handle-indexed
    /// structure (label map, moment rows, prune-cache entries). Under
    /// steady-state churn this stops growing; the flat-memory tests assert
    /// exactly that.
    pub fn slot_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of prune-cache entries currently allocated (0 until the
    /// first pruned stabilization pass; bounded by [`Self::slot_rows`]).
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Current total objective `Σ_C J(C)`.
    pub fn objective(&self) -> f64 {
        total_objective(&self.stats)
    }

    /// Current cluster of a live object; `None` if the handle is stale.
    pub fn label_of(&self, h: ObjectHandle) -> Option<usize> {
        if !self.store.contains(h) {
            return None;
        }
        self.labels[h.slot()]
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.stats.iter().map(ClusterStats::size).collect()
    }

    /// Inserts an object into the cluster that minimizes the objective
    /// increase (O(k·m) by Corollary 1) and returns its generation-stamped
    /// handle. With pruning off the placement scan is the dot3-batched
    /// [`best_insertion`] kernel over all `k` clusters; with pruning on it
    /// is the Cauchy–Schwarz-bounded [`best_insertion_bounded`] scan, which
    /// prices only the clusters the lower bound cannot exclude and returns
    /// a bit-identical `(cluster, delta)` (shadow-asserted in debug
    /// builds).
    pub fn insert(&mut self, object: &UncertainObject) -> Result<ObjectHandle, ClusterError> {
        self.insert_moments(object.moments())
    }

    /// [`Self::insert`] for an arrival already reduced to its moments — the
    /// pdf-free admission path (serving layers hold moments, not pdfs).
    /// Identical placement, mutation sequence and handle issue as
    /// `insert(&object)` for `object.moments() == mo`.
    pub fn insert_moments(&mut self, mo: &Moments) -> Result<ObjectHandle, ClusterError> {
        if mo.dims() != self.m {
            return Err(ClusterError::DimensionMismatch {
                expected: self.m,
                found: mo.dims(),
                index: self.labels.len(),
            });
        }
        let v = mo.view();
        let best = self.price_insertion(&v);
        Ok(self.commit_placed(&v, best))
    }

    /// The placement scan of [`Self::insert`], factored out so the serving
    /// layer prices arrivals through the identical kernel: with pruning off
    /// the dot3-batched [`best_insertion`] over all `k` clusters, with
    /// pruning on the Cauchy–Schwarz-bounded [`best_insertion_bounded`]
    /// scan, which returns a bit-identical cluster (shadow-asserted in
    /// debug builds). Mutates only the pruning counters.
    pub(crate) fn price_insertion(&mut self, v: &MomentView<'_>) -> usize {
        let (best, _delta) = if self.pruning.is_enabled() {
            let scale = fp_scale(&self.stats);
            let picked = best_insertion_bounded(&self.stats, v, scale, &mut self.counters)
                .expect("k >= 1 clusters");
            #[cfg(debug_assertions)]
            {
                let shadow = best_insertion(&self.stats, v).expect("k >= 1 clusters");
                debug_assert_eq!(
                    picked.0, shadow.0,
                    "bounded placement must pick the full scan's cluster"
                );
                debug_assert_eq!(
                    picked.1.to_bits(),
                    shadow.1.to_bits(),
                    "bounded placement delta must be bit-identical"
                );
            }
            picked
        } else {
            best_insertion(&self.stats, v).expect("k >= 1 clusters")
        };
        best
    }

    /// Applies an already-priced placement: the exact mutation sequence of
    /// [`Self::insert`] after its scan — statistics update (tracked on the
    /// slab backend, epoch-bumped on the reference backend), verbatim store
    /// of the arrival's bits ([`MomentStore::insert_view`]), label write,
    /// live count. The serving layer calls this per batched arrival, with
    /// `best` produced by batch pricing that is bit-identical to
    /// [`Self::price_insertion`]; the resulting engine state is therefore
    /// byte-identical to a serial `insert` of the same arrival.
    pub(crate) fn commit_placed(&mut self, v: &MomentView<'_>, best: usize) -> ObjectHandle {
        match self.store {
            MomentStore::Objects { .. } => {
                self.stats[best].add_view(v);
                // The insertion mutated a cluster outside the drift-tracked
                // path: invalidate every cached scan outcome.
                self.epoch += 1;
            }
            MomentStore::Slab { .. } => {
                // Tracked edit: outstanding bounds widen by the accumulated
                // drift instead of dying; only a small-size transition
                // stales (surgically) the entries rooted in this cluster.
                apply_tracked_insert(
                    &mut self.stats,
                    best,
                    v,
                    &mut self.totals,
                    &mut self.versions,
                );
            }
        }
        let h = self.store.insert_view(v);
        let slot = h.slot();
        if slot == self.labels.len() {
            self.labels.push(Some(best));
        } else {
            debug_assert!(self.labels[slot].is_none(), "recycled slot must be free");
            self.labels[slot] = Some(best);
        }
        self.live += 1;
        h
    }

    /// Removes a live object in O(m). A stale handle — already removed, or
    /// its slot recycled to a later arrival — returns
    /// [`ClusterError::StaleHandle`] and changes nothing, identically on
    /// both backends.
    pub fn remove(&mut self, h: ObjectHandle) -> Result<(), ClusterError> {
        if !self.store.contains(h) {
            return Err(ClusterError::StaleHandle {
                slot: h.slot() as u32,
                generation: h.generation(),
            });
        }
        let slot = h.slot();
        let cluster = self.labels[slot].take().expect("live slot has a label");
        match &mut self.store {
            MomentStore::Objects {
                objects,
                free,
                gens,
            } => {
                let mo = objects[slot].take().expect("live slot holds moments");
                self.stats[cluster].remove(&mo);
                gens[slot] = gens[slot].wrapping_add(1);
                free.push(slot as u32);
                // Removal, like insertion, bypasses drift tracking on this
                // backend: without this epoch bump a stale cached bound
                // could silently skip a scan whose outcome the departed
                // member changed (the cache/stat-consistency regression in
                // `tests/incremental_consistency.rs`).
                self.epoch += 1;
            }
            MomentStore::Slab { slab } => {
                {
                    let v = slab.view(slot);
                    apply_tracked_remove(
                        &mut self.stats,
                        cluster,
                        &v,
                        &mut self.totals,
                        &mut self.versions,
                    );
                }
                slab.remove(h).expect("contains(h) checked above");
            }
        }
        self.live -= 1;
        Ok(())
    }

    /// Runs up to `passes` relocation passes of Algorithm 1 over the live
    /// objects; returns the number of relocations applied. With pruning
    /// enabled the passes take the exact tier-1/tier-2 shortcuts of
    /// [`crate::pruning`]; the relocation sequence is identical either way.
    pub fn stabilize(&mut self, passes: usize) -> usize {
        const TOLERANCE: f64 = 1e-9;
        let mut relocations = 0usize;
        let pruned = self.pruning.is_enabled();
        if pruned {
            self.cache.grow(self.labels.len());
        }
        for _ in 0..passes {
            let mut moved = false;
            let scale = if pruned { fp_scale(&self.stats) } else { 0.0 };
            for i in 0..self.labels.len() {
                let Some(src) = self.labels[i] else { continue };
                if self.stats[src].size() == 1 {
                    continue;
                }
                // Borrowed straight out of the store — applied relocations
                // below mutate only `stats`/`totals`/`versions`/`cache`,
                // all disjoint from the moment storage, so no per-move
                // clone of the moments is ever needed.
                let v = self.store.view(i);

                let decision = if pruned {
                    self.cache.view().decide(
                        i,
                        self.store.generation(i),
                        self.epoch,
                        &self.stats,
                        self.totals,
                        &self.versions,
                        src,
                        &v,
                        TOLERANCE,
                        scale,
                    )
                } else {
                    PruneDecision::FullScan
                };

                match decision {
                    PruneDecision::Skip => {
                        self.counters.skips += 1;
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        self.counters.confirms += 1;
                        let delta =
                            self.stats[src].delta_j_remove(&v) + self.stats[dst].delta_j_add(&v);
                        if delta < -TOLERANCE {
                            apply_tracked_relocation(
                                &mut self.stats,
                                src,
                                dst,
                                &v,
                                &mut self.totals,
                                &mut self.versions,
                            );
                            self.cache.invalidate(i);
                            self.labels[i] = Some(dst);
                            relocations += 1;
                            moved = true;
                        }
                    }
                    PruneDecision::FullScan => {
                        if pruned {
                            self.counters.full_scans += 1;
                            if let Some((dst, delta, second)) =
                                best_candidate_with_second(&self.stats, src, &v)
                            {
                                if delta < -TOLERANCE {
                                    apply_tracked_relocation(
                                        &mut self.stats,
                                        src,
                                        dst,
                                        &v,
                                        &mut self.totals,
                                        &mut self.versions,
                                    );
                                    self.cache.invalidate(i);
                                    self.labels[i] = Some(dst);
                                    relocations += 1;
                                    moved = true;
                                } else {
                                    self.cache.view().store(
                                        i,
                                        self.store.generation(i),
                                        self.epoch,
                                        &self.stats,
                                        self.totals,
                                        &self.versions,
                                        src,
                                        dst,
                                        delta,
                                        second,
                                    );
                                }
                            }
                        } else if let Some((dst, delta)) = best_candidate(&self.stats, src, &v) {
                            if delta < -TOLERANCE {
                                self.stats[src].remove_view(&v);
                                self.stats[dst].add_view(&v);
                                self.labels[i] = Some(dst);
                                relocations += 1;
                                moved = true;
                            }
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
        relocations
    }

    /// Current handles and labels of all live objects, in slot order. The
    /// handle sequences are comparable across backends because both assign
    /// identical slot/generation sequences for identical edit scripts.
    pub fn live_labels(&self) -> Vec<(ObjectHandle, usize)> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(slot, l)| {
                l.map(|c| {
                    (
                        ObjectHandle::new(slot as u32, self.store.generation(slot)),
                        c,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![UnivariatePdf::normal(c, 0.2)])
    }

    #[test]
    fn streaming_knob_parses_both_backends_and_warns_on_typos() {
        assert_eq!(StreamBackend::parse("slab"), Some(StreamBackend::Slab));
        assert_eq!(
            StreamBackend::parse("objects"),
            Some(StreamBackend::Objects)
        );
        assert_eq!(StreamBackend::parse("arena"), None);
        let (outcome, warning) = ucpc_uncertain::env::parse_knob(
            "UCPC_STREAMING",
            Some("arena"),
            "slab|objects",
            StreamBackend::parse,
        );
        assert_eq!(outcome.value(), None);
        assert!(warning.unwrap().contains("UCPC_STREAMING=\"arena\""));
    }

    #[test]
    fn insertions_fill_empty_clusters_first_by_objective() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        let a = inc.insert(&obj(0.0)).unwrap();
        let b = inc.insert(&obj(10.0)).unwrap();
        // Second object prefers the empty cluster (adding to the occupied
        // one increases J by the squared gap; the empty one costs only
        // 2 sigma^2).
        assert_ne!(inc.label_of(a), inc.label_of(b));
    }

    #[test]
    fn stream_with_stabilization_matches_structure() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let mut ids = Vec::new();
            for c in [0.0, 0.2, 0.4, 9.0, 9.2, 9.4, 0.1, 9.1] {
                ids.push(inc.insert(&obj(c)).unwrap());
            }
            inc.stabilize(10);
            let l = |i: usize| inc.label_of(ids[i]).unwrap();
            assert_eq!(l(0), l(1));
            assert_eq!(l(0), l(2));
            assert_eq!(l(0), l(6));
            assert_eq!(l(3), l(4));
            assert_eq!(l(3), l(7));
            assert_ne!(l(0), l(3));
        }
    }

    #[test]
    fn removal_is_exact() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let keep: Vec<ObjectHandle> = [0.0, 0.5, 8.0]
                .iter()
                .map(|&c| inc.insert(&obj(c)).unwrap())
                .collect();
            let gone = inc.insert(&obj(100.0)).unwrap();
            let with = inc.objective();
            inc.remove(gone).unwrap();
            assert!(
                matches!(inc.remove(gone), Err(ClusterError::StaleHandle { .. })),
                "double remove must be a checked error"
            );
            assert_eq!(inc.len(), 3);
            assert!(inc.objective() <= with);
            assert!(keep.iter().all(|&id| inc.label_of(id).is_some()));
        }
    }

    #[test]
    fn stale_handles_cannot_alias_recycled_slots() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let a = inc.insert(&obj(0.0)).unwrap();
            let b = inc.insert(&obj(9.0)).unwrap();
            inc.remove(a).unwrap();
            // The next arrival recycles a's slot under a newer generation.
            let c = inc.insert(&obj(0.5)).unwrap();
            assert_eq!(c.slot(), a.slot(), "slot must be recycled ({backend:?})");
            assert_ne!(c, a);
            assert_eq!(inc.label_of(a), None, "stale handle has no label");
            assert!(
                matches!(inc.remove(a), Err(ClusterError::StaleHandle { .. })),
                "stale remove must not evict the new occupant ({backend:?})"
            );
            assert_eq!(inc.len(), 2);
            assert!(inc.label_of(b).is_some());
            assert!(inc.label_of(c).is_some());
        }
    }

    #[test]
    fn backends_issue_identical_handle_sequences() {
        let script: &[(bool, f64)] = &[
            (true, 0.0),
            (true, 9.0),
            (true, 0.2),
            (false, 1.0), // remove the 2nd live handle
            (true, 9.2),
            (false, 0.0), // remove the 1st live handle
            (true, 0.4),
            (true, 9.4),
        ];
        let run = |backend| {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let mut live: Vec<ObjectHandle> = Vec::new();
            let mut issued = Vec::new();
            for &(is_insert, x) in script {
                if is_insert {
                    let h = inc.insert(&obj(x)).unwrap();
                    live.push(h);
                    issued.push(h);
                } else {
                    let victim = live.remove(x as usize);
                    inc.remove(victim).unwrap();
                }
            }
            issued
        };
        assert_eq!(
            run(StreamBackend::Objects),
            run(StreamBackend::Slab),
            "slot/generation sequences must match across backends"
        );
    }

    #[test]
    fn objective_matches_batch_rebuild() {
        let mut inc = IncrementalUcpc::new(1, 3).unwrap();
        let objs: Vec<UncertainObject> = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1]
            .iter()
            .map(|&c| obj(c))
            .collect();
        for o in &objs {
            inc.insert(o).unwrap();
        }
        inc.stabilize(20);
        // Rebuild ClusterStats from the live assignment and compare J
        // totals. No removals happened, so slots are insertion order.
        let mut rebuilt = vec![ClusterStats::empty(1); 3];
        for (id, c) in inc.live_labels() {
            rebuilt[c].add(objs[id.slot()].moments());
        }
        let total: f64 = rebuilt.iter().map(ClusterStats::j).sum();
        assert!((inc.objective() - total).abs() < 1e-9);
    }

    #[test]
    fn stabilize_monotonically_improves() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        // Adversarial insertion order.
        for c in [0.0, 9.0, 0.1, 9.1, 0.2, 9.2] {
            inc.insert(&obj(c)).unwrap();
        }
        let before = inc.objective();
        inc.stabilize(10);
        assert!(inc.objective() <= before + 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut inc = IncrementalUcpc::new(2, 2).unwrap();
        assert!(matches!(
            inc.insert(&obj(0.0)),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn slot_maps_stay_bounded_across_churn() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let mut ids: Vec<ObjectHandle> = (0..6)
                .map(|i| inc.insert(&obj(i as f64)).unwrap())
                .collect();
            for step in 0..40 {
                let victim = ids.remove(0);
                inc.remove(victim).unwrap();
                ids.push(inc.insert(&obj((step % 7) as f64)).unwrap());
            }
            assert_eq!(inc.len(), 6);
            // The slot high-water mark stays at the peak liveness even
            // though 40 handles were churned through — the label map and
            // moment storage are live-window-bounded.
            assert_eq!(
                inc.slot_rows(),
                6,
                "slots must be recycled, not appended ({backend:?})"
            );
            if let MomentStore::Slab { slab } = &inc.store {
                assert_eq!(slab.rows(), 6, "rows must be recycled, not appended");
            }
            assert!(ids.iter().all(|&id| inc.label_of(id).is_some()));
        }
    }

    #[test]
    fn backend_knob_parses() {
        assert_eq!(StreamBackend::Objects.name(), "objects");
        assert_eq!(StreamBackend::Slab.name(), "slab");
        let inc = IncrementalUcpc::with_backend(1, 2, StreamBackend::Objects).unwrap();
        assert_eq!(inc.backend(), StreamBackend::Objects);
    }
}
