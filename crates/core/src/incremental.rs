//! Incremental (online) maintenance of a UCPC clustering.
//!
//! Corollary 1 makes `J` updatable in O(m) per object addition/removal — one
//! fused dot product in the scalar-aggregate kernel form (see
//! [`ucpc_uncertain::arena`]); this
//! module exploits it beyond batch clustering: an [`IncrementalUcpc`] holds a
//! live partition of a stream of uncertain objects, inserting each arrival
//! into the cluster that minimizes the objective increase, removing departed
//! objects, and periodically re-stabilizing with relocation passes (each pass
//! is one iteration of Algorithm 1).
//!
//! This is the natural "moving objects" deployment of the paper's machinery:
//! positions go stale and get refreshed continuously, and re-running batch
//! UCPC from scratch on every update would waste the O(m) incrementality the
//! closed form provides.
//!
//! # Storage backends
//!
//! Two moment stores implement the same driver, selected by
//! [`StreamBackend`] (env knob `UCPC_STREAMING`, mirroring
//! `UCPC_PRUNING`/`UCPC_SIMD`/`UCPC_PARALLEL`):
//!
//! * [`StreamBackend::Slab`] (default) — moments live in a
//!   [`ucpc_uncertain::SlabArena`]: flat SoA rows recycled through a
//!   free-list, so the stabilization scan streams contiguous memory exactly
//!   like the batch path, a steady-state insert-after-remove performs zero
//!   allocator calls (`tests/streaming_alloc_free.rs`), and edits run
//!   through the *drift-tracked* statistic updates so outstanding pruning
//!   bounds survive them (surgical invalidation — see below).
//! * [`StreamBackend::Objects`] — the pre-slab reference layout: one
//!   heap-allocated [`Moments`] per object in `Vec<Option<Moments>>`, with
//!   untracked edits and a global cache-epoch bump per edit. Kept because
//!   the exactness suite pins the slab path byte-identical to it.
//!
//! # Why the backends are bit-identical
//!
//! A slab row is written with the same bits a standalone [`Moments`] holds
//! (verbatim row copy, identical scalar fold — see
//! [`ucpc_uncertain::slab`]), so every kernel evaluation sees identical
//! inputs. Edits mutate [`ClusterStats`] through `add_view_tracked` /
//! `remove_view_tracked`, whose statistic updates are bit-identical to the
//! untracked `add_view`/`remove_view` the reference backend uses (the drift
//! accumulators are bookkeeping outside the statistics proper). And the
//! pruning shortcuts are exact by construction, so how aggressively a
//! backend invalidates its cache changes which *scans* run, never which
//! *relocations* apply. `tests/incremental_consistency.rs` pins labels,
//! statistics and objectives bitwise across backends × pruning × SIMD.
//!
//! # Surgical invalidation
//!
//! The reference backend kills the whole prune cache on every edit (global
//! epoch bump): an untracked edit changes a cluster's statistics without
//! moving its drift accumulators, so no cached bound may survive. The slab
//! backend instead performs edits through the tracked updates — an edit is
//! then just one more transition the drift bounds already cover, and cached
//! bounds *widen* instead of dying. Only a small-size transition (the
//! touched cluster passing through size `< 2`, where the remove-direction
//! coefficients are undefined) taints history, and it taints exactly that
//! cluster's remove direction — so only entries whose `src` is the touched
//! cluster are invalidated, via the per-cluster version counters of
//! [`crate::pruning`] (module docs there derive the soundness). On churny
//! streams this is the difference between every stabilization pass
//! re-scanning all `n` objects and the pass skipping everything the edits
//! provably could not have changed.
//!
//! # Memory bound
//!
//! [`ObjectId`]s are dense insertion-order slots and are **never reused**
//! (a departed handle stays distinguishable from every later arrival), so
//! the handle-indexed side grows with the *total* number of insertions,
//! not the live count: the label map, the slab's handle → row map, and —
//! with pruning on — the prune cache's per-handle entry and drift-snapshot
//! rows (`O(k)` floats each). The moment storage itself stays at the
//! high-water mark of concurrent liveness (rows are recycled), and
//! stabilization passes over dead handles cost one branch each. For
//! unbounded-lifetime streams with heavy churn, periodically migrate the
//! live window into a fresh driver (an O(live·m) rebuild — the ROADMAP
//! tracks a generation-stamped handle scheme that would remove the need).

use crate::framework::ClusterError;
use crate::objective::{total_objective, ClusterStats};
use crate::pruning::{
    apply_tracked_insert, apply_tracked_relocation, apply_tracked_remove, best_candidate,
    best_candidate_with_second, best_insertion, fp_scale, DriftTotals, PruneCache, PruneCounters,
    PruneDecision, PruningConfig,
};
use ucpc_uncertain::arena::MomentView;
use ucpc_uncertain::{Moments, SlabArena, UncertainObject};

/// Moment-storage backend of [`IncrementalUcpc`].
///
/// The default honours the `UCPC_STREAMING` environment variable (`slab` or
/// `objects`, unset ⇒ `Slab`). Both backends produce byte-identical
/// partitions; the knob trades the slab's contiguity, allocation-free
/// steady state and surgical cache invalidation against the reference
/// path's simplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBackend {
    /// One heap-allocated [`Moments`] per object (`Vec<Option<Moments>>`),
    /// untracked edits, global epoch bump per edit — the seed reference
    /// path.
    Objects,
    /// Flat [`SlabArena`] rows with free-list reuse, drift-tracked edits,
    /// per-cluster surgical invalidation.
    Slab,
}

impl StreamBackend {
    /// Reads the `UCPC_STREAMING` environment knob (`"slab"` ⇒
    /// [`Self::Slab`], `"objects"` ⇒ [`Self::Objects`], anything else ⇒
    /// `None`).
    pub fn from_env() -> Option<Self> {
        match std::env::var("UCPC_STREAMING")
            .ok()?
            .to_lowercase()
            .as_str()
        {
            "slab" => Some(Self::Slab),
            "objects" => Some(Self::Objects),
            _ => None,
        }
    }

    /// The knob spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Self::Objects => "objects",
            Self::Slab => "slab",
        }
    }
}

impl Default for StreamBackend {
    fn default() -> Self {
        Self::from_env().unwrap_or(Self::Slab)
    }
}

/// The per-backend moment store. Handles (dense insertion-order ids) are
/// never reused on either backend; the slab recycles *rows* underneath
/// while `rows[id]` keeps each live handle pinned to its current row.
// One store exists per driver (never a collection of them), so the size
// spread between an empty Vec and the slab's column set is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum MomentStore {
    Objects(Vec<Option<Moments>>),
    Slab {
        slab: SlabArena,
        /// Handle → slab row; meaningful only while the handle is live
        /// (`labels[id].is_some()` in the driver).
        rows: Vec<usize>,
    },
}

impl MomentStore {
    fn new(backend: StreamBackend) -> Self {
        match backend {
            StreamBackend::Objects => Self::Objects(Vec::new()),
            StreamBackend::Slab => Self::Slab {
                slab: SlabArena::new(),
                rows: Vec::new(),
            },
        }
    }

    fn backend(&self) -> StreamBackend {
        match self {
            Self::Objects(_) => StreamBackend::Objects,
            Self::Slab { .. } => StreamBackend::Slab,
        }
    }

    /// Stores the moments of the next handle (the caller assigns ids
    /// densely in insertion order).
    fn push(&mut self, mo: &Moments) {
        match self {
            Self::Objects(objects) => objects.push(Some(mo.clone())),
            Self::Slab { slab, rows } => {
                let row = slab.insert(mo);
                rows.push(row);
            }
        }
    }

    /// Kernel view of a live handle's moments.
    fn view(&self, id: usize) -> MomentView<'_> {
        match self {
            Self::Objects(objects) => objects[id].as_ref().expect("live handle").view(),
            Self::Slab { slab, rows } => slab.view(rows[id]),
        }
    }

    fn reserve_ids(&mut self, additional: usize, dims: usize) {
        match self {
            Self::Objects(objects) => objects.reserve(additional),
            Self::Slab { slab, rows } => {
                rows.reserve(additional);
                // Appended rows only; recycled rows need no capacity, so a
                // reservation sized for the worst case (no removals) covers
                // every interleaving.
                slab.reserve_rows(additional, dims);
            }
        }
    }
}

/// A live UCPC partition supporting O(k·m) insertions, O(m) removals and
/// on-demand relocation passes.
///
/// ```
/// use ucpc_core::incremental::IncrementalUcpc;
/// use ucpc_uncertain::{UncertainObject, UnivariatePdf};
///
/// let mut live = IncrementalUcpc::new(1, 2).unwrap();
/// let mut ids = Vec::new();
/// for c in [0.0, 0.2, 9.0, 9.2] {
///     let o = UncertainObject::new(vec![UnivariatePdf::normal(c, 0.1)]);
///     ids.push(live.insert(&o).unwrap());
/// }
/// live.stabilize(5);
/// assert_eq!(live.label_of(ids[0]), live.label_of(ids[1]));
/// assert_ne!(live.label_of(ids[0]), live.label_of(ids[2]));
/// assert!(live.remove(ids[3]));
/// assert_eq!(live.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalUcpc {
    m: usize,
    k: usize,
    stats: Vec<ClusterStats>,
    /// Moments of every live object, behind the configured backend.
    store: MomentStore,
    labels: Vec<Option<usize>>,
    live: usize,
    /// Candidate pruning for [`Self::stabilize`] passes.
    pruning: PruningConfig,
    /// Prune-cache epoch — the coarse kill-switch. [`Self::set_pruning`]
    /// bumps it, and the [`StreamBackend::Objects`] reference backend bumps
    /// it on every edit (untracked edits invalidate everything). The slab
    /// backend never needs to: its edits are drift-tracked and small-size
    /// transitions go through the per-cluster `versions` below.
    epoch: u64,
    /// Per-cluster remove-direction version counters — the surgical
    /// invalidation watermarks of [`crate::pruning`].
    versions: Vec<u64>,
    totals: DriftTotals,
    cache: PruneCache,
    counters: PruneCounters,
}

/// A handle to an inserted object (stable across removals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(usize);

impl ObjectId {
    /// The dense insertion-order slot of this handle (never reused).
    pub fn index(self) -> usize {
        self.0
    }
}

impl IncrementalUcpc {
    /// Creates an empty incremental clustering over `m` dimensions with `k`
    /// clusters, on the env-default storage backend.
    pub fn new(m: usize, k: usize) -> Result<Self, ClusterError> {
        Self::with_backend(m, k, StreamBackend::default())
    }

    /// [`Self::new`] with an explicit storage backend.
    pub fn with_backend(m: usize, k: usize, backend: StreamBackend) -> Result<Self, ClusterError> {
        if k == 0 {
            return Err(ClusterError::InvalidK { k, n: 0 });
        }
        Ok(Self {
            m,
            k,
            stats: vec![ClusterStats::empty(m); k],
            store: MomentStore::new(backend),
            labels: Vec::new(),
            live: 0,
            pruning: PruningConfig::default(),
            epoch: 0,
            versions: vec![0; k],
            totals: DriftTotals::default(),
            cache: PruneCache::new(0, k),
            counters: PruneCounters::default(),
        })
    }

    /// The active storage backend.
    pub fn backend(&self) -> StreamBackend {
        self.store.backend()
    }

    /// Enables or disables candidate pruning for subsequent
    /// [`Self::stabilize`] calls; outstanding cached bounds are discarded.
    pub fn set_pruning(&mut self, pruning: PruningConfig) {
        self.pruning = pruning;
        self.epoch += 1;
    }

    /// Reserves capacity for `additional` further insertions (handle maps
    /// and, on the slab backend, moment rows), so a churn loop staying
    /// within the reservation triggers no reallocation — the contract the
    /// steady-state zero-allocation test pins.
    pub fn reserve_ids(&mut self, additional: usize) {
        self.labels.reserve(additional);
        self.store.reserve_ids(additional, self.m);
    }

    /// The per-cluster sufficient statistics of the live partition (the
    /// aggregates the consistency tests cross-check against a from-scratch
    /// rebuild).
    pub fn cluster_stats(&self) -> &[ClusterStats] {
        &self.stats
    }

    /// Candidate-pruning counters accumulated over all stabilization passes.
    pub fn pruning_counters(&self) -> PruneCounters {
        self.counters
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current total objective `Σ_C J(C)`.
    pub fn objective(&self) -> f64 {
        total_objective(&self.stats)
    }

    /// Current cluster of a live object.
    pub fn label_of(&self, id: ObjectId) -> Option<usize> {
        self.labels.get(id.0).copied().flatten()
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.stats.iter().map(ClusterStats::size).collect()
    }

    /// Inserts an object into the cluster that minimizes the objective
    /// increase (O(k·m) by Corollary 1; the placement scan is the
    /// dot3-batched [`best_insertion`] kernel) and returns its handle.
    pub fn insert(&mut self, object: &UncertainObject) -> Result<ObjectId, ClusterError> {
        if object.dims() != self.m {
            return Err(ClusterError::DimensionMismatch {
                expected: self.m,
                found: object.dims(),
                index: self.labels.len(),
            });
        }
        let mo = object.moments();
        let v = mo.view();
        let (best, _) = best_insertion(&self.stats, &v).expect("k >= 1 clusters");
        match self.store {
            MomentStore::Objects(_) => {
                self.stats[best].add_view(&v);
                // The insertion mutated a cluster outside the drift-tracked
                // path: invalidate every cached scan outcome.
                self.epoch += 1;
            }
            MomentStore::Slab { .. } => {
                // Tracked edit: outstanding bounds widen by the accumulated
                // drift instead of dying; only a small-size transition
                // stales (surgically) the entries rooted in this cluster.
                apply_tracked_insert(
                    &mut self.stats,
                    best,
                    &v,
                    &mut self.totals,
                    &mut self.versions,
                );
            }
        }
        self.store.push(mo);
        self.labels.push(Some(best));
        self.live += 1;
        Ok(ObjectId(self.labels.len() - 1))
    }

    /// Removes a live object in O(m). Returns `false` if the handle was
    /// already removed.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(slot) = self.labels.get_mut(id.0) else {
            return false;
        };
        let Some(cluster) = slot.take() else {
            return false;
        };
        match &mut self.store {
            MomentStore::Objects(objects) => {
                let mo = objects[id.0].take().expect("label implies object");
                self.stats[cluster].remove(&mo);
                // Removal, like insertion, bypasses drift tracking on this
                // backend: without this epoch bump a stale cached bound
                // could silently skip a scan whose outcome the departed
                // member changed (the cache/stat-consistency regression in
                // `tests/incremental_consistency.rs`).
                self.epoch += 1;
            }
            MomentStore::Slab { slab, rows } => {
                let row = rows[id.0];
                {
                    let v = slab.view(row);
                    apply_tracked_remove(
                        &mut self.stats,
                        cluster,
                        &v,
                        &mut self.totals,
                        &mut self.versions,
                    );
                }
                slab.remove(row);
            }
        }
        self.live -= 1;
        true
    }

    /// Runs up to `passes` relocation passes of Algorithm 1 over the live
    /// objects; returns the number of relocations applied. With pruning
    /// enabled the passes take the exact tier-1/tier-2 shortcuts of
    /// [`crate::pruning`]; the relocation sequence is identical either way.
    pub fn stabilize(&mut self, passes: usize) -> usize {
        const TOLERANCE: f64 = 1e-9;
        let mut relocations = 0usize;
        let pruned = self.pruning.is_enabled();
        if pruned {
            self.cache.grow(self.labels.len());
        }
        for _ in 0..passes {
            let mut moved = false;
            let scale = if pruned { fp_scale(&self.stats) } else { 0.0 };
            for i in 0..self.labels.len() {
                let Some(src) = self.labels[i] else { continue };
                if self.stats[src].size() == 1 {
                    continue;
                }
                // Borrowed straight out of the store — applied relocations
                // below mutate only `stats`/`totals`/`versions`/`cache`,
                // all disjoint from the moment storage, so no per-move
                // clone of the moments is ever needed.
                let v = self.store.view(i);

                let decision = if pruned {
                    self.cache.view().decide(
                        i,
                        self.epoch,
                        &self.stats,
                        self.totals,
                        &self.versions,
                        src,
                        &v,
                        TOLERANCE,
                        scale,
                    )
                } else {
                    PruneDecision::FullScan
                };

                match decision {
                    PruneDecision::Skip => {
                        self.counters.skips += 1;
                    }
                    PruneDecision::ConfirmBest(dst) => {
                        self.counters.confirms += 1;
                        let delta =
                            self.stats[src].delta_j_remove(&v) + self.stats[dst].delta_j_add(&v);
                        if delta < -TOLERANCE {
                            apply_tracked_relocation(
                                &mut self.stats,
                                src,
                                dst,
                                &v,
                                &mut self.totals,
                                &mut self.versions,
                            );
                            self.cache.invalidate(i);
                            self.labels[i] = Some(dst);
                            relocations += 1;
                            moved = true;
                        }
                    }
                    PruneDecision::FullScan => {
                        if pruned {
                            self.counters.full_scans += 1;
                            if let Some((dst, delta, second)) =
                                best_candidate_with_second(&self.stats, src, &v)
                            {
                                if delta < -TOLERANCE {
                                    apply_tracked_relocation(
                                        &mut self.stats,
                                        src,
                                        dst,
                                        &v,
                                        &mut self.totals,
                                        &mut self.versions,
                                    );
                                    self.cache.invalidate(i);
                                    self.labels[i] = Some(dst);
                                    relocations += 1;
                                    moved = true;
                                } else {
                                    self.cache.view().store(
                                        i,
                                        self.epoch,
                                        &self.stats,
                                        self.totals,
                                        &self.versions,
                                        src,
                                        dst,
                                        delta,
                                        second,
                                    );
                                }
                            }
                        } else if let Some((dst, delta)) = best_candidate(&self.stats, src, &v) {
                            if delta < -TOLERANCE {
                                self.stats[src].remove_view(&v);
                                self.stats[dst].add_view(&v);
                                self.labels[i] = Some(dst);
                                relocations += 1;
                                moved = true;
                            }
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
        relocations
    }

    /// Current labels of all live objects, in insertion order.
    pub fn live_labels(&self) -> Vec<(ObjectId, usize)> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|c| (ObjectId(i), c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucpc_uncertain::UnivariatePdf;

    fn obj(c: f64) -> UncertainObject {
        UncertainObject::new(vec![UnivariatePdf::normal(c, 0.2)])
    }

    #[test]
    fn insertions_fill_empty_clusters_first_by_objective() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        let a = inc.insert(&obj(0.0)).unwrap();
        let b = inc.insert(&obj(10.0)).unwrap();
        // Second object prefers the empty cluster (adding to the occupied
        // one increases J by the squared gap; the empty one costs only
        // 2 sigma^2).
        assert_ne!(inc.label_of(a), inc.label_of(b));
    }

    #[test]
    fn stream_with_stabilization_matches_structure() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let mut ids = Vec::new();
            for c in [0.0, 0.2, 0.4, 9.0, 9.2, 9.4, 0.1, 9.1] {
                ids.push(inc.insert(&obj(c)).unwrap());
            }
            inc.stabilize(10);
            let l = |i: usize| inc.label_of(ids[i]).unwrap();
            assert_eq!(l(0), l(1));
            assert_eq!(l(0), l(2));
            assert_eq!(l(0), l(6));
            assert_eq!(l(3), l(4));
            assert_eq!(l(3), l(7));
            assert_ne!(l(0), l(3));
        }
    }

    #[test]
    fn removal_is_exact() {
        for backend in [StreamBackend::Objects, StreamBackend::Slab] {
            let mut inc = IncrementalUcpc::with_backend(1, 2, backend).unwrap();
            let keep: Vec<ObjectId> = [0.0, 0.5, 8.0]
                .iter()
                .map(|&c| inc.insert(&obj(c)).unwrap())
                .collect();
            let gone = inc.insert(&obj(100.0)).unwrap();
            let with = inc.objective();
            assert!(inc.remove(gone));
            assert!(!inc.remove(gone), "double remove must be a no-op");
            assert_eq!(inc.len(), 3);
            assert!(inc.objective() <= with);
            assert!(keep.iter().all(|&id| inc.label_of(id).is_some()));
        }
    }

    #[test]
    fn objective_matches_batch_rebuild() {
        let mut inc = IncrementalUcpc::new(1, 3).unwrap();
        let objs: Vec<UncertainObject> = [0.0, 0.1, 5.0, 5.1, 10.0, 10.1]
            .iter()
            .map(|&c| obj(c))
            .collect();
        for o in &objs {
            inc.insert(o).unwrap();
        }
        inc.stabilize(20);
        // Rebuild ClusterStats from the live assignment and compare J totals.
        let mut rebuilt = vec![ClusterStats::empty(1); 3];
        for (id, c) in inc.live_labels() {
            let _ = id;
            let idx = id.0;
            rebuilt[c].add(objs[idx].moments());
        }
        let total: f64 = rebuilt.iter().map(ClusterStats::j).sum();
        assert!((inc.objective() - total).abs() < 1e-9);
    }

    #[test]
    fn stabilize_monotonically_improves() {
        let mut inc = IncrementalUcpc::new(1, 2).unwrap();
        // Adversarial insertion order.
        for c in [0.0, 9.0, 0.1, 9.1, 0.2, 9.2] {
            inc.insert(&obj(c)).unwrap();
        }
        let before = inc.objective();
        inc.stabilize(10);
        assert!(inc.objective() <= before + 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut inc = IncrementalUcpc::new(2, 2).unwrap();
        assert!(matches!(
            inc.insert(&obj(0.0)),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn slab_rows_are_recycled_across_churn() {
        let mut inc = IncrementalUcpc::with_backend(1, 2, StreamBackend::Slab).unwrap();
        let mut ids: Vec<ObjectId> = (0..6)
            .map(|i| inc.insert(&obj(i as f64)).unwrap())
            .collect();
        for step in 0..40 {
            let victim = ids.remove(0);
            assert!(inc.remove(victim));
            ids.push(inc.insert(&obj((step % 7) as f64)).unwrap());
        }
        assert_eq!(inc.len(), 6);
        // The slab's row high-water mark stays at the peak liveness even
        // though 40 handles were churned through.
        let MomentStore::Slab { slab, .. } = &inc.store else {
            panic!("slab backend expected");
        };
        assert_eq!(slab.rows(), 6, "rows must be recycled, not appended");
        assert!(ids.iter().all(|&id| inc.label_of(id).is_some()));
    }

    #[test]
    fn backend_knob_parses() {
        assert_eq!(StreamBackend::Objects.name(), "objects");
        assert_eq!(StreamBackend::Slab.name(), "slab");
        let inc = IncrementalUcpc::with_backend(1, 2, StreamBackend::Objects).unwrap();
        assert_eq!(inc.backend(), StreamBackend::Objects);
    }
}
