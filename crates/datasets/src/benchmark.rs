//! Seeded generators for the benchmark datasets of Table 1(a).
//!
//! The paper draws eight labelled UCI datasets (plus KDD Cup '99 for the
//! scalability study) and injects uncertainty synthetically. The UCI files
//! are not available in this environment, so each dataset is substituted by a
//! seeded Gaussian-mixture generator matching the published shape — object
//! count, attribute count and class count — with class separations chosen so
//! that clusterability is comparable to the originals (imperfectly separated,
//! unequal class sizes). The clustering-vs-uncertainty dynamics the
//! evaluation measures depend on the injected pdfs (Section 5.1), not on the
//! original attribute semantics; DESIGN.md records this substitution.

use rand::Rng;
use rand::RngCore;

/// Shape of a benchmark dataset (a row of Table 1(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Number of objects.
    pub objects: usize,
    /// Number of attributes (dimensions).
    pub attributes: usize,
    /// Number of reference classes.
    pub classes: usize,
}

/// Iris: 150 objects, 4 attributes, 3 classes.
pub const IRIS: DatasetSpec = DatasetSpec {
    name: "Iris",
    objects: 150,
    attributes: 4,
    classes: 3,
};
/// Wine: 178 objects, 13 attributes, 3 classes.
pub const WINE: DatasetSpec = DatasetSpec {
    name: "Wine",
    objects: 178,
    attributes: 13,
    classes: 3,
};
/// Glass: 214 objects, 10 attributes, 6 classes.
pub const GLASS: DatasetSpec = DatasetSpec {
    name: "Glass",
    objects: 214,
    attributes: 10,
    classes: 6,
};
/// Ecoli: 327 objects, 7 attributes, 5 classes.
pub const ECOLI: DatasetSpec = DatasetSpec {
    name: "Ecoli",
    objects: 327,
    attributes: 7,
    classes: 5,
};
/// Yeast: 1484 objects, 8 attributes, 10 classes.
pub const YEAST: DatasetSpec = DatasetSpec {
    name: "Yeast",
    objects: 1_484,
    attributes: 8,
    classes: 10,
};
/// Image (segmentation): 2310 objects, 19 attributes, 7 classes.
pub const IMAGE: DatasetSpec = DatasetSpec {
    name: "Image",
    objects: 2_310,
    attributes: 19,
    classes: 7,
};
/// Abalone: 4124 objects, 7 attributes, 17 classes.
pub const ABALONE: DatasetSpec = DatasetSpec {
    name: "Abalone",
    objects: 4_124,
    attributes: 7,
    classes: 17,
};
/// Letter (recognition): 7648 objects, 16 attributes, 10 classes.
pub const LETTER: DatasetSpec = DatasetSpec {
    name: "Letter",
    objects: 7_648,
    attributes: 16,
    classes: 10,
};
/// KDD Cup '99: 4 million objects, 42 attributes, 23 classes (scalability).
pub const KDDCUP99: DatasetSpec = DatasetSpec {
    name: "KDDCup99",
    objects: 4_000_000,
    attributes: 42,
    classes: 23,
};

/// The eight accuracy-evaluation datasets of Table 1(a), paper order.
pub fn accuracy_benchmarks() -> [DatasetSpec; 8] {
    [IRIS, WINE, GLASS, ECOLI, YEAST, IMAGE, ABALONE, LETTER]
}

/// A labelled deterministic dataset (before uncertainty injection).
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// The generating spec.
    pub spec: DatasetSpec,
    /// Data points, row-major.
    pub points: Vec<Vec<f64>>,
    /// Reference class of each point (`0..spec.classes`).
    pub labels: Vec<usize>,
}

impl LabeledDataset {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Per-dimension standard deviations (used to scale uncertainty spread).
    pub fn dim_std(&self) -> Vec<f64> {
        let m = self.spec.attributes;
        let n = self.points.len() as f64;
        let mut mean = vec![0.0; m];
        for p in &self.points {
            for (mj, &v) in mean.iter_mut().zip(p) {
                *mj += v;
            }
        }
        for v in &mut mean {
            *v /= n;
        }
        let mut var = vec![0.0; m];
        for p in &self.points {
            for j in 0..m {
                let d = p[j] - mean[j];
                var[j] += d * d;
            }
        }
        var.iter().map(|&v| (v / n).sqrt().max(1e-9)).collect()
    }
}

/// Generates the full dataset for `spec` (`fraction = 1.0`).
pub fn generate(spec: DatasetSpec, rng: &mut dyn RngCore) -> LabeledDataset {
    generate_fraction(spec, 1.0, rng)
}

/// Generates a proportional subset of `spec` covering **all** classes — the
/// protocol of the Figure-5 scalability study ("for each selected subset we
/// ensured that all 23 classes were covered").
pub fn generate_fraction(
    spec: DatasetSpec,
    fraction: f64,
    rng: &mut dyn RngCore,
) -> LabeledDataset {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let m = spec.attributes;
    let k = spec.classes;

    // Class prototypes: centers jittered per class, with a separation factor
    // that keeps classes overlapping but recoverable (mirroring the moderate
    // difficulty of the UCI originals). Scaled by 1/sqrt(m): Gaussian
    // mixtures concentrate with dimensionality, so an m-independent
    // separation would make high-dimensional datasets trivially easy.
    let separation = 16.0 / (m as f64).sqrt();
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(0.0..separation)).collect())
        .collect();
    let spreads: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..m).map(|_| rng.gen_range(0.4..1.1)).collect())
        .collect();

    // Unequal class sizes (UCI datasets are imbalanced): weight classes by a
    // squared uniform draw, then scale to the target object count, keeping at
    // least one object per class at every fraction.
    let weights: Vec<f64> = (0..k)
        .map(|_| {
            let u: f64 = rng.gen_range(0.3..1.0);
            u * u
        })
        .collect();
    let total_w: f64 = weights.iter().sum();
    let target = (spec.objects as f64 * fraction).round().max(k as f64) as usize;
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total_w) * target as f64).round().max(1.0) as usize)
        .collect();
    // Adjust rounding drift onto the largest class.
    let drift = target as isize - counts.iter().sum::<usize>() as isize;
    let largest = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    counts[largest] = (counts[largest] as isize + drift).max(1) as usize;

    let mut points = Vec::with_capacity(target);
    let mut labels = Vec::with_capacity(target);
    for (class, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            let p: Vec<f64> = (0..m)
                .map(|j| centers[class][j] + gaussian(rng) * spreads[class][j])
                .collect();
            points.push(p);
            labels.push(class);
        }
    }
    LabeledDataset {
        spec,
        points,
        labels,
    }
}

/// A standard-normal draw via Box–Muller (keeps `rand` distribution-free).
fn gaussian(rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_1a_shapes_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for spec in accuracy_benchmarks() {
            let d = generate_fraction(spec, 0.2, &mut rng); // keep tests fast
            let target = (spec.objects as f64 * 0.2).round() as usize;
            assert!(
                d.len().abs_diff(target) <= spec.classes,
                "{}: got {} want ~{target}",
                spec.name,
                d.len()
            );
            assert!(d.points.iter().all(|p| p.len() == spec.attributes));
            let mut seen = vec![false; spec.classes];
            for &l in &d.labels {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "{}: class missing", spec.name);
        }
    }

    #[test]
    fn full_iris_has_exact_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(IRIS, &mut rng);
        assert_eq!(d.len(), 150);
    }

    #[test]
    fn every_fraction_covers_all_classes() {
        // The Figure-5 protocol: all classes present in every subset.
        let mut rng = StdRng::seed_from_u64(3);
        let spec = DatasetSpec {
            name: "mini-kdd",
            objects: 500,
            attributes: 5,
            classes: 23,
        };
        for frac in [0.05, 0.1, 0.5, 1.0] {
            let d = generate_fraction(spec, frac, &mut rng);
            let mut seen = [false; 23];
            for &l in &d.labels {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "fraction {frac} missed a class");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d1 = generate(IRIS, &mut StdRng::seed_from_u64(7));
        let d2 = generate(IRIS, &mut StdRng::seed_from_u64(7));
        assert_eq!(d1.points, d2.points);
        assert_eq!(d1.labels, d2.labels);
        let d3 = generate(IRIS, &mut StdRng::seed_from_u64(8));
        assert_ne!(d1.points, d3.points);
    }

    #[test]
    fn classes_are_spatially_coherent() {
        // Class means should be farther apart than intra-class scatter on
        // average, so the reference classification is recoverable.
        let mut rng = StdRng::seed_from_u64(4);
        let d = generate(IRIS, &mut rng);
        let m = d.spec.attributes;
        let mut means = vec![vec![0.0; m]; d.spec.classes];
        let mut counts = vec![0usize; d.spec.classes];
        for (p, &l) in d.points.iter().zip(&d.labels) {
            counts[l] += 1;
            for j in 0..m {
                means[l][j] += p[j];
            }
        }
        for (mean, &c) in means.iter_mut().zip(&counts) {
            for v in mean.iter_mut() {
                *v /= c as f64;
            }
        }
        // At least one pair of class means is well separated.
        let mut max_sep: f64 = 0.0;
        for a in 0..d.spec.classes {
            for b in (a + 1)..d.spec.classes {
                let sep: f64 = (0..m)
                    .map(|j| (means[a][j] - means[b][j]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                max_sep = max_sep.max(sep);
            }
        }
        assert!(
            max_sep > 2.0,
            "classes too entangled: max separation {max_sep}"
        );
    }

    #[test]
    fn dim_std_is_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = generate(IRIS, &mut rng);
        assert!(d.dim_std().iter().all(|&s| s > 0.0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = generate_fraction(IRIS, 0.0, &mut rng);
    }
}
