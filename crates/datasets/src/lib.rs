//! # ucpc-datasets — dataset substrate for the paper's evaluation
//!
//! Seeded generators replacing the data the paper used but which is not
//! available offline (UCI benchmark files, Broad Institute microarray data,
//! the PUMA probe-level-uncertainty pipeline), plus the full Section-5.1
//! uncertainty-generation protocol. Substitutions are documented per item in
//! DESIGN.md:
//!
//! * [`benchmark`] — Table 1(a): labelled Gaussian-mixture datasets matching
//!   each benchmark's object/attribute/class counts, with
//!   all-classes-covered fractional subsets for the Figure-5 scalability
//!   protocol;
//! * [`microarray`] — Table 1(b): probe-level-uncertainty simulator emitting
//!   genes as uncertain objects with intensity-dependent Normal pdfs;
//! * [`uncertainty`] — Section 5.1: pdf assignment (`E[f_w] = w`), Case-1
//!   perturbed datasets `D'` (MC/MCMC) and Case-2 uncertain datasets `D''`
//!   (95%-coverage regions).

#![warn(missing_docs)]

pub mod benchmark;
pub mod io;
pub mod microarray;
pub mod uncertainty;

pub use benchmark::{
    accuracy_benchmarks, generate, generate_fraction, DatasetSpec, LabeledDataset,
};
pub use microarray::{MicroarrayDataset, MicroarraySimulator, MicroarraySpec};
pub use uncertainty::{NoiseKind, PdfAssignment, PerturbMethod, UncertaintyModel};
